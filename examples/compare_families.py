"""The whole zoo on one workload: six recovery schemes, one crash.

Runs the recovery schemes in the repository side by side on the same
random-peers traffic with the same mid-run crash and prints a live version
of the docs/FAMILIES.md table (direct dependency tracking is excluded here
and measured in experiment E9: its recovery cascade needs its own scale).  (The logging schemes run on the oracle-checked
harness; the checkpoint-only and sender-based families on their own slim
harnesses — same engine, same workload generator.)

Run:  python examples/compare_families.py   (~30 seconds)
"""

from repro.checkpointing import UNCOORDINATED, CheckpointConfig, CheckpointSimulation
from repro.core.baselines import (
    fully_async_factory,
    pessimistic_factory,
    strom_yemini_factory,
)
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.senderbased import SenderBasedConfig, SenderBasedSimulation
from repro.workloads.random_peers import RandomPeersWorkload

# Small on purpose: the direct-tracking row's recovery cascade grows very
# fast with scale (that is its measured property — see E9).
N = 4
DURATION = 400.0
CRASH = FailureSchedule.single(DURATION / 2, 1)


def workload():
    return RandomPeersWorkload(rate=0.3, min_hops=2, max_hops=4,
                               output_fraction=0.0)


def run_logging(name, factory=None, k=None, fifo=False):
    config = SimConfig(n=N, k=k, seed=11, fifo=fifo, trace_enabled=False)
    wl = workload()
    kwargs = {"protocol_factory": factory} if factory else {}
    harness = SimulationHarness(config, wl.behavior(), failures=CRASH, **kwargs)
    wl.install(harness, until=DURATION * 0.8)
    harness.run(DURATION)
    m = harness.metrics()
    assert not m.violations, (name, m.violations[:2])
    return (name, f"{m.mean_piggyback_entries:.1f}", m.sync_writes,
            f"{m.mean_send_hold:.1f}", m.processes_rolled_back,
            m.intervals_undone)


def run_sender_based():
    config = SenderBasedConfig(n=N, seed=11)
    wl = workload()
    sim = SenderBasedSimulation(config, wl.behavior(), failures=CRASH)
    wl.install(sim, until=DURATION * 0.8)
    sim.run(DURATION)
    m = sim.metrics()
    return ("sender-based pessimistic", "acks", m.sync_writes,
            f"{m.mean_send_block:.1f}", 0, 0)


def run_checkpointing(z, label):
    config = CheckpointConfig(n=N, z=z, seed=11)
    wl = workload()
    sim = CheckpointSimulation(config, wl.behavior(), failures=CRASH)
    wl.install(sim, until=DURATION * 0.8)
    sim.run(DURATION)
    m = sim.metrics()
    return (label, "line#", m.local_checkpoints + m.induced_checkpoints,
            "-", m.cascade_rollbacks, m.work_lost)


def main() -> None:
    rows = [
        run_logging("K=2 optimistic (the paper)", k=2),
        run_logging("K=N optimistic", k=N),
        run_logging("receiver-based pessimistic", pessimistic_factory, k=0),
        run_sender_based(),
        run_logging("Strom-Yemini", strom_yemini_factory, fifo=True),
        run_logging("fully asynchronous", fully_async_factory),
        # direct tracking is measured separately (E9): its naive
        # announcement cascade can churn for minutes on adverse schedules.
        run_checkpointing(2, "lazy checkpointing Z=2"),
        run_checkpointing(UNCOORDINATED, "uncoordinated checkpointing"),
    ]
    header = (f"{'scheme':30} {'pgb':>6} {'writes':>7} {'latency':>8} "
              f"{'procs_rb':>9} {'undone/lost':>12}")
    print(header)
    print("-" * len(header))
    for name, pgb, writes, latency, procs, undone in rows:
        print(f"{name:30} {pgb:>6} {writes:>7} {latency:>8} "
              f"{procs:>9} {undone:>12}")
    print("""
Columns: pgb = mean piggybacked entries (logging schemes); writes = sync
stable-storage ops (for the checkpoint family: total checkpoints);
latency = mean per-message hold/block time; procs_rb = processes rolled
back by the crash; undone/lost = intervals undone (logging) or work units
lost and re-executed (checkpoint-only).  See docs/FAMILIES.md for the
reading guide.""")


if __name__ == "__main__":
    main()
