"""Bring your own application: a replicated key-value store with audits.

This example shows the adoption path end to end (see docs/USAGE.md):

1. write a piecewise-deterministic behaviour (all state in the state
   value, all effects through the context);
2. write a workload that injects deterministic traffic;
3. run it under K-optimistic logging with a failure, and check that the
   recovery layer kept the replicated state consistent *without the
   application containing a single line of recovery code*.

Run:  python examples/custom_workload.py
"""

from repro.app.behavior import AppBehavior
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.base import Workload, poisson_times


class KeyValueStore(AppBehavior):
    """Primary-per-key store: writes go to a key's home process, which
    replicates to a backup; audits emit the version vector to the outside
    world (an output — never revocable)."""

    def initial_state(self, pid, n):
        return {"data": {}, "versions": {}, "version": 0, "replicated": 0}

    def on_message(self, state, payload, ctx):
        op = payload.get("op")
        if op == "put":
            key = payload["key"]
            state["data"][key] = payload["value"]
            version = state["versions"].get(key, 0) + 1
            state["versions"][key] = version
            state["version"] += 1
            backup = (ctx.pid + 1) % ctx.n
            ctx.send(backup, {"op": "replicate", "key": key,
                              "value": payload["value"],
                              "key_version": version})
        elif op == "replicate":
            # The network is not FIFO: apply only if newer (per-key version)
            # so reordered replications cannot regress the backup.
            key = payload["key"]
            if payload["key_version"] > state["versions"].get(key, 0):
                state["data"][key] = payload["value"]
                state["versions"][key] = payload["key_version"]
            state["replicated"] += 1
        elif op == "audit":
            # The audit record must never be revoked: it is an output, so
            # the recovery layer holds it until every dependency is stable.
            ctx.output({"auditor": ctx.pid, "version": state["version"]})
        return state


class StoreWorkload(Workload):
    def __init__(self, rate=1.0, keys=32, audit_every=20):
        self.rate = rate
        self.keys = keys
        self.audit_every = audit_every

    def behavior(self):
        return KeyValueStore()

    def install(self, harness, until):
        rng = harness.rngs.stream("workload/kv")
        n = harness.config.n
        for i, t in enumerate(poisson_times(rng, self.rate, until)):
            key = f"k{rng.randrange(self.keys)}"
            home = hash(key) % n
            if i % self.audit_every == 0:
                harness.inject_at(t, home, {"op": "audit"})
            else:
                harness.inject_at(t, home, {"op": "put", "key": key,
                                            "value": i})


def main() -> None:
    config = SimConfig(n=6, k=2, seed=3, retransmit_window=64)
    workload = StoreWorkload(rate=1.2)
    harness = SimulationHarness(config, workload.behavior(),
                                failures=FailureSchedule.single(400.0, pid=2))
    workload.install(harness, until=700.0)
    harness.run(900.0)

    metrics = harness.metrics()
    print("puts + replications delivered :", metrics.messages_delivered)
    print("audit records committed       :", metrics.outputs_committed)
    print("crash of P2 rolled back       :",
          f"{metrics.processes_rolled_back} other processes, "
          f"{metrics.intervals_undone} intervals")
    print("messages retransmitted        :", metrics.retransmissions)
    print("oracle violations             :", metrics.violations or "none")

    # Application-level consistency check: every replicated write that
    # survived recovery exists on the backup too.
    inconsistent = 0
    for host in harness.hosts:
        primary = host.protocol.app_state["data"]
        backup = harness.hosts[(host.pid + 1) % config.n].protocol.app_state["data"]
        for key, value in primary.items():
            if hash(key) % config.n == host.pid:  # keys homed here
                if key in backup and backup[key] != value:
                    inconsistent += 1
    print("divergent replicated keys     :", inconsistent)
    assert not metrics.violations
    assert inconsistent == 0


if __name__ == "__main__":
    main()
