"""Quickstart: a 6-process cluster with K-optimistic logging.

Builds a simulated deployment, drives random peer-to-peer traffic through
it, crashes a process mid-run, and prints what the recovery layer did —
all through the public API:

    SimConfig          — the deployment knobs (including K)
    SimulationHarness  — processes + network + storage + oracle
    RandomPeersWorkload— a deterministic traffic generator
    FailureSchedule    — when crashes happen

Run:  python examples/quickstart.py
"""

from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.random_peers import RandomPeersWorkload


def main() -> None:
    # 1. Configure: six processes, degree of optimism K=2 — at most two
    #    process failures can ever revoke a delivered message.
    config = SimConfig(n=6, k=2, seed=7)

    # 2. Build the deployment and install a workload.
    workload = RandomPeersWorkload(rate=0.5, output_fraction=0.3)
    harness = SimulationHarness(
        config,
        workload.behavior(),
        failures=FailureSchedule.single(400.0, pid=1),  # crash P1 at t=400
    )
    workload.install(harness, until=700.0)

    # 3. Run for 900 time units, then let the system quiesce.
    harness.run(900.0)

    # 4. Inspect the results.
    metrics = harness.metrics()
    print("--- failure-free behaviour " + "-" * 40)
    print(f"messages delivered        : {metrics.messages_delivered}")
    print(f"mean send-buffer hold     : {metrics.mean_send_hold:.2f} "
          f"(K={config.k}: held until <= {config.k} revokers remain)")
    print(f"mean piggybacked entries  : {metrics.mean_piggyback_entries:.2f} "
          f"(Theorem 2 keeps this below N={config.n})")
    print(f"stable-storage writes     : {metrics.sync_writes} sync, "
          f"{metrics.async_writes} async")
    print(f"outputs committed         : {metrics.outputs_committed} "
          f"(mean latency {metrics.mean_output_latency:.1f})")

    print("--- recovery behaviour " + "-" * 44)
    print(f"crashes                   : {metrics.crashes}")
    print(f"intervals lost at P1      : {metrics.intervals_lost}")
    print(f"other processes rolled back: {metrics.processes_rolled_back}")
    print(f"orphan messages discarded : {metrics.orphans_discarded}")

    print("--- recovery trace " + "-" * 48)
    for event in harness.tracer.select(category="recovery"):
        print(f"  {event}")
    for event in harness.tracer.select(category="failure"):
        print(f"  {event}")

    # A Figure-1-style space-time diagram of the crash window.
    from repro.analysis.timeline import render_timeline

    print("--- space-time diagram around the crash " + "-" * 27)
    print(render_timeline(harness.tracer, config.n, width=100,
                          t_start=370.0, t_end=460.0))

    # 5. The built-in oracle cross-checked every release (Theorem 4) and
    #    the final global state; an empty list means the run was provably
    #    consistent.
    print("--- invariant violations  :", metrics.violations or "none")


if __name__ == "__main__":
    main()
