"""Choosing K: an operator's tuning session, static sweep vs closed loop.

The paper's thesis is that K is a *tunable* parameter, and Section 4.2
goes further: commit dependency tracking (Theorem 2) keeps every receiver
correct even when different messages carry different K bounds, so K need
not be a deploy-time constant at all.  This example shows both ways of
exercising that freedom:

- **static sweep** (the classical tuning session, kept as the baseline
  mode): simulate your workload once per candidate K, state service-level
  constraints, and pick the largest K (lowest overhead) that still meets
  them.  The chosen K is then stamped on every message for the whole run.
- **adaptive** (the default): install the runtime controller
  (``SimConfig(adaptive_k=True)``, :mod:`repro.control`) and let each
  process retune its own K through the per-message K path — AIMD over
  [k_min, k_max], dropping K on revocation evidence and climbing while
  output-commit latency misses the SLO.

Run:  python examples/tune_k.py            # static sweep, then adaptive
      python examples/tune_k.py --static   # static sweep only
"""

import sys

from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.openloop import OpenLoopWorkload

N = 8
DURATION = 900.0
SLO_P99 = 90.0                # output-commit latency target (p99, virtual units)

# Service-level constraints an operator might state:
MAX_PROCESSES_DISTURBED = 3   # a failure may disturb at most 3 other nodes
MAX_MEAN_HOLD = 12.0          # mean added message latency budget


def evaluate(k=None, adaptive=False):
    config = SimConfig(
        n=N, k=N if adaptive else k, seed=11,
        adaptive_k=adaptive,
        slo_output_latency=SLO_P99,
        control_interval=10.0,
    )
    workload = OpenLoopWorkload(rate=0.8, min_hops=3, max_hops=8)
    harness = SimulationHarness(
        config,
        workload.behavior(),
        failures=FailureSchedule.single(DURATION / 2, pid=1),
    )
    workload.install(harness, until=DURATION * 0.8)
    harness.run(DURATION)
    metrics = harness.metrics()
    assert not metrics.violations
    harness.close()
    return metrics


def static_sweep():
    print(f"constraints: <= {MAX_PROCESSES_DISTURBED} processes disturbed "
          f"per failure, mean hold <= {MAX_MEAN_HOLD}\n")
    print(f"{'K':>2} {'hold':>7} {'p99_lat':>8} {'procs_rb':>9} {'undone':>7}  verdict")
    print("-" * 56)

    feasible = []
    for k in range(N + 1):
        metrics = evaluate(k=k)
        ok_recovery = metrics.processes_rolled_back <= MAX_PROCESSES_DISTURBED
        ok_overhead = metrics.mean_send_hold <= MAX_MEAN_HOLD
        verdict = []
        if not ok_recovery:
            verdict.append("rollback scope too wide")
        if not ok_overhead:
            verdict.append("overhead too high")
        if ok_recovery and ok_overhead:
            feasible.append((k, metrics))
            verdict.append("feasible")
        print(f"{k:2d} {metrics.mean_send_hold:7.2f} "
              f"{metrics.output_latency_p99:8.2f} "
              f"{metrics.processes_rolled_back:9d} "
              f"{metrics.intervals_undone:7d}  {', '.join(verdict)}")

    if feasible:
        # Prefer the largest feasible K: least failure-free overhead.
        best_k, best = max(feasible, key=lambda pair: pair[0])
        print(f"\nstatic operating point: K={best_k} "
              f"(hold {best.mean_send_hold:.2f}, "
              f"{best.processes_rolled_back} processes disturbed)")
        return best_k, best
    print("\nno K satisfies both constraints on this workload; "
          "revisit the budgets or the flush/notification periods")
    return None, None


def adaptive_run(static_best=None):
    print("\nadaptive controller (per-message K, AIMD over [0, N]):")
    metrics = evaluate(adaptive=True)
    print(f"   p99 output-commit latency: {metrics.output_latency_p99:.2f} "
          f"(SLO {SLO_P99}, attained {metrics.slo_attained:.1%})")
    print(f"   mean K {metrics.k_mean:.2f} over {metrics.k_decisions} "
          f"decisions; {metrics.processes_rolled_back} processes disturbed, "
          f"{metrics.intervals_undone} intervals undone")
    if static_best is not None:
        print(f"   static baseline p99 was {static_best.output_latency_p99:.2f} "
              f"— the controller needed no sweep to land in the same "
              f"neighbourhood, and under crash *clusters* it beats every "
              f"static point (see repro.experiments.adaptive_k)")


def main() -> None:
    best_k, best = static_sweep()
    if "--static" not in sys.argv:
        adaptive_run(best)


if __name__ == "__main__":
    main()
