"""Choosing K: an operator's tuning session.

The paper's thesis is that K is a *tunable* parameter.  This example shows
what tuning actually looks like: sweep K on your own workload, state your
service-level constraints, and pick the largest K (lowest overhead) whose
simulated recovery behaviour still meets them.

Run:  python examples/tune_k.py
"""

from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.random_peers import RandomPeersWorkload

N = 8
DURATION = 900.0

# Service-level constraints an operator might state:
MAX_PROCESSES_DISTURBED = 3   # a failure may disturb at most 3 other nodes
MAX_MEAN_HOLD = 12.0          # mean added message latency budget


def evaluate(k):
    config = SimConfig(n=N, k=k, seed=11)
    workload = RandomPeersWorkload(rate=0.8, min_hops=3, max_hops=8)
    harness = SimulationHarness(
        config,
        workload.behavior(),
        failures=FailureSchedule.single(DURATION / 2, pid=1),
    )
    workload.install(harness, until=DURATION * 0.8)
    harness.run(DURATION)
    metrics = harness.metrics()
    assert not metrics.violations
    return metrics


def main() -> None:
    print(f"constraints: <= {MAX_PROCESSES_DISTURBED} processes disturbed "
          f"per failure, mean hold <= {MAX_MEAN_HOLD}\n")
    print(f"{'K':>2} {'hold':>7} {'procs_rb':>9} {'undone':>7}  verdict")
    print("-" * 46)

    feasible = []
    for k in range(N + 1):
        metrics = evaluate(k)
        ok_recovery = metrics.processes_rolled_back <= MAX_PROCESSES_DISTURBED
        ok_overhead = metrics.mean_send_hold <= MAX_MEAN_HOLD
        verdict = []
        if not ok_recovery:
            verdict.append("rollback scope too wide")
        if not ok_overhead:
            verdict.append("overhead too high")
        if ok_recovery and ok_overhead:
            feasible.append((k, metrics))
            verdict.append("feasible")
        print(f"{k:2d} {metrics.mean_send_hold:7.2f} "
              f"{metrics.processes_rolled_back:9d} "
              f"{metrics.intervals_undone:7d}  {', '.join(verdict)}")

    if feasible:
        # Prefer the largest feasible K: least failure-free overhead.
        best_k, best = max(feasible, key=lambda pair: pair[0])
        print(f"\nchosen operating point: K={best_k} "
              f"(hold {best.mean_send_hold:.2f}, "
              f"{best.processes_rolled_back} processes disturbed)")
    else:
        print("\nno K satisfies both constraints on this workload; "
              "revisit the budgets or the flush/notification periods")


if __name__ == "__main__":
    main()
