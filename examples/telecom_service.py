"""The paper's motivating scenario: a telecom switch fabric.

"A telecommunications system needs to choose a parameter to control the
overhead so that it can be responsive during normal operation, and also
control the rollback scope so that it can recover reasonably fast upon a
failure."

This example runs the same call-routing + billing workload under three
operating points — pessimistic (the industry default the paper cites),
mid-spectrum K-optimistic, and fully optimistic — injects the same switch
failure into each, and prints the service-quality scorecard an operator
would look at:

- call-setup responsiveness (message hold time),
- storage-synchronization load,
- billing latency (output commit),
- blast radius of the switch failure.

Run:  python examples/telecom_service.py
"""

from repro.core.baselines import pessimistic_factory
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.telecom import TelecomWorkload

N = 8
DURATION = 900.0


def run_operating_point(name, k, factory=None):
    config = SimConfig(n=N, k=k, seed=21)
    workload = TelecomWorkload(rate=1.2)
    kwargs = {"protocol_factory": factory} if factory else {}
    harness = SimulationHarness(
        config,
        workload.behavior(),
        failures=FailureSchedule.single(DURATION / 2, pid=3),
        **kwargs,
    )
    workload.install(harness, until=DURATION * 0.8)
    harness.run(DURATION)
    metrics = harness.metrics()
    assert not metrics.violations, metrics.violations
    return name, metrics


def main() -> None:
    points = [
        run_operating_point("pessimistic (industry default)", 0,
                            pessimistic_factory),
        run_operating_point("K=2 optimistic", 2),
        run_operating_point(f"K={N} fully optimistic", N),
    ]

    print(f"{'operating point':34} {'hold':>6} {'sync_w':>7} "
          f"{'bill_lat':>9} {'procs_rb':>9} {'undone':>7} {'bills':>6}")
    print("-" * 78)
    for name, m in points:
        print(f"{name:34} {m.mean_send_hold:6.2f} {m.sync_writes:7d} "
              f"{m.mean_output_latency:9.2f} {m.processes_rolled_back:9d} "
              f"{m.intervals_undone:7d} {m.outputs_committed:6d}")

    print("""
Reading the scorecard:
 * pessimistic: every delivery costs a synchronous disk write (sync_w ~ one
   per routed call leg), but the switch failure stays contained — no other
   switch rolls back, and billing latency is minimal.
 * K=8: zero added call-setup latency and ~10x fewer synchronous writes,
   but the failure ripples: several switches roll back and re-route.
 * K=2 sits between them — this is the fine-grained knob the paper
   proposes, chosen per release as features consume the capacity headroom.
Billing records are outputs (0-optimistic): the oracle verified none was
ever revoked, in all three configurations.""")


if __name__ == "__main__":
    main()
