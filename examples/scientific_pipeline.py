"""A long-running scientific computation with rare failures.

The paper's other motivating application class: "for long-running
scientific applications, the primary performance measure is typically the
total execution time.  Since hardware failures are rare events in most
systems, minimizing failure-free overhead is more important than improving
recovery efficiency.  Therefore, optimistic logging is usually a better
choice."

This example runs a staged computation pipeline twice — once under
pessimistic logging and once under N-optimistic logging — with one rare
failure, and compares total overhead: storage-synchronization cost paid
on *every* item versus recovery work paid *once*.

Run:  python examples/scientific_pipeline.py
"""

from repro.core.baselines import pessimistic_factory
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.pipeline import PipelineWorkload

N = 6
DURATION = 1500.0


def run(name, factory=None, k=None):
    config = SimConfig(n=N, k=k, seed=33, sync_write_cost=1.0,
                       async_write_cost=0.05)
    workload = PipelineWorkload(rate=1.0)
    kwargs = {"protocol_factory": factory} if factory else {}
    harness = SimulationHarness(
        config,
        workload.behavior(),
        failures=FailureSchedule.single(DURATION / 2, pid=2),
        **kwargs,
    )
    workload.install(harness, until=DURATION * 0.8)
    harness.run(DURATION)
    metrics = harness.metrics()
    assert not metrics.violations
    return name, metrics


def main() -> None:
    runs = [
        run("pessimistic", factory=pessimistic_factory, k=0),
        run("optimistic (K=N)", k=N),
    ]
    print(f"{'configuration':20} {'items':>6} {'sync_w':>7} {'async_w':>8} "
          f"{'storage_cost':>13} {'redone':>7}")
    print("-" * 68)
    for name, m in runs:
        redone = m.intervals_undone + m.messages_requeued
        print(f"{name:20} {m.outputs_committed:6d} {m.sync_writes:7d} "
              f"{m.async_writes:8d} {m.storage_cost:13.1f} {redone:7d}")

    pess = runs[0][1]
    opt = runs[1][1]
    saving = pess.storage_cost - opt.storage_cost
    print(f"""
Total-execution-time view (storage cost model: sync=1.0, async=0.05):
 * optimistic logging saved {saving:.0f} cost units of synchronous storage
   traffic over the whole run;
 * the one failure cost it {opt.intervals_undone} undone intervals and
   {opt.messages_requeued} re-deliveries — work that is re-executed once.
With failures rare, the per-item saving dominates: exactly why the paper
recommends the optimistic end of the spectrum for this workload class.""")


if __name__ == "__main__":
    main()
