"""E12 — three ways to be pessimistic (reference [1] vs K=0).

The paper's introduction: "Pessimistic logging either synchronously logs
each message upon receiving it, or logs all delivered messages before
sending a message."  Reference [1] (Borg et al.) is the third classic
discipline: log at the *sender*, in volatile memory, with an RSN ack
round-trip instead of a disk write.

All three guarantee that no failure ever revokes a message; they pay for
it in different currencies:

- **receiver-based sync** — one synchronous disk write per delivery;
- **K=0-optimistic** (this paper's 0 end) — messages held until their
  dependencies are known stable (flush + notification lag);
- **sender-based** — ~2 extra control messages per app message and a
  confirmation round-trip before each send.

Run: ``python -m repro.experiments.sender_based``
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.baselines import pessimistic_factory
from repro.experiments.runner import print_experiment, simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.senderbased import SenderBasedConfig, SenderBasedSimulation
from repro.workloads.random_peers import RandomPeersWorkload

DURATION = 800.0


def run(n: int = 6, seed: int = 42, duration: float = DURATION,
        crash_pid: int = 1) -> List[Dict[str, object]]:
    workload = RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8,
                                   output_fraction=0.0)
    failures = FailureSchedule.single(duration / 2, crash_pid)
    rows = []

    receiver_based = simulate(
        SimConfig(n=n, k=0, seed=seed, trace_enabled=False),
        workload, failures=failures, protocol_factory=pessimistic_factory,
        duration=duration)
    rows.append({
        "discipline": "receiver-based sync",
        "sync_w": receiver_based.sync_writes,
        "ctl_msgs": receiver_based.control_messages,
        "latency_cost": round(receiver_based.mean_send_hold, 2),
        "procs_rb": receiver_based.processes_rolled_back,
        "replayed_or_lost": receiver_based.intervals_lost,
    })

    k0 = simulate(
        SimConfig(n=n, k=0, seed=seed, trace_enabled=False),
        workload, failures=failures, duration=duration)
    rows.append({
        "discipline": "K=0 optimistic",
        "sync_w": k0.sync_writes,
        "ctl_msgs": k0.control_messages,
        "latency_cost": round(k0.mean_send_hold, 2),
        "procs_rb": k0.processes_rolled_back,
        "replayed_or_lost": k0.intervals_lost,
    })

    sb_config = SenderBasedConfig(n=n, seed=seed)
    sb_workload = RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8,
                                      output_fraction=0.0)
    sim = SenderBasedSimulation(sb_config, sb_workload.behavior(),
                                failures=failures)
    sb_workload.install(sim, until=duration * 0.8)
    sim.run(duration)
    sb = sim.metrics()
    rows.append({
        "discipline": "sender-based (ref [1])",
        "sync_w": sb.sync_writes,
        "ctl_msgs": sb.control_messages,
        "latency_cost": round(sb.mean_send_block, 2),
        "procs_rb": 0,
        "replayed_or_lost": sb.replayed,
    })
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "E12 - Three pessimistic disciplines (N=6, one crash; "
        "latency_cost = per-message hold/block time)",
        rows,
        notes="""
Same guarantee, three different bills.  Receiver-based sync pays a disk
write per delivery but adds no message latency; K=0-optimistic batches its
writes and pays in hold time governed by the stability lag (A6); the
sender-based scheme of reference [1] pays neither - it pays ~2 control
messages per app message and a confirm round-trip (~2 network RTT-halves)
before each send.  All three keep every failure local to the failed
process.  The paper's K generalizes the *second* discipline because it is
the one with a tunable risk budget.
""",
    )


if __name__ == "__main__":
    main()
