"""E4 — recovery cost as a function of the degree of optimism K.

The other side of the paper's tradeoff: "given any message m in a
K-optimistic logging system, K is the maximum number of processes whose
failures can revoke m" — so a failure in a high-K system can revoke more
state.  We inject the *same* crash (same process, same time, same
workload) into runs that differ only in K and report the rollback scope:

- ``rollbacks``   non-failed processes' Rollback executions,
- ``procs_rb``    distinct processes rolled back,
- ``undone``      state intervals undone at non-failed processes,
- ``lost``        intervals lost at the failed process itself,
- ``orphans``     orphan messages discarded anywhere,
- ``requeued``    logged messages re-delivered in a new incarnation,
- ``span``        time from the crash to the last induced rollback.

Run: ``python -m repro.experiments.recovery``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DURATION, print_experiment, simulate
from repro.failures.injector import CrashEvent, FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload


def run(
    n: int = 8,
    ks: Optional[Sequence[Optional[int]]] = None,
    seed: int = 42,
    crash_time: float = DURATION / 2,
    crash_pid: int = 1,
    duration: float = DURATION,
    extra_crashes: Sequence[CrashEvent] = (),
) -> List[Dict[str, object]]:
    """Sweep K with an identical injected failure."""
    if ks is None:
        ks = [0, 1, 2, 4, 6, n]
    schedule = FailureSchedule(
        [CrashEvent(crash_time, crash_pid), *extra_crashes]
    )
    rows = []
    for k in ks:
        config = SimConfig(n=n, k=k, seed=seed, trace_enabled=False)
        metrics = simulate(config, RandomPeersWorkload(rate=0.8, min_hops=3,
                                                       max_hops=8),
                           failures=schedule, duration=duration)
        rows.append({
            "K": metrics.k,
            "rollbacks": metrics.rollbacks,
            "procs_rb": metrics.processes_rolled_back,
            "undone": metrics.intervals_undone,
            "lost": metrics.intervals_lost,
            "orphans": metrics.orphans_discarded,
            "requeued": metrics.messages_requeued,
            "span": round(metrics.mean_recovery_span, 2),
            "hold": round(metrics.mean_send_hold, 2),
        })
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "E4 - Recovery cost vs degree of optimism K "
        "(N=8, random peers, one crash of P1 mid-run)",
        rows,
        notes="""
Expected shape: at K=0 recovery is fully localized (no other process rolls
back, no orphans); rollback scope, orphan counts, and the failure's blast
radius grow with K.  The last column shows the price paid for that
localization in failure-free hold time - the two sides of the knob.
""",
    )


if __name__ == "__main__":
    main()
