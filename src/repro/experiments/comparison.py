"""E6 — the protocol family, side by side.

One workload, one failure schedule, five recovery layers:

- **pessimistic** — synchronous receiver-based logging (the industrial
  default the paper describes: localized recovery, highest overhead);
- **0-optimistic** — the K=0 end of this paper's spectrum (sender-side
  "log all delivered messages before sending");
- **K=N/2-optimistic** — a mid-spectrum point;
- **N-optimistic** — classical optimistic logging with the paper's three
  improvements;
- **Strom & Yemini** — classical optimistic logging without them;
- **fully asynchronous** — Section 2's decoupled protocol.

Run: ``python -m repro.experiments.comparison``
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.baselines import (
    fully_async_factory,
    pessimistic_factory,
    strom_yemini_factory,
)
from repro.experiments.runner import DURATION, print_experiment, simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload


def run(n: int = 8, seed: int = 42, duration: float = DURATION,
        crash_pid: int = 1) -> List[Dict[str, object]]:
    failures = FailureSchedule.single(duration / 2, crash_pid)
    workload = RandomPeersWorkload(rate=0.8, min_hops=3, max_hops=8)
    variants = [
        ("pessimistic", 0, pessimistic_factory, False),
        ("K=0 optimistic", 0, None, False),
        (f"K={n // 2} optimistic", n // 2, None, False),
        (f"K={n} optimistic", n, None, False),
        ("strom-yemini", None, strom_yemini_factory, True),
        ("fully-async", None, fully_async_factory, False),
    ]
    rows = []
    for name, k, factory, fifo in variants:
        config = SimConfig(n=n, k=k, seed=seed, fifo=fifo, trace_enabled=False)
        metrics = simulate(config, workload, failures=failures,
                           protocol_factory=factory, duration=duration)
        rows.append({
            "protocol": name,
            "sync_w": metrics.sync_writes,
            "async_w": metrics.async_writes,
            "stor_cost": round(metrics.storage_cost, 1),
            "hold": round(metrics.mean_send_hold, 2),
            "pgb": round(metrics.mean_piggyback_entries, 2),
            "rollbacks": metrics.rollbacks,
            "procs_rb": metrics.processes_rolled_back,
            "undone": metrics.intervals_undone,
            "orphans": metrics.orphans_discarded,
            "outputs": metrics.outputs_committed,
        })
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "E6 - Protocol family comparison (N=8, random peers, one crash)",
        rows,
        notes="""
Expected shape: pessimistic logging pays roughly one synchronous stable-
storage write per delivery but confines every failure to the failed
process.  The optimistic protocols batch their writes (async_w) and pay at
recovery time instead; rollback scope and orphan counts grow with the
degree of optimism.  Strom & Yemini matches K=N recovery behaviour but
carries systematically larger vectors (no Theorem 2); the fully
asynchronous baseline is cheapest in failure-free coupling but spreads the
most orphans.
""",
    )


if __name__ == "__main__":
    main()
