"""E11 — vector size vs system size N (the paper's scalability claim).

Section 6: "By imposing a system-wide upper bound K on the vector size,
two things were achieved: first, the vector size does not grow with the
number of processes and so the dependency tracking scheme has better
scalability..."  And Section 1: "In general, transitive dependency
tracking does not scale well because a size-N vector needs to be
piggybacked on every application message."

We sweep N at a fixed *per-process* load (so bigger systems do
proportionally more total work, as real systems do) and compare the mean
piggybacked vector size of:

- Strom-Yemini (size-N transitive tracking) — expected to grow ~ N;
- commit dependency tracking, unbounded (K=N) — grows much slower: only
  non-stable dependencies are carried;
- commit dependency tracking with a fixed K — hard-capped regardless of N.

Run: ``python -m repro.experiments.scalability``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.baselines import strom_yemini_factory
from repro.experiments.runner import print_experiment, simulate
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload

DURATION = 600.0


def run(
    ns: Sequence[int] = (4, 8, 16, 24),
    k_fixed: int = 4,
    seed: int = 42,
    duration: float = DURATION,
    per_process_rate: float = 0.1,
) -> List[Dict[str, object]]:
    rows = []
    for n in ns:
        workload = RandomPeersWorkload(rate=per_process_rate * n,
                                       min_hops=3, max_hops=8)
        sy = simulate(
            SimConfig(n=n, k=None, seed=seed, fifo=True, trace_enabled=False),
            workload, protocol_factory=strom_yemini_factory, duration=duration)
        unbounded = simulate(
            SimConfig(n=n, k=None, seed=seed, trace_enabled=False),
            workload, duration=duration)
        capped = simulate(
            SimConfig(n=n, k=min(k_fixed, n), seed=seed, trace_enabled=False),
            workload, duration=duration)
        rows.append({
            "N": n,
            "sy_pgb": round(sy.mean_piggyback_entries, 2),
            "cdt_pgb": round(unbounded.mean_piggyback_entries, 2),
            f"K={k_fixed}_pgb": round(capped.mean_piggyback_entries, 2),
            f"K={k_fixed}_max": capped.max_piggyback_entries,
            f"K={k_fixed}_hold": round(capped.mean_send_hold, 2),
        })
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "E11 - Piggybacked vector size vs system size N "
        "(fixed per-process load)",
        rows,
        notes="""
Strom-Yemini's vector tracks one entry per process it transitively heard
from and approaches N as the system grows.  Commit dependency tracking
(cdt) carries only the non-stable part, which is bounded by how much the
system can produce within one stability lag - not by N.  A fixed K caps
the vector outright (max column == K) at the price of the hold column,
which is the whole point of the knob.
""",
    )


if __name__ == "__main__":
    main()
