"""Multi-seed robustness pass over the headline tradeoff (E3/E4).

Single-seed tables can mislead; this experiment repeats the K sweep over
several seeds and reports mean +/- 95% confidence intervals for the two
headline quantities — failure-free hold time and post-crash rollback
scope — verifying that the paper's shape claims are not seed artifacts.

Run: ``python -m repro.experiments.multiseed`` (slower than the others).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import is_monotone, summarize
from repro.experiments.runner import print_experiment, simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload

DURATION = 800.0


def run(
    n: int = 6,
    ks: Sequence[int] = (0, 2, 4, 6),
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> List[Dict[str, object]]:
    rows = []
    for k in ks:
        holds, undone, procs = [], [], []
        for seed in seeds:
            config = SimConfig(n=n, k=k, seed=seed, trace_enabled=False)
            workload = RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8)
            metrics = simulate(
                config, workload,
                failures=FailureSchedule.single(DURATION / 2, 1),
                duration=DURATION,
            )
            holds.append(metrics.mean_send_hold)
            undone.append(float(metrics.intervals_undone))
            procs.append(float(metrics.processes_rolled_back))
        rows.append({
            "K": k,
            "hold": str(summarize(holds)),
            "undone": str(summarize(undone)),
            "procs_rb": str(summarize(procs)),
            "seeds": len(seeds),
        })
    return rows


def check_shapes(rows: List[Dict[str, object]]) -> List[str]:
    """The mean curves must still show the paper's shape.

    Neighbouring K values can be statistically indistinguishable (their
    confidence intervals overlap), so monotonicity is checked with a
    tolerance of 20% of each curve's range — enough to absorb sampling
    noise, far too small to mask a reversed trend.
    """
    holds = [float(str(r["hold"]).split(" ")[0]) for r in rows]
    undone = [float(str(r["undone"]).split(" ")[0]) for r in rows]
    problems = []
    hold_tol = 0.2 * (max(holds) - min(holds)) if holds else 0.0
    undone_tol = 0.2 * (max(undone) - min(undone)) if undone else 0.0
    if not is_monotone(holds, decreasing=True, tolerance=hold_tol):
        problems.append(f"hold not decreasing in K: {holds}")
    if not is_monotone(undone, tolerance=undone_tol):
        problems.append(f"rollback scope not increasing in K: {undone}")
    if holds and holds[0] <= holds[-1]:
        problems.append(f"hold endpoints reversed: {holds}")
    if undone and undone[-1] <= undone[0]:
        problems.append(f"rollback endpoints reversed: {undone}")
    return problems


def main() -> None:
    rows = run()
    print_experiment(
        "E3/E4 robustness - K sweep over 5 seeds (mean +/- 95% CI)",
        rows,
    )
    problems = check_shapes(rows)
    print("shape check:", problems or "both curves monotone in the mean")


if __name__ == "__main__":
    main()
