"""E13 — the protocol on an unreliable network.

The paper assumes reliable channels (footnote 3 scopes out lost
in-transit messages; recovery announcements use reliable broadcast).
This experiment drops both assumptions and shows that the guarantees
survive on top of the ack/retransmit layer:

- **E13a** sweeps message loss from 1% to 10% (with duplication and
  reordering alongside) and reports the repair traffic: timer-driven
  retransmissions, control-plane envelope retries, duplicates
  suppressed.  Every run is oracle-checked — Theorem 4 holds at every
  release and no committed output is ever revoked.
- **E13b** runs the acceptance scenario: 5% loss, one crash, one
  partition.  It asserts that the run is violation-free, that every
  enqueued output eventually commits, and that the same seed yields
  bit-identical traces across two runs (the fault model draws from
  named RNG streams, so injected faults are deterministic too).

Run: ``python -m repro.experiments.unreliable``
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import print_experiment, simulate
from repro.failures.injector import (
    CrashEvent,
    FailureSchedule,
    HealEvent,
    PartitionEvent,
)
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.runtime.metrics import RunMetrics
from repro.workloads.random_peers import RandomPeersWorkload
from repro.workloads.telecom import TelecomWorkload

#: E13 runs shorter than the default horizon: retransmission timers add
#: events, and the shapes show up well before 1200 time units.
DURATION = 600.0


def run_loss_sweep(
    n: int = 6,
    k: int = 2,
    loss_rates: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.10),
    seed: int = 42,
    duration: float = DURATION,
) -> List[Dict[str, object]]:
    """Message loss vs repair traffic (duplication/reordering ride along)."""
    rows = []
    for loss in loss_rates:
        config = SimConfig(
            n=n, k=k, seed=seed,
            drop_rate=loss,
            duplicate_rate=loss / 2,
            reorder_rate=loss,
            trace_enabled=False,
        )
        metrics = simulate(config, RandomPeersWorkload(rate=0.6, min_hops=2,
                                                       max_hops=6),
                           duration=duration)
        rows.append({
            "loss": loss,
            "delivered": metrics.messages_delivered,
            "drops": metrics.app_drops + metrics.control_drops,
            "rexmit": metrics.timer_retransmissions,
            "acks": metrics.acks_received,
            "ctl_rexmit": metrics.ctl_retransmits,
            "dups_dropped": metrics.duplicates_dropped,
            "budget_exh": (metrics.retransmit_budget_exhausted
                           + metrics.ctl_budget_exhausted),
        })
    return rows


def _acceptance_harness(seed: int, duration: float) -> SimulationHarness:
    config = SimConfig(
        n=6, k=2, seed=seed,
        drop_rate=0.05, duplicate_rate=0.02, reorder_rate=0.05,
        trace_enabled=True,
        check_invariants=True,
    )
    schedule = FailureSchedule([
        CrashEvent(duration * 0.4, 1),
        PartitionEvent(duration * 0.6, ((4, 5),)),
        HealEvent(duration * 0.75),
    ])
    workload = TelecomWorkload(rate=0.8)
    harness = SimulationHarness(config, workload.behavior(),
                                failures=schedule)
    workload.install(harness, until=duration * 0.8)
    return harness


def run_safety_check(
    seed: int = 7, duration: float = DURATION
) -> Tuple[RunMetrics, bool]:
    """The acceptance scenario: 5% loss + crash + partition.

    Returns the metrics of the first run and whether a second run with
    the same seed produced a bit-identical trace.  Raises if the oracle
    found a violation or any enqueued output failed to commit.
    """
    first = _acceptance_harness(seed, duration)
    first.run(duration)
    metrics = first.metrics()
    if metrics.violations:
        raise AssertionError(
            f"invariant violations under loss: {metrics.violations[:3]}"
        )
    if metrics.outputs_pending:
        raise AssertionError(
            f"{metrics.outputs_pending} outputs never committed"
        )
    second = _acceptance_harness(seed, duration)
    second.run(duration)
    deterministic = first.tracer.events == second.tracer.events
    if not deterministic:
        raise AssertionError("same seed produced diverging traces")
    return metrics, deterministic


def main() -> None:
    print_experiment(
        "E13a - Repair traffic vs message loss rate (N=6, K=2, "
        "random peers; duplication and reordering enabled)",
        run_loss_sweep(),
        notes="""
Retransmissions and suppressed duplicates grow with the loss rate while
delivery stays near the loss-free count: the ack/retransmit layer turns
an unreliable network back into the reliable one the paper assumes.
budget_exh > 0 would flag a message abandoned past its retry budget.
""",
    )
    metrics, deterministic = run_safety_check()
    print_experiment(
        "E13b - Acceptance: 5% loss + crash + partition (telecom, "
        "oracle-checked)",
        [{
            "delivered": metrics.messages_delivered,
            "outputs": metrics.outputs_committed,
            "outputs_pending": metrics.outputs_pending,
            "rollbacks": metrics.rollbacks,
            "partition_time": round(metrics.partition_time, 1),
            "part_drops": metrics.partition_drops,
            "rexmit": metrics.timer_retransmissions,
            "ctl_rexmit": metrics.ctl_retransmits,
            "violations": len(metrics.violations),
            "deterministic": deterministic,
        }],
        notes="""
Every enqueued output committed, no invariant was violated, and the run
is bit-for-bit reproducible: the same seed drives workload, latencies,
faults, and partitions alike.
""",
    )


if __name__ == "__main__":
    main()
