"""E9 — direct vs transitive dependency tracking (Section 5 related work).

"Direct dependency tracking techniques piggyback only the sender's current
state interval index, and so are in general more scalable.  The tradeoff
is that, at the time of output commit and recovery, the system needs to
assemble direct dependencies to obtain transitive dependencies."

Measured here: the piggyback saving (exactly one entry per message) against
the recovery-time price — cascaded rollback announcements and repeated
rollback rounds, since orphanhood can only be discovered one dependency hop
per announcement.  Commit dependency tracking (this paper) sits in
between: transitive information, but only its non-stable part.

The workload emits no outputs: output commit under direct tracking needs a
closure-assembly sub-protocol that is out of scope (see
``core/baselines/direct.py``).

Run: ``python -m repro.experiments.direct_tracking``
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.baselines import direct_factory, strom_yemini_factory
from repro.experiments.runner import print_experiment, simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload

DURATION = 400.0


def run(n: int = 4, seed: int = 1) -> List[Dict[str, object]]:
    # Deliberately small: direct tracking's recovery cascade grows so fast
    # with scale and load that larger configurations take minutes of
    # announcement ping-pong to quiesce — which is itself the measured
    # point (transitive tracking recovers in one round).
    workload = RandomPeersWorkload(rate=0.3, min_hops=2, max_hops=4,
                                   output_fraction=0.0)
    failures = FailureSchedule.single(DURATION / 2, 1)
    variants = [
        ("direct (1 entry/msg)", direct_factory, False),
        ("transitive, commit-dep (K=N)", None, False),
        ("transitive, size-N (S&Y)", strom_yemini_factory, True),
    ]
    rows = []
    for name, factory, fifo in variants:
        config = SimConfig(n=n, k=None, seed=seed, fifo=fifo,
                           trace_enabled=False)
        metrics = simulate(config, workload, failures=failures,
                           protocol_factory=factory, duration=DURATION)
        rows.append({
            "scheme": name,
            "pgb": round(metrics.mean_piggyback_entries, 2),
            "rollbacks": metrics.rollbacks,
            "undone": metrics.intervals_undone,
            "orphans": metrics.orphans_discarded,
            "control_msgs": metrics.control_messages,
            "span": round(metrics.mean_recovery_span, 1),
        })
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "E9 - Direct vs transitive dependency tracking "
        "(N=4, one crash, output-free workload)",
        rows,
        notes="""
Direct tracking achieves the minimum piggyback (exactly 1 entry) but pays
at recovery: orphan elimination cascades announcement by announcement, so
one crash triggers an order of magnitude more rollbacks, undone intervals
and recovery traffic than transitive tracking, and recovery takes longer
to quiesce.  Commit dependency tracking keeps transitive one-shot recovery
while shrinking the vector toward the direct scheme's size - the middle
ground this paper contributes.
""",
    )


if __name__ == "__main__":
    main()
