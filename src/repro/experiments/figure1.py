"""E1 — scripted re-enactment of the paper's Figure 1.

Figure 1 is the paper's worked example: six processes P0..P5 running
optimistic logging with asynchronous recovery.  The prose pins down the
scenario precisely; this module reconstructs it and asserts every stated
fact:

1.  "when P4 receives m2, it records dependency associated with (0,2)_4 as
    {(1,3)_0, (0,4)_1, (2,6)_3, (0,2)_4}";
2.  "When it receives m6, it updates the dependency to
    {(1,3)_0, (0,4)_1, (1,5)_1, (0,3)_2, (2,6)_3, (0,3)_4}" — note the two
    entries for P1: this is the Section-2 *completely asynchronous*
    protocol, which tracks every incarnation (``figure1_async``);
3.  P1 fails at X, "rolls back to (0,4)_1, increments the incarnation
    number to 1, and broadcasts announcement r1 containing (0,4)_1";
4.  "When P3 receives r1, it detects that the interval (0,5)_1 that its
    state depends on has been rolled back.  Process P3 then needs to roll
    back to (2,6)_3" (and, in the Section-2 protocol, broadcasts its own
    rollback announcement — Theorem 1 later removes that requirement);
5.  "when P4 receives r1, it detects that its state does not depend on any
    rolled-back intervals of P1" — no rollback at P4;
6.  Strom-Yemini coupling: "P4 should delay the delivery of m6 until it
    receives r1", after which the lexicographic maximum updates the P1
    entry to (1,5) (``figure1_koptimistic``);
7.  Corollary 1 at P5: "when P5 receives m7 which carries a dependency on
    (1,5)_1, it can deliver m7 without waiting for r1 because it has no
    existing dependency entry for P1";
8.  Theorem 2 at P4: on P3's logging progress notification that (2,6)_3 is
    stable, P4 "can remove (2,6)_3 from its dependency vector";
9.  Output commit: "P4 can commit the output sent from (0,2)_4 after it
    makes (0,2)_4 stable and also receives logging progress notifications
    from P0, P1 and P3, indicating that (1,3)_0, (0,4)_1 and (2,6)_3 have
    all become stable" ((0,4)_1's stability arrives with r1 — Corollary 1).

Message-graph reconstruction (the arrows, derived from the stated
dependency sets):

- P0 enters the scenario in incarnation 1 (a pre-scenario failure);
  an environment event starts (1,3)_0, which sends **m0** to P1.
- P1: env -> (0,2)_1; m0 -> (0,3)_1; env -> (0,4)_1 sending **m1** to P3;
  flush; env -> (0,5)_1 sending **m3** to P3; then P1 *fails* (X), losing
  (0,5)_1, restarts at (1,5)_1 and broadcasts **r1** = (0,4)_1.
  From (1,5)_1 it sends **m5** to P2 and **m7** to P5.
- P2: env -> (0,2)_2 sending **m4** to P1; m5 -> (0,3)_2 sending **m6**
  to P4.
- P3 enters in incarnation 2 (two pre-scenario failures, reaching (2,5)_3);
  m1 -> (2,6)_3 sending **m2** to P4; m3 -> (2,7)_3.
- P4: m2 -> (0,2)_4 emitting the **Output**; m6 -> (0,3)_4.
- P5: m7 -> its next interval.

Run ``python -m repro.experiments.figure1`` for the narrated trace.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.app.behavior import AppBehavior, AppContext
from repro.core.baselines.fully_async import FullyAsyncProcess
from repro.core.depvec import DependencyVector
from repro.core.effects import (
    BroadcastAnnouncement,
    CommitOutput,
    DuplicateDropped,
    Effect,
    MessageDelivered,
    MessageDiscarded,
    ReleaseMessage,
    RollbackPerformed,
)
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.net.message import AppMessage, FailureAnnouncement
from repro.types import MessageId

N = 6  # P0 .. P5


class ScriptedBehavior(AppBehavior):
    """Payload-driven behaviour: the payload says exactly what to send."""

    def initial_state(self, pid: int, n: int) -> Any:
        return {"delivered": []}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        state["delivered"].append(payload.get("tag"))
        for dst, nested in payload.get("sends", []):
            ctx.send(dst, nested)
        if "output" in payload:
            ctx.output(payload["output"])
        return state


@dataclass
class ScenarioResult:
    """Everything the tests assert on."""

    p4_after_m2: Dict[Any, Any] = field(default_factory=dict)
    p4_after_m6: Dict[Any, Any] = field(default_factory=dict)
    p4_vector_after_p3_notification: Dict[Any, Any] = field(default_factory=dict)
    m6_delayed_until_r1: Optional[bool] = None
    p5_delivered_m7_without_r1: Optional[bool] = None
    r1: Optional[FailureAnnouncement] = None
    p1_restart_interval: Optional[Entry] = None
    p3_rolled_back_to: Optional[Entry] = None
    p3_broadcast_own_announcement: Optional[bool] = None
    p4_rolled_back: bool = False
    m3_discarded_as_orphan: bool = False
    output_committed: bool = False
    output_commit_order: List[str] = field(default_factory=list)
    narrative: List[str] = field(default_factory=list)


class ScriptRunner:
    """Hand-carries messages between sans-IO protocol instances."""

    def __init__(self, protocol_cls: Type[KOptimisticProcess], k: int = N):
        behavior = ScriptedBehavior()
        self.procs: List[KOptimisticProcess] = []
        for pid in range(N):
            if protocol_cls is KOptimisticProcess:
                proc = KOptimisticProcess(pid, N, k, behavior)
            else:
                proc = protocol_cls(pid, N, behavior=behavior)
            proc.initialize()
            self.procs.append(proc)
        self.in_flight: Dict[str, List[AppMessage]] = {}
        self.announcements: List[Tuple[int, FailureAnnouncement]] = []
        self.outputs: List[Any] = []
        self.events: List[Effect] = []
        self._env_seq = itertools.count()

    # -- effect plumbing -----------------------------------------------------

    def execute(self, effects: List[Effect]) -> List[Effect]:
        for effect in effects:
            if isinstance(effect, ReleaseMessage):
                tag = effect.message.payload.get("tag", "?")
                self.in_flight.setdefault(tag, []).append(effect.message)
            elif isinstance(effect, BroadcastAnnouncement):
                self.announcements.append((len(self.announcements), effect.announcement))
            elif isinstance(effect, CommitOutput):
                self.outputs.append(effect.record.payload)
        self.events.extend(effects)
        return effects

    # -- script verbs -----------------------------------------------------------

    def inject(self, dst: int, payload: Dict[str, Any]) -> List[Effect]:
        """Deliver an environment message (empty dependency vector)."""
        msg = AppMessage(
            msg_id=MessageId(-1, 0, 0, next(self._env_seq)),
            src=-1,
            dst=dst,
            payload=payload,
            tdv=DependencyVector(N),
        )
        return self.execute(self.procs[dst].on_receive(msg))

    def carry(self, tag: str, copy_index: int = 0) -> List[Effect]:
        """Deliver in-flight message ``tag`` to its destination."""
        msg = self.in_flight[tag][copy_index]
        return self.execute(self.procs[msg.dst].on_receive(msg))

    def deliver_announcement(self, to_pid: int, ann: FailureAnnouncement) -> List[Effect]:
        return self.execute(self.procs[to_pid].on_failure_announcement(ann))

    def flush(self, pid: int) -> List[Effect]:
        return self.execute(self.procs[pid].flush())

    def notify(self, from_pid: int, to_pid: int) -> List[Effect]:
        notif = self.procs[from_pid].make_log_notification()
        return self.execute(self.procs[to_pid].on_log_notification(notif))

    def crash_restart(self, pid: int) -> List[Effect]:
        self.procs[pid].crash()
        return self.execute(self.procs[pid].restart())

    def script_send(self, pid: int, dst: int, payload: Dict[str, Any], seq: int) -> List[Effect]:
        """Send from the *current* interval without a triggering delivery.

        Figure 1 draws m5 and m7 leaving P1's restart interval (1,5)_1
        itself; the PWD model allows execution in the interval started by
        the recovery event, so the script issues these sends directly.
        """
        proc = self.procs[pid]
        proc._enqueue_send(dst, payload, seq)
        return self.execute(proc._check_send_buffer())

    # -- inspection ------------------------------------------------------------

    def vector_of(self, pid: int):
        return self.procs[pid].tdv

    def last_effects_of_type(self, effect_type) -> List[Effect]:
        return [e for e in self.events if isinstance(e, effect_type)]


def _prepare_common(runner: ScriptRunner, result: ScenarioResult) -> None:
    """Pre-scenario history plus the m0..m3 prefix (identical in both
    protocol variants)."""
    say = result.narrative.append

    # P0: one pre-scenario failure puts it in incarnation 1 at (1,2)_0.
    runner.crash_restart(0)
    assert runner.procs[0].current == Entry(1, 2), runner.procs[0].current
    say("P0 enters the scenario in incarnation 1, current interval (1,2)_0")

    # P3: two pre-scenario failures (with a flush in between) reach (2,5)_3.
    runner.crash_restart(3)
    runner.inject(3, {"tag": "e3"})
    runner.inject(3, {"tag": "e4"})
    runner.flush(3)
    runner.crash_restart(3)
    assert runner.procs[3].current == Entry(2, 5), runner.procs[3].current
    # The figure's P3 row starts at (2,5)_3 with no recorded dependency on
    # its own earlier incarnations; a checkpoint clears those (stable)
    # self-entries left over from the replay.
    runner.execute(runner.procs[3].checkpoint())
    say("P3 enters in incarnation 2, current interval (2,5)_3")

    # P0: environment event starts (1,3)_0 and sends m0 to P1.
    runner.inject(0, {"tag": "e0", "sends": [(1, {"tag": "m0"})]})
    assert runner.procs[0].current == Entry(1, 3)

    # P1: env -> (0,2)_1 ; m0 -> (0,3)_1 ; env -> (0,4)_1 sends m1 -> P3.
    runner.inject(1, {"tag": "e1"})
    runner.carry("m0")
    assert runner.procs[1].current == Entry(0, 3)
    runner.inject(1, {
        "tag": "e2",
        "sends": [(3, {"tag": "m1", "sends": [(4, {"tag": "m2", "output": "fig1-output"})]})],
    })
    assert runner.procs[1].current == Entry(0, 4)
    runner.flush(1)  # (0,4)_1 becomes stable: the failure will end here
    say("P1 reaches (0,4)_1 (stable after flush) and has sent m1 to P3")

    # P3: m1 -> (2,6)_3, sending m2 to P4.
    runner.carry("m1")
    assert runner.procs[3].current == Entry(2, 6)

    # P4: m2 -> (0,2)_4, emitting the Output.
    runner.carry("m2")
    assert runner.procs[4].current == Entry(0, 2)
    result.p4_after_m2 = {
        pid: entry for pid, entry in runner.vector_of(4).items()
    }
    say(f"P4 delivers m2: dependency of (0,2)_4 is {runner.vector_of(4)!r}")

    # P1: env -> (0,5)_1 sends m3 to P3; P3 delivers it -> (2,7)_3.
    runner.inject(1, {"tag": "e5", "sends": [(3, {"tag": "m3"})]})
    assert runner.procs[1].current == Entry(0, 5)
    runner.carry("m3")
    assert runner.procs[3].current == Entry(2, 7)
    say("P1 reaches (0,5)_1 (volatile only) and P3 delivers m3 -> (2,7)_3")

    # P2: env -> (0,2)_2, sending m4 to P1 (delivered after P1's restart).
    runner.inject(2, {"tag": "e6", "sends": [(1, {"tag": "m4"})]})
    assert runner.procs[2].current == Entry(0, 2)


def _fail_p1(runner: ScriptRunner, result: ScenarioResult) -> None:
    """P1 fails at X, restarts at (1,5)_1, broadcasts r1 = (0,4)_1, and
    sends m5 (to P2) and m7 (to P5) from the restart interval."""
    say = result.narrative.append
    runner.crash_restart(1)
    restarts = runner.last_effects_of_type(BroadcastAnnouncement)
    result.r1 = restarts[-1].announcement
    result.p1_restart_interval = runner.procs[1].current
    assert result.r1.end == Entry(0, 4), result.r1
    assert runner.procs[1].current == Entry(1, 5)
    say(f"P1 fails at X, rolls back to (0,4)_1, restarts as {runner.procs[1].current}"
        f" and broadcasts r1 = {result.r1}")

    runner.script_send(1, 2, {"tag": "m5", "sends": [(4, {"tag": "m6"})]}, seq=1)
    runner.script_send(1, 5, {"tag": "m7"}, seq=2)

    # P2 delivers m5 -> (0,3)_2 and sends m6 to P4.
    runner.carry("m5")
    assert runner.procs[2].current == Entry(0, 3)
    say("P2 delivers m5 -> (0,3)_2 and sends m6 to P4")


def figure1_async() -> ScenarioResult:
    """The Section-2 narrative: completely asynchronous recovery.

    P4 delivers m6 immediately and tracks BOTH incarnations of P1; P3
    broadcasts its own rollback announcement.
    """
    result = ScenarioResult()
    runner = ScriptRunner(FullyAsyncProcess)
    say = result.narrative.append

    _prepare_common(runner, result)
    _fail_p1(runner, result)

    # m6 arrives at P4 BEFORE r1 and is delivered immediately.
    runner.carry("m6")
    delivered_now = runner.procs[4].current == Entry(0, 3)
    result.m6_delayed_until_r1 = not delivered_now
    result.p4_after_m6 = {
        (pid, entry.inc): entry for pid, entry in runner.vector_of(4).items()
    }
    say(f"P4 delivers m6 immediately: dependency of (0,3)_4 is {runner.vector_of(4)!r}")

    # r1 reaches P3: rollback to (2,6)_3 + own rollback announcement.
    announcements_before = len(runner.announcements)
    runner.deliver_announcement(3, result.r1)
    rollbacks = runner.last_effects_of_type(RollbackPerformed)
    result.p3_rolled_back_to = rollbacks[-1].restored_to if rollbacks else None
    result.p3_broadcast_own_announcement = len(runner.announcements) > announcements_before
    result.m3_discarded_as_orphan = any(
        isinstance(e, MessageDiscarded) and e.message.payload.get("tag") == "m3"
        for e in runner.events
    )
    say(f"P3 receives r1: rolls back to {result.p3_rolled_back_to}, "
        f"announces its own rollback (Section-2 protocol)")

    # r1 reaches P4: no rollback ((0,4)_1 survived).
    rollbacks_before = len(runner.last_effects_of_type(RollbackPerformed))
    runner.deliver_announcement(4, result.r1)
    result.p4_rolled_back = (
        len(runner.last_effects_of_type(RollbackPerformed)) > rollbacks_before
    )
    say("P4 receives r1: its state does not depend on rolled-back intervals")

    # P5 delivers m7 (it has no P1 entry, so nothing could conflict).
    runner.carry("m7")
    result.p5_delivered_m7_without_r1 = runner.procs[5].current.sii == 2
    say("P5 delivers m7 without waiting for r1")
    return result


def figure1_koptimistic(k: int = N) -> ScenarioResult:
    """The improved (Theorems 1-2 + Corollary 1) protocol on the same story.

    P4 must delay m6 until r1 arrives; P5 still delivers m7 immediately;
    P3 rolls back but does NOT broadcast (Theorem 1); Theorem 2 shrinks
    P4's vector; the output from (0,2)_4 commits once (1,3)_0, (0,4)_1,
    (2,6)_3 and (0,2)_4 are all known stable.
    """
    result = ScenarioResult()
    runner = ScriptRunner(KOptimisticProcess, k=k)
    say = result.narrative.append

    _prepare_common(runner, result)

    # Theorem 2 demo before the failure: P3 flushes (2,6)_3 and notifies P4.
    runner.flush(3)
    runner.notify(3, 4)
    result.p4_vector_after_p3_notification = {
        pid: entry for pid, entry in runner.vector_of(4).items()
    }
    say(f"P3's logging progress notification lets P4 drop (2,6)_3: "
        f"vector now {runner.vector_of(4)!r}")

    _fail_p1(runner, result)

    # m6 arrives at P4 BEFORE r1: held (two incarnations of P1 in play).
    runner.carry("m6")
    held = runner.procs[4].current == Entry(0, 2)
    # r1 arrives: P4 does not roll back, and m6 becomes deliverable.
    rollbacks_before = len(runner.last_effects_of_type(RollbackPerformed))
    runner.deliver_announcement(4, result.r1)
    delivered_after = runner.procs[4].current == Entry(0, 3)
    result.m6_delayed_until_r1 = held and delivered_after
    result.p4_rolled_back = (
        len(runner.last_effects_of_type(RollbackPerformed)) > rollbacks_before
    )
    result.p4_after_m6 = {pid: entry for pid, entry in runner.vector_of(4).items()}
    say(f"P4 held m6 until r1; after delivery the P1 entry is "
        f"{runner.vector_of(4).get(1)} (lexicographic max)")

    # P5 delivers m7 with no delay: no existing P1 entry (Corollary 1).
    runner.carry("m7")
    result.p5_delivered_m7_without_r1 = runner.procs[5].current.sii == 2
    say("P5 delivers m7 without waiting for r1 (no P1 entry to overwrite)")

    # r1 reaches P3: rollback to (2,6)_3, no announcement (Theorem 1).
    announcements_before = len(runner.announcements)
    runner.deliver_announcement(3, result.r1)
    rollbacks = runner.last_effects_of_type(RollbackPerformed)
    result.p3_rolled_back_to = rollbacks[-1].restored_to if rollbacks else None
    result.p3_broadcast_own_announcement = len(runner.announcements) > announcements_before
    result.m3_discarded_as_orphan = any(
        isinstance(e, MessageDiscarded) and e.message.payload.get("tag") == "m3"
        for e in runner.events
    )
    say(f"P3 rolls back to {result.p3_rolled_back_to}; no announcement (Theorem 1)")

    # Output commit: P4 flushes (0,2)_4; stability of (1,3)_0 via P0's
    # notification; (0,4)_1 via r1 (already processed); (2,6)_3 via P3's
    # earlier notification.
    runner.flush(4)
    result.output_commit_order.append("p4-flush")
    runner.flush(0)
    runner.notify(0, 4)
    result.output_commit_order.append("p0-notify")
    result.output_committed = "fig1-output" in runner.outputs
    say("P4 commits the output from (0,2)_4 once (1,3)_0, (0,4)_1, (2,6)_3 "
        "and (0,2)_4 are all known stable")
    return result


def main() -> None:
    print("=" * 72)
    print("Figure 1 — Section 2 narrative (completely asynchronous recovery)")
    print("=" * 72)
    result = figure1_async()
    for line in result.narrative:
        print("  *", line)
    print()
    print("=" * 72)
    print("Figure 1 — improved protocol (Theorems 1-2, Corollary 1)")
    print("=" * 72)
    result = figure1_koptimistic()
    for line in result.narrative:
        print("  *", line)


if __name__ == "__main__":
    main()
