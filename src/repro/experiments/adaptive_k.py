"""E15 — adaptive-K control vs static K under open-loop heavy traffic.

Section 4.2 licenses per-message K; :mod:`repro.control` turns that into
a runtime control loop.  This experiment quantifies what the loop buys:
the bench's ``adaptive_k`` scenario (open-loop heavy-tailed arrivals
with diurnal modulation and burst episodes, a mid-run crash cluster) is
run once with the controller on, and once per static K point — **same
seed, same arrival schedule, same failure schedule** — so every
difference in the table is attributable to the K policy alone.

Reported per policy: output-commit latency percentiles (end-to-end,
injection to commit), SLO attainment, revoked intervals (the optimism
cost), and the controller's decision trace summary.  The headline claim
is the trade-off escape: a static K must pick one point on the
latency/revocation curve for the whole run, while the controller rides
the front — full optimism while the system is healthy, pessimistic
retreat during the crash cluster — and lands better p99 latency at no
higher revocation count than the best static point.

Run: ``python -m repro.experiments.adaptive_k``
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import print_experiment
from repro.perf.scenarios import ScenarioSpec, scenario_by_name
from repro.runtime.metrics import RunMetrics

#: Static K points swept against the controller (the scenario's k is the
#: ceiling the controller itself operates under).
STATIC_KS: Sequence[int] = (0, 1, 2, 4, 8)


def _static_variant(base: ScenarioSpec, k: int) -> ScenarioSpec:
    """The same scenario with the controller replaced by a fixed K."""
    extra = {key: value for key, value in base.extra_config.items()
             if key not in ("adaptive_k", "k_max", "control_interval")}
    return dataclasses.replace(
        base, name=f"{base.name}_static_k{k}", k=k, extra_config=extra,
    )


def _run(spec: ScenarioSpec, scale: float) -> RunMetrics:
    harness, duration = spec.build(scale)
    try:
        harness.run(duration)
        return harness.metrics()
    finally:
        harness.close()


def _row(policy: str, metrics: RunMetrics) -> Dict[str, object]:
    row: Dict[str, object] = {
        "policy": policy,
        "outputs": metrics.outputs_committed,
        "p50": round(metrics.output_latency_p50, 2),
        "p95": round(metrics.output_latency_p95, 2),
        "p99": round(metrics.output_latency_p99, 2),
        "slo_attained": round(metrics.slo_attained, 4),
        "revoked": metrics.rolled_back_intervals,
        "out_discard": metrics.outputs_discarded,
        "violations": len(metrics.violations),
    }
    if metrics.adaptive_k:
        row["k_mean"] = round(metrics.k_mean, 2)
        row["k_decisions"] = metrics.k_decisions
    return row


def run_sweep(scale: float = 1.0,
              static_ks: Sequence[int] = STATIC_KS) -> List[Dict[str, object]]:
    """The controller and every static point on one arrival schedule."""
    base = scenario_by_name("adaptive_k")
    rows = [_row("adaptive", _run(base, scale))]
    for k in static_ks:
        rows.append(_row(f"static K={k}", _run(_static_variant(base, k),
                                               scale)))
    return rows


def best_static(rows: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """The static row with the lowest p99 (ties broken by revocations)."""
    static = [r for r in rows if str(r["policy"]).startswith("static")]
    if not static:
        return None
    return min(static, key=lambda r: (float(r["p99"]), int(r["revoked"])))


def main(scale: float = 1.0) -> None:
    rows = run_sweep(scale)
    print_experiment(
        "E15 - Adaptive-K controller vs static K "
        "(open-loop heavy traffic + crash cluster; identical arrival and "
        "failure schedules)",
        rows,
        notes="""
The controller starts fully optimistic, collapses K multiplicatively
when the crash cluster produces revocation evidence, and climbs back
once the system is healthy again.  A static K pays for the whole run
what the controller only pays during the storm: low static K holds
latency hostage in the healthy phase, high static K inflates revoked
work during the cluster.  All runs are oracle-checked (violations
column); the per-message K path keeps every receiver correct while K
moves (Theorem 2 / Section 4.2).
""",
    )
    champion = best_static(rows)
    if champion is not None:
        adaptive = rows[0]
        print(f"best static: {champion['policy']} "
              f"(p99={champion['p99']}, revoked={champion['revoked']}) | "
              f"adaptive: p99={adaptive['p99']}, "
              f"revoked={adaptive['revoked']}")


if __name__ == "__main__":
    main()
