"""One module per reproduced exhibit (see DESIGN.md's experiment index).

- E1  ``figure1``       - scripted re-enactment of the paper's Figure 1
- E3  ``tradeoff``      - failure-free overhead vs K
- E4  ``recovery``      - recovery cost vs K
- E5  ``vector_size``   - Theorem 2's vector-size reduction
- E6  ``comparison``    - protocol family side by side
- E7  ``output_commit`` - output commit latency (telecom scenario)

``python -m repro.experiments.all`` runs everything.
"""
