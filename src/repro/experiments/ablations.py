"""Ablations of the design choices called out in DESIGN.md.

Each ablation disables one mechanism and measures what it was buying:

- **A1 — flush-time Theorem 2** (``nullify_own_on_flush``): with it off,
  only Checkpoint advances a process's own row of the log table, so held
  messages and outputs wait longer and vectors stay bigger.
- **A2 — log-table gossip** (``gossip_log_tables``): with it off,
  notifications carry only the sender's own row and stability information
  spreads one hop per period.
- **A3 — output-driven logging** (``output_driven_logging``): Section 2's
  alternative to periodic notifications, measured where it matters —
  sparse notification periods.

Run: ``python -m repro.experiments.ablations``
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.experiments.runner import print_experiment, simulate
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload
from repro.workloads.telecom import TelecomWorkload

DURATION = 800.0


def _run(config: SimConfig, workload) -> Dict[str, object]:
    metrics = simulate(config, workload, duration=DURATION)
    return metrics


def run_flush_nullification(n: int = 6, seed: int = 42) -> List[Dict[str, object]]:
    rows = []
    for enabled in (True, False):
        config = SimConfig(n=n, k=2, seed=seed, trace_enabled=False,
                           nullify_own_on_flush=enabled)
        metrics = _run(config, RandomPeersWorkload(rate=0.6, min_hops=3,
                                                   max_hops=8))
        rows.append({
            "flush_thm2": "on" if enabled else "off",
            "hold": round(metrics.mean_send_hold, 2),
            "pgb": round(metrics.mean_piggyback_entries, 2),
            "out_lat": round(metrics.mean_output_latency, 2),
        })
    return rows


def run_gossip(n: int = 8, seed: int = 42) -> List[Dict[str, object]]:
    """Full-table vs own-row notifications under fanout-1 dissemination.

    Under broadcast both modes are equivalent (everyone hears everyone's
    own row directly); the difference appears when each notification
    reaches only one random peer per period and stability information must
    travel transitively — exactly what Receive_log's all-rows merge is for.
    """
    rows = []
    for gossip in (True, False):
        config = SimConfig(n=n, k=2, seed=seed, trace_enabled=False,
                           gossip_log_tables=gossip, notify_interval=20.0,
                           notify_fanout=1)
        metrics = _run(config, RandomPeersWorkload(rate=0.6, min_hops=3,
                                                   max_hops=8))
        rows.append({
            "gossip": "full-table" if gossip else "own-row",
            "hold": round(metrics.mean_send_hold, 2),
            "pgb": round(metrics.mean_piggyback_entries, 2),
            "out_lat": round(metrics.mean_output_latency, 2),
        })
    return rows


def run_output_driven(n: int = 6, seed: int = 42) -> List[Dict[str, object]]:
    rows = []
    for driven in (False, True):
        config = SimConfig(n=n, k=None, seed=seed, trace_enabled=False,
                           notify_interval=200.0, flush_interval=200.0,
                           output_driven_logging=driven)
        metrics = _run(config, TelecomWorkload(rate=0.6))
        rows.append({
            "mode": "output-driven" if driven else "periodic-only",
            "out_lat": round(metrics.mean_output_latency, 2),
            "outputs": metrics.outputs_committed,
            "control_msgs": metrics.control_messages,
        })
    return rows


def run_gc(n: int = 6, seed: int = 42) -> List[Dict[str, object]]:
    """A4: Theorem-3-based storage reclamation on vs off."""
    rows = []
    for gc in (True, False):
        config = SimConfig(n=n, k=2, seed=seed, trace_enabled=False,
                           gc_on_checkpoint=gc)
        metrics = _run(config, RandomPeersWorkload(rate=0.6, min_hops=3,
                                                   max_hops=8))
        rows.append({
            "gc": "on" if gc else "off",
            "final_log_records": metrics.final_log_records,
            "final_checkpoints": metrics.final_checkpoints,
            "reclaimed": metrics.gc_reclaimed,
            "hold": round(metrics.mean_send_hold, 2),
        })
    return rows


def run_retransmission(n: int = 5, seed: int = 13) -> List[Dict[str, object]]:
    """A5: footnote-3 sender-side retransmission on vs off.

    Uses the pipeline workload with a long mid-stage outage: items lost in
    transit to the down stage are causally *independent* of its lost state
    (they come from upstream), so they are recoverable — exactly footnote
    3's "they either do not cause inconsistency, or they can be retrieved
    from the senders' volatile logs".  (In a gossip workload most lost
    in-transit messages are orphans of the crash anyway, and retransmitted
    copies would just be discarded.)
    """
    from repro.failures.injector import FailureSchedule
    from repro.workloads.pipeline import PipelineWorkload

    rows = []
    for window in (0, 64):
        config = SimConfig(n=n, k=None, seed=seed, restart_delay=60.0,
                           retransmit_window=window, trace_enabled=False)
        metrics = simulate(
            config, PipelineWorkload(rate=1.0),
            failures=FailureSchedule.single(DURATION / 2, n // 2),
            duration=DURATION,
        )
        rows.append({
            "retransmit": f"window={window}" if window else "off",
            "lost_in_transit": metrics.app_messages_lost,
            "resent": metrics.retransmissions,
            "items_completed": metrics.outputs_committed,
        })
    return rows


def run_flush_period(n: int = 6, seed: int = 42) -> List[Dict[str, object]]:
    """A6: the stability lag itself.  K bounds *how many* non-stable
    dependencies a message may carry; the flush/notification periods decide
    *how long* anything stays non-stable.  At a fixed small K, the hold
    time tracks the flush period almost linearly."""
    rows = []
    for period in (10.0, 20.0, 40.0, 80.0):
        config = SimConfig(n=n, k=1, seed=seed, trace_enabled=False,
                           flush_interval=period,
                           notify_interval=period / 2)
        metrics = _run(config, RandomPeersWorkload(rate=0.6, min_hops=3,
                                                   max_hops=8))
        rows.append({
            "flush_period": period,
            "hold": round(metrics.mean_send_hold, 2),
            "out_lat": round(metrics.mean_output_latency, 2),
            "async_w": metrics.async_writes,
        })
    return rows


def main() -> None:
    print_experiment(
        "A1 - Theorem 2 applied at flush time (vs checkpoint-only)",
        run_flush_nullification(),
        notes="Flush-time self-stability is most of what keeps low-K holds "
              "short: with it off, releases wait for the (4x rarer) "
              "checkpoints.",
    )
    print_experiment(
        "A2 - Full-table gossip vs own-row notifications "
        "(fanout-1 dissemination)",
        run_gossip(),
        notes="Under broadcast the two modes are identical; with each "
              "notification reaching one random peer per period, the "
              "full-table merge of Receive_log spreads stability "
              "transitively and roughly halves hold time and output "
              "latency versus own-row-only notifications.",
    )
    print_experiment(
        "A3 - Output-driven logging at sparse notification periods",
        run_output_driven(),
        notes="Demand-driven flushes commit outputs far sooner than waiting "
              "for rare periodic notifications, at a small control-traffic "
              "cost (Section 2's suggestion, realized).",
    )
    print_experiment(
        "A4 - Storage reclamation via Theorem 3 (GC on checkpoints)",
        run_gc(),
        notes="A checkpoint with a fully-stable vector can never be "
              "orphaned; reclaiming older state bounds the recovery "
              "footprint without changing protocol behaviour.",
    )
    print_experiment(
        "A5 - Sender-side retransmission (footnote 3)",
        run_retransmission(),
        notes="With a long restart delay, in-flight messages to the crashed "
              "process are lost; retransmission from senders' volatile "
              "sent-logs recovers the deliveries.",
    )
    print_experiment(
        "A6 - The stability lag: hold time vs flush period at K=1",
        run_flush_period(),
        notes="K bounds how many non-stable dependencies a message may "
              "carry; the flush/notification periods decide how long "
              "anything stays non-stable.  Fewer, larger batched writes "
              "(async_w) buy longer holds - the knob behind the knob.",
    )


if __name__ == "__main__":
    main()
