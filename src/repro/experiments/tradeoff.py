"""E3 — failure-free overhead as a function of the degree of optimism K.

The paper's motivating claim (Section 4.1): K provides a fine-grain
tradeoff whose failure-free side falls as K grows.  We sweep K from 0
(pessimistic behaviour: messages held until every dependency is stable)
to N (classical optimistic: never held) on a fixed workload — same seed,
identical traffic — and report the overhead metrics:

- ``hold``      mean time a message spends in the Send_buffer,
- ``e2e``       mean receive-to-deliver wait at the receiver,
- ``pgb``       mean piggybacked dependency entries per message
                (bounded by K — Theorem 4's quantity),
- ``sync/async`` stable-storage operations,
- ``out_lat``   mean output-commit latency,
- ``thru``      delivered messages per time unit.

Run: ``python -m repro.experiments.tradeoff``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DURATION, print_experiment, simulate
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload


def run(
    n: int = 8,
    ks: Optional[Sequence[Optional[int]]] = None,
    seed: int = 42,
    duration: float = DURATION,
) -> List[Dict[str, object]]:
    """Sweep K on a failure-free random-peers workload."""
    if ks is None:
        ks = [0, 1, 2, 4, 6, n]
    rows = []
    for k in ks:
        config = SimConfig(n=n, k=k, seed=seed, trace_enabled=False)
        metrics = simulate(config, RandomPeersWorkload(rate=0.8, min_hops=3,
                                                       max_hops=8),
                           duration=duration)
        rows.append({
            "K": metrics.k,
            "hold": round(metrics.mean_send_hold, 2),
            "e2e": round(metrics.mean_delivery_wait, 2),
            "pgb": round(metrics.mean_piggyback_entries, 2),
            "sync_w": metrics.sync_writes,
            "async_w": metrics.async_writes,
            "out_lat": round(metrics.mean_output_latency, 2),
            "thru": round(metrics.throughput(), 2),
        })
    return rows


def main() -> None:
    from repro.analysis.report import ascii_series

    rows = run()
    print_experiment(
        "E3 - Failure-free overhead vs degree of optimism K "
        "(N=8, random peers, no failures)",
        rows,
        notes="""
Expected shape (paper Section 4.1): the send-buffer hold time falls
monotonically as K grows, reaching 0 at K=N; piggybacked vector size grows
with K but stays well below N thanks to commit dependency tracking
(Theorem 2).  K=0 messages carry no entries at all - they are released
only once every dependency is stable, i.e. pessimistic behaviour.
""",
    )
    print(ascii_series("mean send-buffer hold vs K",
                       [r["K"] for r in rows], [r["hold"] for r in rows]))
    print()
    print(ascii_series("mean piggybacked entries vs K",
                       [r["K"] for r in rows], [r["pgb"] for r in rows]))


if __name__ == "__main__":
    main()
