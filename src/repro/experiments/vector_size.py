"""E5 — commit dependency tracking shrinks the vector (Theorem 2).

The paper's core technical result: "dependencies on stable state intervals
are redundant and can be omitted", so the piggybacked vector carries only
non-stable dependencies and its size no longer scales with N.  Two sweeps
demonstrate it:

1. **notification period** — the fresher the stability information, the
   smaller the vector (and the closer the protocol gets to the minimum);
2. **protocol** — Strom & Yemini's size-N tracking vs the improved
   protocol vs the fully asynchronous per-incarnation tracking, on the
   same workload.

Run: ``python -m repro.experiments.vector_size``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.baselines import fully_async_factory, strom_yemini_factory
from repro.experiments.runner import DURATION, print_experiment, simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload


def run_notification_sweep(
    n: int = 8,
    periods: Sequence[float] = (2.5, 10.0, 40.0, 160.0, 640.0),
    seed: int = 42,
    duration: float = 2000.0,
) -> List[Dict[str, object]]:
    # Moderate traffic: stability information must have time to propagate
    # between a process's deliveries for Theorem 2 to have anything to omit.
    rows = []
    for period in periods:
        config = SimConfig(n=n, k=None, seed=seed, notify_interval=period,
                           trace_enabled=False)
        metrics = simulate(config, RandomPeersWorkload(rate=0.15, min_hops=2,
                                                       max_hops=4),
                           duration=duration)
        rows.append({
            "notify_period": period,
            "pgb_mean": round(metrics.mean_piggyback_entries, 3),
            "control_msgs": metrics.control_messages,
            "out_lat": round(metrics.mean_output_latency, 2),
        })
    return rows


def run_protocol_sweep(
    n: int = 8,
    seed: int = 42,
    duration: float = DURATION,
) -> List[Dict[str, object]]:
    # A mid-run crash makes multiple incarnations coexist, which is what
    # separates per-incarnation tracking from single-entry tracking.
    failures = FailureSchedule.single(duration / 2, 1)
    workload = RandomPeersWorkload(rate=0.8, min_hops=3, max_hops=8)
    variants = [
        ("k-optimistic (Thm 2)", None, None, False),
        ("strom-yemini (size-N)", None, strom_yemini_factory, True),
        ("fully-async (per-inc)", None, fully_async_factory, False),
    ]
    rows = []
    for name, k, factory, fifo in variants:
        config = SimConfig(n=n, k=k, seed=seed, fifo=fifo, trace_enabled=False)
        metrics = simulate(config, workload, protocol_factory=factory,
                           failures=failures, duration=duration)
        rows.append({
            "protocol": name,
            "pgb_mean": round(metrics.mean_piggyback_entries, 3),
            "n": n,
        })
    return rows


def main() -> None:
    print_experiment(
        "E5a - Piggybacked vector size vs logging-progress notification period "
        "(N=8, K=N)",
        run_notification_sweep(),
        notes="""
Fresher stability information means more Theorem-2 omissions: the mean
vector size falls well below N when notifications are frequent, and decays
toward full transitive tracking as they become rare.  The cost is control
traffic; out_lat shows the same freshness also speeds up output commit.
""",
    )
    print_experiment(
        "E5b - Vector size by protocol (same workload, N=8)",
        run_protocol_sweep(),
        notes="""
Strom & Yemini carry (close to) one entry per process; the fully
asynchronous protocol of Section 2 carries one entry per *incarnation* and
can exceed N after failures; commit dependency tracking carries only
non-stable dependencies and stays smallest.
""",
    )


if __name__ == "__main__":
    main()
