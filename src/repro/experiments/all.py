"""Run every experiment in sequence: the full evaluation reproduction."""

from repro.experiments import (
    ablations,
    comparison,
    direct_tracking,
    lazy_checkpointing,
    figure1,
    multiseed,
    output_commit,
    recovery,
    scalability,
    sender_based,
    tradeoff,
    unreliable,
    vector_size,
)


def main(include_slow: bool = True) -> None:
    figure1.main()
    tradeoff.main()
    recovery.main()
    vector_size.main()
    comparison.main()
    output_commit.main()
    ablations.main()
    direct_tracking.main()
    lazy_checkpointing.main()
    scalability.main()
    sender_based.main()
    unreliable.main()
    if include_slow:
        multiseed.main()


if __name__ == "__main__":
    main()
