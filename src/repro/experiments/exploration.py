"""Exploration experiment: the checker exercised three ways.

1. **Bounded DFS** — exhaustively (up to a depth/run budget) enumerate
   same-time delivery orderings of tiny deterministic scenarios and
   confirm every schedule satisfies the invariants;
2. **Random sampling** — seeded random 3-6 process scenarios with
   crashes and partitions, swept over the degrees of optimism;
3. **Mutation check** — the same explorer against deliberately broken
   protocol variants, where it *must* find (and shrink) a violation.

This is the model-checking complement to the statistical experiments:
instead of measuring averages it hunts for any schedule that breaks
Theorem 1 (orphan delivery), Theorem 3 (vector coverage), or Theorem 4
(release bound).
"""

from __future__ import annotations

from repro.check.explorer import (
    BoundedDFSExplorer,
    RandomExplorer,
    RandomScenarioSampler,
)
from repro.check.mutants import MUTANTS, mutant_factory
from repro.check.shrinker import shrink
from repro.experiments.runner import print_experiment
from repro.check.cli import small_scenario


def dfs_rows(max_runs: int = 300):
    rows = []
    for n, crash in ((2, None), (2, 1), (3, None)):
        scenario = small_scenario(n=n, k=1, tokens=3, crash=crash)
        stats = BoundedDFSExplorer(scenario, max_depth=8,
                                   max_runs=max_runs).explore()
        rows.append({
            "n": n,
            "crash": "-" if crash is None else f"P{crash}",
            "schedules": stats.runs,
            "coverage": "full" if stats.exhausted else "capped",
            "max_branch": stats.max_branching,
            "max_revokers": stats.max_release_revokers,
            "violation": "FOUND" if stats.found else "none",
        })
    return rows


def random_rows(runs_per_k: int = 150):
    rows = []
    for k in (0, 1, 2, None):
        sampler = RandomScenarioSampler(seed=7, k_choices=(k,))
        stats = RandomExplorer(sampler, runs=runs_per_k).explore()
        rows.append({
            "K": "N" if k is None else k,
            "scenarios": stats.runs,
            "max_branch": stats.max_branching,
            "max_revokers": stats.max_release_revokers,
            "violation": "FOUND" if stats.found else "none",
        })
    return rows


def mutant_rows(runs: int = 40):
    rows = []
    for name in sorted(MUTANTS):
        sampler = RandomScenarioSampler(seed=0)
        stats = RandomExplorer(sampler, runs=runs,
                               protocol_factory=mutant_factory(name)).explore()
        row = {
            "mutant": name,
            "scenarios": stats.runs,
            "caught": "yes" if stats.found else "NO",
            "shrunk_trace": "-",
        }
        if stats.found:
            shrunk = shrink(stats.counterexample,
                            protocol_factory=mutant_factory(name))
            row["shrunk_trace"] = shrunk.trace_length
        rows.append(row)
    return rows


def main() -> None:
    print_experiment(
        "Bounded DFS over same-time delivery orderings (tiny configs)",
        dfs_rows(),
        notes="""
Every enumerated schedule of the real protocol satisfies the step
invariants (no known-orphan delivery, chain integrity, Theorem 3
coverage) and the release/commit bounds.  'full' coverage means the
depth-bounded choice tree was exhausted, not just sampled.
""",
    )
    print_experiment(
        "Seeded random schedule/fault sampling, swept over K",
        random_rows(),
        notes="""
Random 3-6 process scenarios with crashes and partitions.  The oracle's
max potential-revoker count at release never exceeds the configured K
(Theorem 4), and no sampled schedule violates any probe.
""",
    )
    print_experiment(
        "Mutation check: the explorer against broken protocol variants",
        mutant_rows(),
        notes="""
Each mutant disables one safety mechanism (orphan detection, the K
release bound, piggyback completeness).  The checker must catch all of
them and shrink the violation to a short replayable trace — evidence the
clean rows above are meaningful.
""",
    )


if __name__ == "__main__":
    main()
