"""E7 — output commit latency (the telecom scenario).

Outputs are 0-optimistic messages (Section 4.2): they are released only
when *every* dependency entry is NULL, whatever K the system runs with.
The experiment runs the telecom workload (calls routed through switch
chains, a billing record emitted at the egress switch) and reports, per K
and per notification period, how long billing records wait before they may
be shown to the outside world.

Run: ``python -m repro.experiments.output_commit``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DURATION, print_experiment, simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.telecom import TelecomWorkload


def run_k_sweep(
    n: int = 8,
    ks: Optional[Sequence[Optional[int]]] = None,
    seed: int = 42,
    duration: float = DURATION,
) -> List[Dict[str, object]]:
    if ks is None:
        ks = [0, 2, 4, n]
    rows = []
    for k in ks:
        config = SimConfig(n=n, k=k, seed=seed, trace_enabled=False)
        metrics = simulate(config, TelecomWorkload(rate=1.0),
                           duration=duration)
        rows.append({
            "K": metrics.k,
            "outputs": metrics.outputs_committed,
            "out_lat": round(metrics.mean_output_latency, 2),
            "hold": round(metrics.mean_send_hold, 2),
        })
    return rows


def run_notification_sweep(
    n: int = 8,
    periods: Sequence[float] = (5.0, 20.0, 80.0),
    seed: int = 42,
    duration: float = DURATION,
) -> List[Dict[str, object]]:
    rows = []
    for period in periods:
        config = SimConfig(n=n, k=None, seed=seed, notify_interval=period,
                           trace_enabled=False)
        metrics = simulate(config, TelecomWorkload(rate=1.0),
                           duration=duration)
        rows.append({
            "notify_period": period,
            "out_lat": round(metrics.mean_output_latency, 2),
            "outputs": metrics.outputs_committed,
        })
    return rows


def run_crash_safety(n: int = 8, seed: int = 42,
                     duration: float = DURATION) -> List[Dict[str, object]]:
    """With crashes: outputs still commit, and none is ever revoked (the
    oracle inside ``simulate`` enforces it)."""
    rows = []
    for k in (0, n):
        config = SimConfig(n=n, k=k, seed=seed, trace_enabled=False)
        metrics = simulate(config, TelecomWorkload(rate=1.0),
                           failures=FailureSchedule.single(duration / 2, 2),
                           duration=duration)
        rows.append({
            "K": metrics.k,
            "outputs": metrics.outputs_committed,
            "outputs_discarded": metrics.crashes,  # crash count for context
            "rollbacks": metrics.rollbacks,
        })
    return rows


def main() -> None:
    print_experiment(
        "E7a - Output commit latency vs K (N=8, telecom calls + billing)",
        run_k_sweep(),
        notes="""
Outputs are always 0-optimistic, so their commit latency is governed by
stability propagation, not by K; low-K systems even see *lower* output
latency because incoming messages arrive pre-stabilized.  What K buys is
the message hold column - the service's responsiveness.
""",
    )
    print_experiment(
        "E7b - Output commit latency vs notification period",
        run_notification_sweep(),
        notes="Fresher logging-progress notifications commit outputs sooner.",
    )
    print_experiment(
        "E7c - Billing records under failures (oracle-checked: none revoked)",
        run_crash_safety(),
    )


if __name__ == "__main__":
    main()
