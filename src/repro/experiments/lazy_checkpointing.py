"""E10 — lazy checkpoint coordination: the counterpart knob (Section 5).

"The concept of K-optimistic logging can be considered as the counterpart
of lazy checkpoint coordination for the area of log-based
rollback-recovery."  This experiment makes the analogy concrete by running
the checkpoint-only family on the same workload and failure:

  laziness Z = 1      <->  K = 0   (tight coordination, minimal loss)
  laziness Z = inf    <->  K = N   (no coordination, maximal exposure)

Columns: induced checkpoints (the failure-free overhead Z controls) vs
work lost to one crash and the rollback cascade width (the recovery cost),
with the domino effect appearing at Z = infinity.

Run: ``python -m repro.experiments.lazy_checkpointing``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.checkpointing import (
    UNCOORDINATED,
    CheckpointConfig,
    CheckpointSimulation,
)
from repro.experiments.runner import print_experiment
from repro.failures.injector import FailureSchedule
from repro.workloads.random_peers import RandomPeersWorkload

DURATION = 800.0


def run(
    n: int = 6,
    zs: Optional[Sequence[int]] = None,
    seed: int = 42,
    duration: float = DURATION,
    crash_pid: int = 1,
) -> List[Dict[str, object]]:
    if zs is None:
        zs = [1, 2, 4, 8, UNCOORDINATED]
    rows = []
    for z in zs:
        config = CheckpointConfig(n=n, z=z, seed=seed)
        workload = RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8,
                                       output_fraction=0.0)
        sim = CheckpointSimulation(
            config, workload.behavior(),
            failures=FailureSchedule.single(duration / 2, crash_pid),
        )
        workload.install(sim, until=duration * 0.8)
        sim.run(duration)
        rows.append(sim.metrics().as_row())
    return rows


def main() -> None:
    rows = run()
    print_experiment(
        "E10 - Lazy checkpoint coordination: laziness Z sweep "
        "(N=6, checkpoint-only recovery, one crash)",
        rows,
        notes="""
The Z knob trades induced-checkpoint overhead against work lost to a
failure, exactly as K trades message-holding overhead against rollback
scope in the logging family (E3/E4).  At Z=1 every line is coordinated:
hundreds of induced checkpoints, almost nothing lost.  Uncoordinated
checkpointing (Z=inf) takes no induced checkpoints and suffers the domino
effect - here most of the computation is rolled back by a single crash.
Note what message logging buys on top (E6): even K=N loses only *volatile*
work and replays the rest, while the checkpoint-only family re-executes
everything since the recovery line.
""",
    )


if __name__ == "__main__":
    main()
