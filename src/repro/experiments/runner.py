"""Shared experiment plumbing: build-and-run one simulation, collect rows."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.runtime.metrics import RunMetrics, format_table
from repro.workloads.base import Workload

#: Default virtual duration of one experiment run.
DURATION = 1200.0
#: Traffic stops at this fraction of the horizon so the system can drain.
INJECT_FRACTION = 0.8


def simulate(
    config: SimConfig,
    workload: Workload,
    failures: Optional[FailureSchedule] = None,
    protocol_factory: Optional[Callable] = None,
    duration: float = DURATION,
) -> RunMetrics:
    """Run one configuration to completion and return its metrics.

    Raises if the run violated any oracle-checked invariant — experiment
    numbers from an inconsistent run would be meaningless.
    """
    kwargs: Dict[str, Any] = {}
    if protocol_factory is not None:
        kwargs["protocol_factory"] = protocol_factory
    harness = SimulationHarness(config, workload.behavior(),
                                failures=failures, **kwargs)
    workload.install(harness, until=duration * INJECT_FRACTION)
    harness.run(duration)
    metrics = harness.metrics()
    if metrics.violations:
        raise AssertionError(
            f"invariant violations in experiment run: {metrics.violations[:3]}"
        )
    return metrics


def print_experiment(title: str, rows: List[Dict[str, object]], notes: str = "") -> None:
    """Uniform experiment output: a title, the table, optional notes."""
    print("=" * 78)
    print(title)
    print("=" * 78)
    print(format_table(rows))
    if notes:
        print()
        print(notes.strip())
    print()
