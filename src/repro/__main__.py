"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiment <name>`` — run one reproduction experiment
  (figure1, tradeoff, recovery, vector_size, comparison, output_commit,
  direct_tracking, lazy_checkpointing, scalability, sender_based,
  ablations, multiseed, unreliable, adaptive_k, all);
- ``simulate``           — run one ad-hoc simulation and print its metrics;
- ``check``              — systematic schedule/fault exploration
  (``dfs``, ``random``, ``mutants``, ``replay``; see docs/TESTING.md);
- ``bench``              — run the standing performance suite and write a
  schema-versioned ``BENCH_<date>.json`` (``--compare`` diffs two such
  files; see docs/PERF.md);
- ``serve``              — run the protocol over a real asyncio TCP
  backplane: one OS process per recovery unit, SIGKILL crash injection,
  post-hoc oracle certification (see docs/RUNTIME.md);
- ``load``               — inject deterministic load into a running
  ``serve`` coordinator;
- ``list``               — list the available experiments and workloads.

(``serve-worker`` is internal: the coordinator spawns it, one per
recovery unit.)
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENTS = {
    "figure1": "repro.experiments.figure1",
    "tradeoff": "repro.experiments.tradeoff",
    "recovery": "repro.experiments.recovery",
    "vector_size": "repro.experiments.vector_size",
    "comparison": "repro.experiments.comparison",
    "output_commit": "repro.experiments.output_commit",
    "direct_tracking": "repro.experiments.direct_tracking",
    "lazy_checkpointing": "repro.experiments.lazy_checkpointing",
    "scalability": "repro.experiments.scalability",
    "sender_based": "repro.experiments.sender_based",
    "ablations": "repro.experiments.ablations",
    "multiseed": "repro.experiments.multiseed",
    "unreliable": "repro.experiments.unreliable",
    "exploration": "repro.experiments.exploration",
    "adaptive_k": "repro.experiments.adaptive_k",
    "all": "repro.experiments.all",
}

WORKLOADS = ["random_peers", "client_server", "pipeline", "telecom",
             "openloop"]


def _make_workload(name: str, rate: float):
    from repro.workloads.client_server import ClientServerWorkload
    from repro.workloads.openloop import OpenLoopWorkload
    from repro.workloads.pipeline import PipelineWorkload
    from repro.workloads.random_peers import RandomPeersWorkload
    from repro.workloads.telecom import TelecomWorkload

    factories = {
        "random_peers": RandomPeersWorkload,
        "client_server": ClientServerWorkload,
        "pipeline": PipelineWorkload,
        "telecom": TelecomWorkload,
        "openloop": OpenLoopWorkload,
    }
    return factories[name](rate=rate)


def cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(EXPERIMENTS[args.name])
    module.main()
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.failures.injector import FailureSchedule
    from repro.runtime.config import SimConfig
    from repro.runtime.harness import SimulationHarness
    from repro.runtime.metrics import format_table

    parallel = args.parallel_workers or 0
    extra = {}
    if parallel > 1:
        # The epoch runner certifies post-hoc from dep.* traces; the
        # inline oracle cannot see across worker processes.
        extra = {"parallel_workers": parallel, "oracle_enabled": False,
                 "check_invariants": False, "trace_prefix": "dep.",
                 "dep_trace": True}
    config = SimConfig(n=args.n, k=args.k, seed=args.seed,
                       output_driven_logging=args.output_driven_logging,
                       adaptive_k=args.adaptive_k,
                       slo_output_latency=args.slo, **extra)
    workload = _make_workload(args.workload, args.rate)
    failures = FailureSchedule.none()
    if args.crash is not None:
        failures = FailureSchedule.single(args.duration / 2, args.crash)
    if parallel > 1:
        from repro.parallel import ParallelHarness

        harness = ParallelHarness(config, workload.behavior(),
                                  failures=failures, workload=workload,
                                  install_until=args.duration * 0.8)
        harness.run(args.duration)
        metrics = harness.metrics()
        print(format_table([metrics.as_row()]))
        print(f"\nparallel run: {parallel} workers, {harness.epochs} epochs, "
              f"{harness.cross_messages} cross-worker messages")
        from repro.oracle.ingest import certify_events
        from repro.parallel import canonical_dep_events

        events = [{"time": t, "category": c, "process": p, "data": d}
                  for t, c, p, d in canonical_dep_events(harness.dep_events())]
        cert = certify_events(events, config.n,
                              config.k if config.k is not None else config.n)
        harness.close()
        if cert.violations:
            print("\nCERTIFICATION VIOLATIONS:")
            for violation in cert.violations[:10]:
                print(" *", violation)
            return 1
        if not events:
            print("CERTIFICATION EMPTY: no dep.* events were traced")
            return 1
        print(f"certified: no violations (post-hoc oracle over "
              f"{len(events)} dep.* events)")
        return 0
    harness = SimulationHarness(config, workload.behavior(), failures=failures)
    workload.install(harness, until=args.duration * 0.8)
    harness.run(args.duration)
    metrics = harness.metrics()
    print(format_table([metrics.as_row()]))
    if metrics.output_latency_count:
        print(f"\noutput-commit latency: p50={metrics.output_latency_p50:.2f} "
              f"p95={metrics.output_latency_p95:.2f} "
              f"p99={metrics.output_latency_p99:.2f} "
              f"({metrics.output_latency_count} samples)")
        if metrics.slo_target > 0:
            print(f"SLO target {metrics.slo_target}: "
                  f"{metrics.slo_attained:.1%} attained")
    if metrics.adaptive_k:
        print(f"adaptive K: {metrics.k_decisions} decisions, "
              f"mean K {metrics.k_mean:.2f}, "
              f"final mean K {metrics.k_final_mean:.2f}")
    if metrics.violations:
        print("\nINVARIANT VIOLATIONS:")
        for violation in metrics.violations[:10]:
            print(" *", violation)
        return 1
    print("\nno invariant violations (oracle-checked)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.backplane.coordinator import ServePlan, run_serve

    crashes = []
    for pid in args.crash or []:
        if not 0 <= pid < args.n:
            print(f"--crash {pid} out of range for --n {args.n}",
                  file=sys.stderr)
            return 2
        crashes.append((args.duration * 0.4, pid))
    plan = ServePlan(
        n=args.n,
        k=args.k,
        seed=args.seed,
        behavior=args.behavior,
        timescale=args.timescale,
        duration=args.duration,
        rate=args.rate,
        crashes=crashes,
        restart_delay=args.restart_delay,
        run_dir=args.run_dir,
        profile=args.profile,
    )
    report = run_serve(plan)
    print(f"run dir:      {report.run_dir}")
    print(f"injected:     {report.injected} stimuli")
    print(f"crashes:      {report.crashes} (SIGKILL)")
    print(f"deliveries:   {report.deliveries}")
    print(f"committed:    {len(report.committed)} outputs")
    print(f"wall time:    {report.wall_seconds:.1f}s")
    if report.violations:
        print("\nCERTIFICATION VIOLATIONS:")
        for violation in report.violations[:10]:
            print(" *", violation)
        return 1
    print("\ncertified: no violations (post-hoc oracle over dep.* traces)")
    return 0


def cmd_serve_worker(args: argparse.Namespace) -> int:
    from repro.backplane.worker import main as worker_main

    return worker_main(args.pid, args.run_dir)


def cmd_load(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.backplane.loadgen import load_main

    port, n, timescale = args.port, args.n, args.timescale
    if args.run_dir is not None:
        with open(os.path.join(args.run_dir, "run.json"),
                  encoding="utf-8") as fh:
            manifest = json.load(fh)
        port = manifest["port"]
        n = manifest["n"]
        timescale = manifest["timescale"]
    if port is None or n is None:
        print("load needs --run-dir, or --port and --n", file=sys.stderr)
        return 2
    return load_main(port, n, args.seed, args.duration, args.rate,
                     timescale or 0.02, exclude=args.exclude or (),
                     profile=args.profile)


def cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("workloads:")
    for name in WORKLOADS:
        print(f"  {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="K-optimistic logging (Wang/Damani/Garg, ICDCS 1997) "
                    "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a reproduction experiment")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.set_defaults(func=cmd_experiment)

    sim = sub.add_parser("simulate", help="run one ad-hoc simulation")
    sim.add_argument("--n", type=int, default=6, help="number of processes")
    sim.add_argument("--k", type=int, default=None,
                     help="degree of optimism (default: N)")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--duration", type=float, default=800.0)
    sim.add_argument("--rate", type=float, default=0.6,
                     help="workload injection rate")
    sim.add_argument("--workload", choices=WORKLOADS, default="random_peers")
    sim.add_argument("--crash", type=int, default=None, metavar="PID",
                     help="crash this process mid-run")
    sim.add_argument("--output-driven-logging", action="store_true")
    sim.add_argument("--adaptive-k", action="store_true",
                     help="run the per-process adaptive-K controller "
                          "(see docs/CONTROL.md)")
    sim.add_argument("--slo", type=float, default=0.0,
                     help="output-commit latency SLO target in virtual "
                          "units (0 disables)")
    sim.add_argument("--parallel-workers", type=int, default=0, metavar="W",
                     help="run the epoch-parallel runner on W worker "
                          "processes (>=2; certifies post-hoc, see "
                          "docs/PERF.md)")
    sim.set_defaults(func=cmd_simulate)

    from repro.check.cli import configure as configure_check

    chk = sub.add_parser(
        "check", help="systematic schedule/fault exploration checker"
    )
    configure_check(chk)

    from repro.perf.cli import configure as configure_bench

    bench = sub.add_parser(
        "bench", help="run the performance suite / compare BENCH files"
    )
    configure_bench(bench)

    serve = sub.add_parser(
        "serve", help="run the protocol over a real multi-process backplane"
    )
    serve.add_argument("--n", type=int, default=4, help="number of workers")
    serve.add_argument("--k", type=int, default=None,
                       help="degree of optimism (default: N)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--duration", type=float, default=200.0,
                       help="load window in virtual time units")
    serve.add_argument("--rate", type=float, default=1.0,
                       help="stimuli per virtual unit (0: external "
                            "'repro load' drives injection)")
    serve.add_argument("--profile", choices=["uniform", "openloop"],
                       default="uniform",
                       help="built-in load arrival shape (openloop: "
                            "heavy-tailed + diurnal + bursts)")
    serve.add_argument("--timescale", type=float, default=0.02,
                       help="real seconds per virtual unit")
    serve.add_argument("--crash", type=int, action="append", metavar="PID",
                       help="SIGKILL this worker mid-run (repeatable)")
    serve.add_argument("--restart-delay", type=float, default=50.0,
                       help="virtual units between SIGKILL and respawn")
    serve.add_argument("--behavior", choices=["hopchain", "echo"],
                       default="hopchain")
    serve.add_argument("--run-dir", default=None,
                       help="run directory (default: a fresh temp dir)")
    serve.set_defaults(func=cmd_serve)

    worker = sub.add_parser("serve-worker")  # internal: spawned by serve
    worker.add_argument("--pid", type=int, required=True)
    worker.add_argument("--run-dir", required=True)
    worker.set_defaults(func=cmd_serve_worker)

    load = sub.add_parser(
        "load", help="inject deterministic load into a running serve run"
    )
    load.add_argument("--run-dir", default=None,
                      help="serve run directory (reads port/n/timescale "
                           "from its run.json)")
    load.add_argument("--port", type=int, default=None)
    load.add_argument("--n", type=int, default=None)
    load.add_argument("--timescale", type=float, default=None)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--duration", type=float, default=200.0)
    load.add_argument("--rate", type=float, default=1.0)
    load.add_argument("--profile", choices=["uniform", "openloop"],
                      default="uniform",
                      help="arrival shape (must match the serve side for "
                           "differential comparison)")
    load.add_argument("--exclude", type=int, action="append", metavar="PID",
                      help="never use PID as an entry point (repeatable)")
    load.set_defaults(func=cmd_load)

    lst = sub.add_parser("list", help="list experiments and workloads")
    lst.set_defaults(func=cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
