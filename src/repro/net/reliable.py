"""Ack/retransmit machinery for control traffic.

Failure announcements must eventually reach every process (Theorem 1's
orphan detection is driven by them), but an unreliable network may drop
any individual transmission.  :class:`ControlRetransmitter` provides
at-least-once delivery on top of the lossy channels: every reliable
control send is wrapped in a :class:`~repro.net.message.ControlEnvelope`,
acknowledged by the destination transport, and retransmitted on a timer
with exponential backoff until acked or a bounded retry budget runs out.

The budget is a safety valve against a destination that never comes back;
with the default parameters the retry span far exceeds any realistic
downtime or partition, so exhaustion is itself a red flag that runs
surface in their metrics (``ctl_budget_exhausted``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, TYPE_CHECKING

from repro.net.message import ControlAck, ControlEnvelope

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class ReliableConfig:
    """Retry policy for reliable control delivery."""

    rto: float = 4.0          #: initial retransmission timeout
    backoff: float = 2.0      #: multiplier applied after each retry
    rto_max: float = 60.0     #: backoff ceiling
    budget: int = 16          #: maximum retransmissions per envelope

    def validate(self) -> None:
        if self.rto <= 0 or self.backoff < 1.0 or self.rto_max < self.rto:
            raise ValueError(f"invalid reliable-control timing: {self}")
        if self.budget < 0:
            raise ValueError("retry budget must be non-negative")


class _Pending:
    __slots__ = ("envelope", "attempts", "rto", "first_sent")

    def __init__(self, envelope: ControlEnvelope, rto: float, now: float):
        self.envelope = envelope
        self.attempts = 0
        self.rto = rto
        self.first_sent = now


class ControlRetransmitter:
    """Sender-side bookkeeping for reliable control envelopes.

    ``transmit`` is the lossy-path callback (the network's fault-injecting
    control transmission); the retransmitter never talks to channels
    directly, so it composes with any fault model.
    """

    def __init__(
        self,
        engine: "Engine",
        transmit: Callable[[ControlEnvelope], None],
        config: ReliableConfig,
    ):
        config.validate()
        self.engine = engine
        self.transmit = transmit
        self.config = config
        self._pending: Dict[int, _Pending] = {}
        self._seq = 0
        self.sent = 0
        self.retransmits = 0
        self.acked = 0
        self.budget_exhausted = 0
        self.ack_rtt_total = 0.0

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Reliably send ``payload`` from ``src`` to ``dst``."""
        seq = self._seq
        self._seq += 1
        envelope = ControlEnvelope(seq, src, dst, payload)
        self._pending[seq] = _Pending(envelope, self.config.rto, self.engine.now)
        self.sent += 1
        self.transmit(envelope)
        self.engine.schedule(self.config.rto, lambda: self._retry(seq))

    def on_ack(self, ack: ControlAck) -> bool:
        """Record an ack; returns False for duplicate/stale acks."""
        pending = self._pending.pop(ack.seq, None)
        if pending is None:
            return False
        self.acked += 1
        self.ack_rtt_total += self.engine.now - pending.first_sent
        return True

    def _retry(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:
            return  # acked in the meantime; the timer dies quietly
        if pending.attempts >= self.config.budget:
            del self._pending[seq]
            self.budget_exhausted += 1
            return
        pending.attempts += 1
        self.retransmits += 1
        self.transmit(pending.envelope)
        pending.rto = min(pending.rto * self.config.backoff, self.config.rto_max)
        self.engine.schedule(pending.rto, lambda: self._retry(seq))

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def mean_ack_rtt(self) -> float:
        if self.acked == 0:
            return 0.0
        return self.ack_rtt_total / self.acked
