"""Ack/retransmit machinery for control traffic.

Failure announcements must eventually reach every process (Theorem 1's
orphan detection is driven by them), but an unreliable network may drop
any individual transmission.  :class:`ControlRetransmitter` provides
at-least-once delivery on top of the lossy channels: every reliable
control send is wrapped in a :class:`~repro.net.message.ControlEnvelope`,
acknowledged by the destination transport, and retransmitted on a timer
with exponential backoff until acked or a bounded retry budget runs out.

The budget is a safety valve against a destination that never comes back;
with the default parameters the retry span far exceeds any realistic
downtime or partition, so exhaustion is itself a red flag that runs
surface in their metrics (``ctl_budget_exhausted``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.net.message import ControlAck, ControlEnvelope

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine, EventHandle


@dataclass(frozen=True)
class ReliableConfig:
    """Retry policy for reliable control delivery."""

    rto: float = 4.0          #: initial retransmission timeout
    backoff: float = 2.0      #: multiplier applied after each retry
    rto_max: float = 60.0     #: backoff ceiling
    budget: int = 16          #: maximum retransmissions per envelope

    def validate(self) -> None:
        if self.rto <= 0 or self.backoff < 1.0 or self.rto_max < self.rto:
            raise ValueError(f"invalid reliable-control timing: {self}")
        if self.budget < 0:
            raise ValueError("retry budget must be non-negative")


class _Pending:
    __slots__ = ("envelope", "attempts", "rto", "first_sent", "timer")

    def __init__(self, envelope: ControlEnvelope, rto: float, now: float):
        self.envelope = envelope
        self.attempts = 0
        self.rto = rto
        self.first_sent = now
        #: Handle of the scheduled retry; cancelled on ack, on budget
        #: exhaustion, and when the source process is parked.
        self.timer: Optional["EventHandle"] = None


class ControlRetransmitter:
    """Sender-side bookkeeping for reliable control envelopes.

    ``transmit`` is the lossy-path callback (the network's fault-injecting
    control transmission); the retransmitter never talks to channels
    directly, so it composes with any fault model.
    """

    def __init__(
        self,
        engine: "Engine",
        transmit: Callable[[ControlEnvelope], None],
        config: ReliableConfig,
    ):
        config.validate()
        self.engine = engine
        self.transmit = transmit
        self.config = config
        self._pending: Dict[int, _Pending] = {}
        #: Entries whose *source* process is currently crashed, keyed by
        #: source pid.  A fail-stop process must not transmit, so its
        #: pending envelopes sit here with their timers cancelled until
        #: the process restarts (Theorem 1 still needs them delivered —
        #: an old incarnation's announcement is not subsumed by a newer
        #: one, so parked entries resume rather than being dropped).
        self._parked: Dict[int, Dict[int, _Pending]] = {}
        self._seq = 0
        self.sent = 0
        self.retransmits = 0
        self.acked = 0
        self.budget_exhausted = 0
        self.ack_rtt_total = 0.0

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Reliably send ``payload`` from ``src`` to ``dst``."""
        seq = self._seq
        self._seq += 1
        envelope = ControlEnvelope(seq, src, dst, payload)
        pending = _Pending(envelope, self.config.rto, self.engine.now)
        self._pending[seq] = pending
        self.sent += 1
        self.transmit(envelope)
        pending.timer = self.engine.schedule(
            self.config.rto, lambda: self._retry(seq))

    def on_ack(self, ack: ControlAck) -> bool:
        """Record an ack; returns False for duplicate/stale acks.

        Acks for *parked* envelopes are deliberately stale: the source's
        transport endpoint died with the process, so an ack racing the
        crash counts as lost and the envelope is retransmitted after
        restart (the destination deduplicates by ``(src, seq)``).
        """
        pending = self._pending.pop(ack.seq, None)
        if pending is None:
            return False
        if pending.timer is not None:
            pending.timer.cancel()
        self.acked += 1
        self.ack_rtt_total += self.engine.now - pending.first_sent
        return True

    def _retry(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:
            return  # acked or parked in the meantime; the timer dies quietly
        if pending.attempts >= self.config.budget:
            # The timer that brought us here was the entry's only live one,
            # so dropping the entry leaves nothing scheduled.
            del self._pending[seq]
            pending.timer = None
            self.budget_exhausted += 1
            return
        pending.attempts += 1
        self.retransmits += 1
        self.transmit(pending.envelope)
        pending.rto = min(pending.rto * self.config.backoff, self.config.rto_max)
        pending.timer = self.engine.schedule(
            pending.rto, lambda: self._retry(seq))

    # -- fail-stop gating ----------------------------------------------------

    def park_source(self, src: int) -> None:
        """The source process crashed: silence its pending envelopes.

        Cancels every retry timer for entries whose envelope originates at
        ``src`` and moves them aside; a dead process transmits nothing."""
        matched = [s for s, p in self._pending.items()
                   if p.envelope.src == src]
        if not matched:
            return
        parked = self._parked.setdefault(src, {})
        for seq in matched:
            pending = self._pending.pop(seq)
            if pending.timer is not None:
                pending.timer.cancel()
                pending.timer = None
            parked[seq] = pending

    def resume_source(self, src: int) -> None:
        """The source process restarted: revive its parked envelopes.

        Each entry is retransmitted immediately (the destination may have
        missed every pre-crash copy) and its retry cycle restarts from the
        backoff it had reached; attempts already spent keep counting
        against the budget."""
        parked = self._parked.pop(src, None)
        if not parked:
            return
        for seq, pending in parked.items():
            self._pending[seq] = pending
            self.retransmits += 1
            self.transmit(pending.envelope)
            pending.timer = self.engine.schedule(
                pending.rto, lambda s=seq: self._retry(s))

    @property
    def outstanding(self) -> int:
        """Live entries still awaiting an ack (parked ones included: they
        are not yet delivered, merely silenced while their source is down).
        """
        return len(self._pending) + sum(len(p) for p in self._parked.values())

    def mean_ack_rtt(self) -> float:
        if self.acked == 0:
            return 0.0
        return self.ack_rtt_total / self.acked
