"""Point-to-point channels with pluggable latency models.

The K-optimistic protocol does not require FIFO ordering (Section 4.2), but
the Strom–Yemini baseline does; channels therefore support both modes.
Latency models add a per-piggyback-entry cost so that larger dependency
vectors make messages measurably more expensive — one of the failure-free
overheads the K parameter trades off.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.net.message import AppMessage


class LatencyModel:
    """Base class: draws a transmission delay for one message."""

    def delay(self, rng: random.Random, piggyback_entries: int = 0) -> float:
        raise NotImplementedError

    def draws_rng(self) -> bool:
        """Whether :meth:`delay` consumes random draws.  Deterministic
        models return False so the network can share one dummy rng across
        their channels instead of allocating a ~2.5 KB ``random.Random``
        per process pair (material at n=10k with gossip fanout)."""
        return True


class FixedLatency(LatencyModel):
    """Constant base delay plus a linear piggyback cost."""

    def __init__(self, base: float = 1.0, per_entry: float = 0.0):
        if base < 0 or per_entry < 0:
            raise ValueError("latencies must be non-negative")
        self.base = base
        self.per_entry = per_entry

    def delay(self, rng: random.Random, piggyback_entries: int = 0) -> float:
        return self.base + self.per_entry * piggyback_entries

    def draws_rng(self) -> bool:
        return False


class UniformLatency(LatencyModel):
    """Uniform random delay in [low, high] plus a linear piggyback cost."""

    def __init__(self, low: float, high: float, per_entry: float = 0.0):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        if per_entry < 0:
            raise ValueError("per_entry must be non-negative")
        self.low = low
        self.high = high
        self.per_entry = per_entry

    def delay(self, rng: random.Random, piggyback_entries: int = 0) -> float:
        return rng.uniform(self.low, self.high) + self.per_entry * piggyback_entries


class ExponentialLatency(LatencyModel):
    """Shifted-exponential delay: ``base + Exp(mean)`` plus piggyback cost."""

    def __init__(self, base: float, mean: float, per_entry: float = 0.0):
        if base < 0 or mean <= 0 or per_entry < 0:
            raise ValueError("invalid exponential latency parameters")
        self.base = base
        self.mean = mean
        self.per_entry = per_entry

    def delay(self, rng: random.Random, piggyback_entries: int = 0) -> float:
        return self.base + rng.expovariate(1.0 / self.mean) + self.per_entry * piggyback_entries


class Channel:
    """A unidirectional channel from ``src`` to ``dst``.

    ``transmit`` computes the arrival time of a message and invokes the
    engine-provided scheduler.  In FIFO mode arrival times are clamped to be
    non-decreasing so that reordering never happens on a single channel.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        latency: LatencyModel,
        rng: random.Random,
        fifo: bool = False,
    ):
        self.src = src
        self.dst = dst
        self.latency = latency
        self.rng = rng
        self.fifo = fifo
        self._last_arrival = float("-inf")
        self.transmitted = 0

    def arrival_time(self, now: float, piggyback_entries: int = 0) -> float:
        """Arrival time for a message handed to the channel at ``now``."""
        arrival = now + self.latency.delay(self.rng, piggyback_entries)
        if self.fifo and arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival
        self.transmitted += 1
        return arrival
