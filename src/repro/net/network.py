"""The interconnect: N processes, N*N channels, broadcast support.

The network owns one :class:`Channel` per ordered process pair and turns
"transmit" requests into engine events that invoke the destination's
receive hook.  Both application messages and control traffic (failure
announcements, logging progress notifications) travel through the same
channels; control messages carry no piggybacked vector.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.channel import Channel, FixedLatency, LatencyModel
from repro.net.message import AppMessage
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

#: Hook invoked when a message (of any kind) arrives at a process.
ReceiveHook = Callable[[Any], None]


class Network:
    """Message transport between simulated processes."""

    def __init__(
        self,
        n: int,
        engine: Engine,
        rngs: RngRegistry,
        latency: Optional[LatencyModel] = None,
        control_latency: Optional[LatencyModel] = None,
        fifo: bool = False,
        tracer: Optional[Tracer] = None,
    ):
        if n <= 0:
            raise ValueError(f"network needs at least one process, got n={n}")
        self.n = n
        self.engine = engine
        self.tracer = tracer
        self._latency = latency or FixedLatency(1.0)
        self._control_latency = control_latency or self._latency
        self._hooks: List[Optional[ReceiveHook]] = [None] * n
        self._channels: Dict[Tuple[int, int, bool], Channel] = {}
        self._rngs = rngs
        self._fifo = fifo
        self.app_messages_sent = 0
        self.control_messages_sent = 0
        self.piggyback_entries_total = 0
        self.piggyback_entries_max = 0

    # -- wiring ---------------------------------------------------------------

    def register(self, pid: int, hook: ReceiveHook) -> None:
        """Register the receive hook for process ``pid``."""
        self._check_pid(pid)
        self._hooks[pid] = hook

    def _channel(self, src: int, dst: int, control: bool) -> Channel:
        key = (src, dst, control)
        channel = self._channels.get(key)
        if channel is None:
            latency = self._control_latency if control else self._latency
            rng = self._rngs.stream(f"net/{src}->{dst}/{'ctl' if control else 'app'}")
            channel = Channel(src, dst, latency, rng, fifo=self._fifo)
            self._channels[key] = channel
        return channel

    # -- transmission -----------------------------------------------------------

    def send_app(self, msg: AppMessage) -> None:
        """Transmit an application message (piggyback cost applies)."""
        self._check_pid(msg.src)
        self._check_pid(msg.dst)
        entries = msg.piggyback_size()
        self.app_messages_sent += 1
        self.piggyback_entries_total += entries
        if entries > self.piggyback_entries_max:
            self.piggyback_entries_max = entries
        channel = self._channel(msg.src, msg.dst, control=False)
        arrival = channel.arrival_time(self.engine.now, entries)
        if self.tracer:
            self.tracer.record(
                self.engine.now, "net.send", msg.src,
                msg=str(msg.msg_id), dst=msg.dst, entries=entries,
            )
        self.engine.schedule_at(arrival, lambda m=msg: self._arrive(m.dst, m))

    def send_control(self, src: int, dst: int, payload: Any) -> None:
        """Transmit a control message (announcement or notification)."""
        self._check_pid(src)
        self._check_pid(dst)
        self.control_messages_sent += 1
        channel = self._channel(src, dst, control=True)
        arrival = channel.arrival_time(self.engine.now, 0)
        self.engine.schedule_at(arrival, lambda p=payload: self._arrive(dst, p))

    def broadcast_control(self, src: int, payload: Any, include_self: bool = False) -> None:
        """Send a control message to every (other) process."""
        for dst in range(self.n):
            if dst == src and not include_self:
                continue
            self.send_control(src, dst, payload)

    def _arrive(self, dst: int, payload: Any) -> None:
        hook = self._hooks[dst]
        if hook is None:
            raise RuntimeError(f"no receive hook registered for process {dst}")
        hook(payload)

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")

    # -- statistics ------------------------------------------------------------

    def mean_piggyback_entries(self) -> float:
        """Average dependency-vector size over all app messages sent."""
        if self.app_messages_sent == 0:
            return 0.0
        return self.piggyback_entries_total / self.app_messages_sent
