"""The interconnect: N processes, N*N channels, broadcast support.

The network owns one :class:`Channel` per ordered process pair and turns
"transmit" requests into engine events that invoke the destination's
receive hook.  Both application messages and control traffic (failure
announcements, logging progress notifications) travel through the same
channels; control messages carry no piggybacked vector.

With a :class:`~repro.net.faults.NetworkFaultModel` attached, every
transmission may be dropped, duplicated, or delayed out of order, and a
scheduled partition silences whole process groups.  Control traffic sent
with ``reliable=True`` then goes through the ack/retransmit layer
(:mod:`repro.net.reliable`); :class:`~repro.net.message.ControlAck`
records are consumed by the network itself — they are transport-level
bookkeeping and never reach a protocol handler.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.channel import Channel, FixedLatency, LatencyModel
from repro.net.faults import NetworkFaultModel
from repro.net.message import AppMessage, ControlAck, ControlEnvelope
from repro.net.reliable import ControlRetransmitter, ReliableConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

#: Hook invoked when a message (of any kind) arrives at a process.
ReceiveHook = Callable[[Any], None]

#: Shared placeholder rng for channels whose latency model never draws.
_NO_DRAW_RNG = random.Random(0)


class Network:
    """Message transport between simulated processes."""

    def __init__(
        self,
        n: int,
        engine: Engine,
        rngs: RngRegistry,
        latency: Optional[LatencyModel] = None,
        control_latency: Optional[LatencyModel] = None,
        fifo: bool = False,
        tracer: Optional[Tracer] = None,
        faults: Optional[NetworkFaultModel] = None,
        reliable_config: Optional[ReliableConfig] = None,
    ):
        if n <= 0:
            raise ValueError(f"network needs at least one process, got n={n}")
        self.n = n
        self.engine = engine
        self.tracer = tracer
        self._latency = latency or FixedLatency(1.0)
        self._control_latency = control_latency or self._latency
        self._hooks: List[Optional[ReceiveHook]] = [None] * n
        self._channels: Dict[Tuple[int, int, bool], Channel] = {}
        self._rngs = rngs
        self._fifo = fifo
        self.faults = faults
        self.reliable: Optional[ControlRetransmitter] = None
        if reliable_config is not None:
            self.reliable = ControlRetransmitter(
                engine, self._transmit_envelope, reliable_config
            )
        self.app_messages_sent = 0
        self.control_messages_sent = 0
        self.piggyback_entries_total = 0
        self.piggyback_entries_max = 0
        # Fault-injection counters (all zero on a reliable network).
        self.app_dropped = 0
        self.control_dropped = 0
        self.partition_drops = 0
        self.duplicates_injected = 0

    # -- wiring ---------------------------------------------------------------

    def register(self, pid: int, hook: ReceiveHook) -> None:
        """Register the receive hook for process ``pid``."""
        self._check_pid(pid)
        self._hooks[pid] = hook

    def _channel(self, src: int, dst: int, control: bool) -> Channel:
        key = (src, dst, control)
        channel = self._channels.get(key)
        if channel is None:
            latency = self._control_latency if control else self._latency
            if latency.draws_rng():
                rng = self._rngs.stream(
                    f"net/{src}->{dst}/{'ctl' if control else 'app'}")
            else:
                # Deterministic latency never draws: share one dummy rng
                # instead of allocating a Random per process pair.
                rng = _NO_DRAW_RNG
            channel = Channel(src, dst, latency, rng, fifo=self._fifo)
            self._channels[key] = channel
        return channel

    # -- transmission -----------------------------------------------------------

    def send_app(self, msg: AppMessage) -> None:
        """Transmit an application message (piggyback cost applies)."""
        self._check_pid(msg.src)
        self._check_pid(msg.dst)
        entries = msg.piggyback_size()
        self.app_messages_sent += 1
        self.piggyback_entries_total += entries
        if entries > self.piggyback_entries_max:
            self.piggyback_entries_max = entries
        if self.tracer:
            self.tracer.record(
                self.engine.now, "net.send", msg.src,
                msg=str(msg.msg_id), dst=msg.dst, entries=entries,
            )
        engine = self.engine
        # Labels exist for external choosers/counterexample dumps; skip the
        # f-string on the hot path when nothing will read them.
        label = (f"app:{msg.src}->{msg.dst}:{msg.msg_id}"
                 if engine.wants_labels else None)
        if self.faults is not None:
            decision = self.faults.decide(msg.src, msg.dst, control=False)
            if decision.drop:
                self._count_drop(decision, control=False, src=msg.src,
                                 dst=msg.dst, what=str(msg.msg_id))
                return
            channel = self._channel(msg.src, msg.dst, control=False)
            arrival = channel.arrival_time(engine.now, entries)
            arrival += decision.extra_delay
            self._deliver_at(arrival, msg.src, msg.dst, msg, label=label)
            if decision.duplicate:
                self.duplicates_injected += 1
                dup_arrival = channel.arrival_time(engine.now, entries)
                if self.tracer:
                    self.tracer.record(engine.now, "net.duplicate", msg.src,
                                       msg=str(msg.msg_id), dst=msg.dst)
                self._deliver_at(dup_arrival, msg.src, msg.dst, msg,
                                 label=f"dup:{label}" if label else None)
            return
        channel = self._channel(msg.src, msg.dst, control=False)
        arrival = channel.arrival_time(engine.now, entries)
        self._deliver_at(arrival, msg.src, msg.dst, msg, label=label)

    def send_control(
        self, src: int, dst: int, payload: Any, reliable: bool = False
    ) -> None:
        """Transmit a control message (announcement or notification).

        ``reliable=True`` routes through the ack/retransmit layer when one
        is configured; without one it degrades to the plain lossy path
        (which on a fault-free network *is* reliable).
        """
        self._check_pid(src)
        self._check_pid(dst)
        if reliable and self.reliable is not None:
            self.reliable.send(src, dst, payload)
            return
        self._transmit_control(src, dst, payload)

    def broadcast_control(
        self, src: int, payload: Any, include_self: bool = False,
        reliable: bool = False,
    ) -> None:
        """Send a control message to every (other) process."""
        for dst in range(self.n):
            if dst == src and not include_self:
                continue
            self.send_control(src, dst, payload, reliable=reliable)

    # -- fail-stop gating ------------------------------------------------------

    def on_process_crash(self, pid: int) -> None:
        """``pid`` fail-stopped: park its pending reliable-control entries
        so nothing is transmitted on a dead process's behalf."""
        if self.reliable is not None:
            self.reliable.park_source(pid)

    def on_process_restart(self, pid: int) -> None:
        """``pid`` completed Restart: resume its parked control entries."""
        if self.reliable is not None:
            self.reliable.resume_source(pid)

    def _transmit_envelope(self, envelope: ControlEnvelope) -> None:
        """Lossy-path callback used by the control retransmitter."""
        self._transmit_control(envelope.src, envelope.dst, envelope)

    def _transmit_control(self, src: int, dst: int, payload: Any) -> None:
        self.control_messages_sent += 1
        engine = self.engine
        label = (f"ctl:{src}->{dst}:{type(payload).__name__}"
                 if engine.wants_labels else None)
        if self.faults is not None:
            decision = self.faults.decide(src, dst, control=True)
            if decision.drop:
                self._count_drop(decision, control=True, src=src, dst=dst,
                                 what=str(payload))
                return
            channel = self._channel(src, dst, control=True)
            arrival = channel.arrival_time(engine.now, 0)
            arrival += decision.extra_delay
            self._deliver_at(arrival, src, dst, payload, label=label)
            if decision.duplicate:
                self.duplicates_injected += 1
                dup_arrival = channel.arrival_time(engine.now, 0)
                self._deliver_at(dup_arrival, src, dst, payload,
                                 label=f"dup:{label}" if label else None)
            return
        channel = self._channel(src, dst, control=True)
        arrival = channel.arrival_time(engine.now, 0)
        self._deliver_at(arrival, src, dst, payload, label=label)

    def _deliver_at(
        self, arrival: float, src: int, dst: int, payload: Any,
        label: Optional[str] = None,
    ) -> None:
        """Schedule delivery of ``payload`` at ``dst`` for virtual time
        ``arrival``.  The single seam every transmission goes through —
        the parallel worker network overrides it to export cross-worker
        deliveries to the epoch outbox instead of scheduling locally."""
        self.engine.schedule_at_raw(arrival, self._arrive, (dst, payload),
                                    label=label, shard=dst)

    def _count_drop(self, decision, control: bool, src: int, dst: int,
                    what: str) -> None:
        if decision.partition_drop:
            self.partition_drops += 1
        if control:
            self.control_dropped += 1
        else:
            self.app_dropped += 1
        if self.tracer:
            reason = "partition" if decision.partition_drop else "loss"
            self.tracer.record(self.engine.now, "net.drop", src,
                               dst=dst, what=what, reason=reason,
                               control=control)

    def _arrive(self, dst: int, payload: Any) -> None:
        if isinstance(payload, ControlAck):
            # Transport-level bookkeeping: never surfaces to the protocol.
            if self.reliable is not None:
                self.reliable.on_ack(payload)
            return
        hook = self._hooks[dst]
        if hook is None:
            raise RuntimeError(f"no receive hook registered for process {dst}")
        hook(payload)

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")

    # -- statistics ------------------------------------------------------------

    def mean_piggyback_entries(self) -> float:
        """Average dependency-vector size over all app messages sent."""
        if self.app_messages_sent == 0:
            return 0.0
        return self.piggyback_entries_total / self.app_messages_sent
