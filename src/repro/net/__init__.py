"""Network substrate: messages, channels with latency models, broadcast."""

from repro.net.channel import (
    Channel,
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.message import (
    AppMessage,
    FailureAnnouncement,
    LogProgressNotification,
    OutputRecord,
)
from repro.net.network import Network

__all__ = ["AppMessage", "Channel", "ExponentialLatency", "FailureAnnouncement",
           "FixedLatency", "LatencyModel", "LogProgressNotification", "Network",
           "OutputRecord", "UniformLatency"]
