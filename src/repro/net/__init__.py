"""Network substrate: messages, channels with latency models, broadcast,
fault injection, and the ack/retransmit reliability layer."""

from repro.net.channel import (
    Channel,
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.faults import ChannelFaults, FaultDecision, NetworkFaultModel
from repro.net.message import (
    AppAck,
    AppMessage,
    ControlAck,
    ControlEnvelope,
    FailureAnnouncement,
    LogProgressNotification,
    OutputRecord,
)
from repro.net.network import Network
from repro.net.reliable import ControlRetransmitter, ReliableConfig

__all__ = ["AppAck", "AppMessage", "Channel", "ChannelFaults", "ControlAck",
           "ControlEnvelope", "ControlRetransmitter", "ExponentialLatency",
           "FailureAnnouncement", "FaultDecision", "FixedLatency",
           "LatencyModel", "LogProgressNotification", "Network",
           "NetworkFaultModel", "OutputRecord", "ReliableConfig",
           "UniformLatency"]
