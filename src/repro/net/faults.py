"""Network fault model: message loss, duplication, reordering, partitions.

The paper assumes reliable channels (footnote 3 declares lost in-transit
messages out of scope and failure announcements use reliable broadcast).
This module drops both assumptions: every transmission consults a
:class:`NetworkFaultModel` that may drop it, duplicate it, or delay it out
of order, and a scheduled partition blocks whole process groups.

Determinism: every probabilistic decision is drawn from a named
:class:`~repro.sim.rng.RngRegistry` stream keyed by the channel
(``faults/{src}->{dst}/{app|ctl}``), so the same seed produces the same
fault pattern regardless of what any other component draws.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class ChannelFaults:
    """Per-channel fault probabilities.

    ``drop``/``duplicate``/``reorder`` are independent per-transmission
    probabilities; a reordered message is additionally delayed by a
    uniform draw from ``[0, reorder_spread]`` on top of its normal
    latency (non-FIFO channels then overtake it naturally).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_spread: float = 4.0

    def validate(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0,1], got {p}")
        if self.reorder_spread < 0:
            raise ValueError("reorder_spread must be non-negative")

    @property
    def any_enabled(self) -> bool:
        return self.drop > 0 or self.duplicate > 0 or self.reorder > 0


@dataclass(frozen=True)
class FaultDecision:
    """The fate of one transmission."""

    drop: bool = False
    partition_drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0


DELIVER = FaultDecision()


class NetworkFaultModel:
    """Decides, per transmission, what the unreliable network does to it.

    Also owns the partition state: :meth:`start_partition` /
    :meth:`heal` are driven by the failure schedule (via the harness),
    and :meth:`partitioned` answers whether a given ordered pair is
    currently separated.  Time spent partitioned is accumulated for the
    metrics (``partition_time``).
    """

    def __init__(
        self,
        rngs: RngRegistry,
        default: Optional[ChannelFaults] = None,
        overrides: Optional[Dict[Tuple[int, int], ChannelFaults]] = None,
        apply_to_control: bool = True,
    ):
        self.rngs = rngs
        self.default = default or ChannelFaults()
        self.default.validate()
        self.overrides = dict(overrides or {})
        for faults in self.overrides.values():
            faults.validate()
        self.apply_to_control = apply_to_control
        self._islands: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._partition_started: Optional[float] = None
        self.partition_time = 0.0
        self.partitions_seen = 0

    # -- channel fault parameters ------------------------------------------

    def faults_for(self, src: int, dst: int) -> ChannelFaults:
        return self.overrides.get((src, dst), self.default)

    def set_rates(
        self,
        drop: Optional[float] = None,
        duplicate: Optional[float] = None,
        reorder: Optional[float] = None,
    ) -> None:
        """Update the default rates (a :class:`LossEvent` firing)."""
        changes = {
            name: value
            for name, value in (("drop", drop), ("duplicate", duplicate),
                                ("reorder", reorder))
            if value is not None
        }
        self.default = replace(self.default, **changes)
        self.default.validate()

    # -- partitions ---------------------------------------------------------

    def start_partition(self, islands: Tuple[Tuple[int, ...], ...], now: float) -> None:
        """Split the network; replaces any partition already in force."""
        if self._islands is not None:
            self.heal(now)
        self._islands = tuple(tuple(group) for group in islands)
        self._partition_started = now
        self.partitions_seen += 1

    def heal(self, now: float) -> None:
        """Dissolve the partition (idempotent)."""
        if self._islands is None:
            return
        if self._partition_started is not None:
            self.partition_time += now - self._partition_started
        self._islands = None
        self._partition_started = None

    @property
    def partition_active(self) -> bool:
        return self._islands is not None

    def partitioned(self, src: int, dst: int) -> bool:
        """True when ``src`` and ``dst`` are on different sides."""
        if self._islands is None:
            return False

        def side(pid: int) -> int:
            for index, group in enumerate(self._islands):
                if pid in group:
                    return index
            return -1  # the implicit mainland of unlisted processes

        return side(src) != side(dst)

    # -- the per-transmission decision ---------------------------------------

    def decide(self, src: int, dst: int, control: bool) -> FaultDecision:
        """The fate of one transmission on the ``src``->``dst`` channel."""
        if self.partitioned(src, dst):
            return FaultDecision(drop=True, partition_drop=True)
        if control and not self.apply_to_control:
            return DELIVER
        faults = self.faults_for(src, dst)
        if not faults.any_enabled:
            return DELIVER
        rng = self._stream(src, dst, control)
        if faults.drop > 0 and rng.random() < faults.drop:
            return FaultDecision(drop=True)
        duplicate = faults.duplicate > 0 and rng.random() < faults.duplicate
        extra = 0.0
        if faults.reorder > 0 and rng.random() < faults.reorder:
            extra = rng.uniform(0.0, faults.reorder_spread)
        if duplicate or extra:
            return FaultDecision(duplicate=duplicate, extra_delay=extra)
        return DELIVER

    def _stream(self, src: int, dst: int, control: bool) -> random.Random:
        kind = "ctl" if control else "app"
        return self.rngs.stream(f"faults/{src}->{dst}/{kind}")
