"""Dependency entries: the ``(inc, sii)`` pairs of the protocol pseudo-code.

Figure 2 of the paper declares ``type entry : (inc int, ssi int)`` and
represents an omitted dependency as ``NULL``, defined to be lexicographically
smaller than any non-NULL entry.  We model entries as a frozen, totally
ordered dataclass and NULL as Python ``None``; the helpers below implement
the NULL-aware lexicographic operations the pseudo-code relies on
(``max`` in Deliver_message, ``min`` in Check_deliverability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.types import IncarnationId, IntervalIndex


@dataclass(frozen=True, order=True)
class Entry:
    """A dependency on (or identity of) state interval ``(inc, sii)``.

    Ordering is lexicographic on ``(inc, sii)``, exactly the
    "lexicographical maximum operation" of Strom & Yemini that the paper
    reuses:  a higher incarnation always dominates, and within an
    incarnation a higher interval index dominates.
    """

    inc: IncarnationId
    sii: IntervalIndex

    def next_interval(self) -> "Entry":
        """The entry for the next state interval of the same incarnation."""
        return Entry(self.inc, self.sii + 1)

    def next_incarnation(self) -> "Entry":
        """The first interval of the next incarnation (Restart/Rollback do
        ``current.inc++ ; current.sii++``)."""
        return Entry(self.inc + 1, self.sii + 1)

    def __str__(self) -> str:
        return f"({self.inc},{self.sii})"


#: An optional entry: ``None`` encodes the pseudo-code's NULL.
OptEntry = Optional[Entry]


def lex_max(a: OptEntry, b: OptEntry) -> OptEntry:
    """NULL-aware lexicographic maximum (NULL < any entry)."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a >= b else b


def lex_min(a: OptEntry, b: OptEntry) -> OptEntry:
    """NULL-aware lexicographic minimum (NULL < any entry)."""
    if a is None or b is None:
        return None
    return a if a <= b else b


def entry_str(e: OptEntry) -> str:
    """Render an optional entry the way the paper writes it."""
    return "NULL" if e is None else str(e)
