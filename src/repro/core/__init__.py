"""The paper's core contribution: commit dependency tracking and the
K-optimistic logging protocol (Figures 2-3), plus the baseline protocols
it generalises."""

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry, lex_max, lex_min
from repro.core.protocol import KOptimisticProcess, ProtocolStats
from repro.core.tables import IncarnationEndTable, LoggingProgressTable

__all__ = [
    "DependencyVector",
    "Entry",
    "IncarnationEndTable",
    "KOptimisticProcess",
    "LoggingProgressTable",
    "ProtocolStats",
    "lex_max",
    "lex_min",
]
