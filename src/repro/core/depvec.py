"""The variable-size transitive dependency vector (``tdv`` in Figure 2).

The paper's presentation keeps a size-N array whose omittable entries are
set to NULL; an implementation "can omit NULL entries and convert any
non-NULL entry (t,x) for P_i to the (t,x)_i form".  We do exactly that:
:class:`DependencyVector` stores only the non-NULL entries — as two
parallel, pid-sorted columns: ``_pids`` (process ids) and ``_packed``
(entries packed ``(inc << PACK_SHIFT) | sii``, see
:mod:`repro.core.columnar`).  Packing preserves :class:`Entry`'s
lexicographic order, so the paper's lexical max is plain integer ``max``
and a merge is a two-pointer join over sorted int lists — no Entry
allocation on the hot path.  The *size* of the vector — the quantity the
integer K bounds (Theorem 4) — is therefore ``len(vector)``.

Piggybacking copies the sender's vector onto every outgoing message, which
made :meth:`copy` the hottest allocation site in the failure-free profile.
Copies are copy-on-write: the snapshot shares the columns until either
side mutates, at which point the mutator re-materialises its own lists.
Sharing matters because a buffered message's vector *is* mutated in place
(send-buffer nullification, Theorem 2), so an eager deep copy is the
semantic baseline that COW must — and does — preserve.  A monotonically
increasing :attr:`version` stamps every effective mutation so scan-heavy
callers (stability rescans) can skip work when nothing changed.

The pre-columnar dict-of-Entry implementation is retained as
:class:`ReferenceDependencyVector`; the property suite drives both through
random op sequences and asserts equal observable state.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.columnar import PACK_MASK, PACK_SHIFT
from repro.core.entry import Entry, OptEntry
from repro.types import ProcessId


class DependencyVector:
    """Sparse dependency vector over ``n`` processes (columnar layout).

    Entries record, per process, the highest-index state interval (of the
    highest incarnation seen) that the owner transitively depends on and
    that is *not yet known stable* (commit dependency tracking, Theorem 2).
    """

    __slots__ = ("n", "_pids", "_packed", "_shared", "version")

    def __init__(self, n: int, entries: Optional[Mapping[ProcessId, Entry]] = None):
        if n <= 0:
            raise ValueError(f"vector needs at least one process, got n={n}")
        self.n = n
        #: Sorted process ids with a non-NULL entry.
        self._pids: List[ProcessId] = []
        #: Parallel packed ``(inc << SHIFT) | sii`` values.
        self._packed: List[int] = []
        #: True while the columns may be aliased by a COW copy.
        self._shared = False
        #: Bumped on every effective mutation; lets callers cache scans.
        self.version = 0
        if entries:
            for pid, entry in entries.items():
                self.set(pid, entry)

    def _materialize(self) -> None:
        """Un-alias the columns before an in-place mutation."""
        if self._shared:
            self._pids = self._pids[:]
            self._packed = self._packed[:]
            self._shared = False

    # -- basic accessors ---------------------------------------------------

    def get(self, pid: ProcessId) -> OptEntry:
        """The entry for ``pid``, or ``None`` for the pseudo-code's NULL."""
        self._check_pid(pid)
        pids = self._pids
        i = bisect_left(pids, pid)
        if i < len(pids) and pids[i] == pid:
            packed = self._packed[i]
            return Entry(packed >> PACK_SHIFT, packed & PACK_MASK)
        return None

    def get_packed(self, pid: ProcessId) -> int:
        """Packed entry for ``pid``, or ``-1`` for NULL (hot path — the
        caller supplies a pid it read from another vector, no range check)."""
        pids = self._pids
        i = bisect_left(pids, pid)
        if i < len(pids) and pids[i] == pid:
            return self._packed[i]
        return -1

    def set(self, pid: ProcessId, entry: OptEntry) -> None:
        """Overwrite the entry for ``pid`` (``None`` clears it)."""
        self._check_pid(pid)
        if entry is None:
            self.nullify(pid)
            return
        packed = (entry.inc << PACK_SHIFT) | entry.sii
        pids = self._pids
        i = bisect_left(pids, pid)
        if i < len(pids) and pids[i] == pid:
            if self._packed[i] != packed:
                self._materialize()
                self._packed[i] = packed
                self.version += 1
        else:
            self._materialize()
            self._pids.insert(i, pid)
            self._packed.insert(i, packed)
            self.version += 1

    def nullify(self, pid: ProcessId) -> None:
        """Set the entry for ``pid`` to NULL (Theorem 2 omission)."""
        self._check_pid(pid)
        pids = self._pids
        i = bisect_left(pids, pid)
        if i < len(pids) and pids[i] == pid:
            self._materialize()
            del self._pids[i]
            del self._packed[i]
            self.version += 1

    def nullify_entry(self, pid: ProcessId, entry: Entry) -> None:
        """Drop one specific entry.  For this single-entry-per-process
        vector it is the same as :meth:`nullify`; the multi-incarnation
        vector of the fully-asynchronous baseline removes only the entry
        for ``entry.inc``."""
        self.nullify(pid)

    def non_null_count(self) -> int:
        """Number of non-NULL entries — the vector 'size' that K bounds."""
        return len(self._pids)

    def __len__(self) -> int:
        return len(self._pids)

    def processes(self) -> Iterator[ProcessId]:
        """Process ids that currently have a non-NULL entry."""
        return iter(list(self._pids))

    def items(self) -> Iterator[Tuple[ProcessId, Entry]]:
        """(pid, entry) pairs for non-NULL entries, in pid order."""
        return iter([(pid, Entry(p >> PACK_SHIFT, p & PACK_MASK))
                     for pid, p in zip(self._pids, self._packed)])

    def iter_items(self) -> Iterable[Tuple[ProcessId, Entry]]:
        """(pid, entry) pairs — the hot-path variant of :meth:`items`.
        (With the sorted columnar layout these come out in pid order too.)"""
        return ((pid, Entry(p >> PACK_SHIFT, p & PACK_MASK))
                for pid, p in zip(self._pids, self._packed))

    def iter_packed(self) -> Iterable[Tuple[ProcessId, int]]:
        """(pid, packed-entry) pairs in pid order — the no-allocation view
        the protocol's scan loops consume.  Do not mutate while iterating."""
        return zip(self._pids, self._packed)

    # -- protocol operations ----------------------------------------------

    def merge(self, other) -> None:
        """Pairwise lexicographic max, as in Deliver_message:
        ``forall j: tdv[j] = max(tdv[j], m.tdv[j])``."""
        if other.n != self.n:
            raise ValueError(
                f"cannot merge vectors of different sizes ({self.n} vs {other.n})"
            )
        if isinstance(other, DependencyVector):
            opids = other._pids
            if not opids or opids is self._pids:
                return
            self._merge_columns(opids, other._packed)
            return
        # Duck-typed path (reference vectors, multi-incarnation baseline).
        for pid, entry in other.iter_items():
            cur = self.get(pid)
            if cur is None or cur < entry:
                self.set(pid, entry)

    def _merge_columns(self, opids: List[ProcessId], opacked: List[int]) -> None:
        """Two-pointer sorted join; replaces the columns only on change."""
        spids, spacked = self._pids, self._packed
        res_pids: List[ProcessId] = []
        res_packed: List[int] = []
        changed = False
        i = j = 0
        ls, lo = len(spids), len(opids)
        while i < ls and j < lo:
            sp = spids[i]
            op = opids[j]
            if sp < op:
                res_pids.append(sp)
                res_packed.append(spacked[i])
                i += 1
            elif sp > op:
                res_pids.append(op)
                res_packed.append(opacked[j])
                changed = True
                j += 1
            else:
                sv = spacked[i]
                ov = opacked[j]
                if ov > sv:
                    sv = ov
                    changed = True
                res_pids.append(sp)
                res_packed.append(sv)
                i += 1
                j += 1
        if i < ls:
            res_pids += spids[i:]
            res_packed += spacked[i:]
        if j < lo:
            res_pids += opids[j:]
            res_packed += opacked[j:]
            changed = True
        if not changed:
            return
        self._pids = res_pids
        self._packed = res_packed
        self._shared = False
        self.version += 1

    def copy(self) -> "DependencyVector":
        """An independent snapshot (used when piggybacking on a message).

        O(1): the snapshot aliases the columns; whichever side mutates
        first pays for the real copy then.
        """
        dup = DependencyVector.__new__(DependencyVector)
        dup.n = self.n
        dup._pids = self._pids
        dup._packed = self._packed
        dup._shared = True
        dup.version = 0
        self._shared = True
        return dup

    # -- comparisons / rendering -------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DependencyVector):
            return (self.n == other.n and self._pids == other._pids
                    and self._packed == other._packed)
        if isinstance(other, ReferenceDependencyVector):
            return self.n == other.n and self.as_dict() == other.as_dict()
        return NotImplemented

    def __hash__(self):  # pragma: no cover - vectors are mutable
        raise TypeError("DependencyVector is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{e}_{pid}" for pid, e in self.items())
        return "{" + inner + "}"

    def as_dict(self) -> Dict[ProcessId, Entry]:
        """Plain-dict snapshot, convenient for assertions in tests."""
        return {pid: Entry(p >> PACK_SHIFT, p & PACK_MASK)
                for pid, p in zip(self._pids, self._packed)}

    # -- helpers -------------------------------------------------------------

    def _check_pid(self, pid: ProcessId) -> None:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")


class ReferenceDependencyVector:
    """The pre-columnar dict-of-Entry vector, kept as differential ground
    truth for ``tests/properties/test_columnar_equivalence.py``.  Same
    observable API (including COW :meth:`copy` and :attr:`version`)."""

    __slots__ = ("n", "_entries", "_shared", "version")

    def __init__(self, n: int, entries: Optional[Mapping[ProcessId, Entry]] = None):
        if n <= 0:
            raise ValueError(f"vector needs at least one process, got n={n}")
        self.n = n
        self._entries: Dict[ProcessId, Entry] = {}
        self._shared = False
        self.version = 0
        if entries:
            for pid, entry in entries.items():
                self.set(pid, entry)

    def _materialize(self) -> None:
        if self._shared:
            self._entries = dict(self._entries)
            self._shared = False

    def get(self, pid: ProcessId) -> OptEntry:
        self._check_pid(pid)
        return self._entries.get(pid)

    def set(self, pid: ProcessId, entry: OptEntry) -> None:
        self._check_pid(pid)
        if entry is None:
            if pid in self._entries:
                self._materialize()
                del self._entries[pid]
                self.version += 1
        elif self._entries.get(pid) != entry:
            self._materialize()
            self._entries[pid] = entry
            self.version += 1

    def nullify(self, pid: ProcessId) -> None:
        self._check_pid(pid)
        if pid in self._entries:
            self._materialize()
            del self._entries[pid]
            self.version += 1

    def nullify_entry(self, pid: ProcessId, entry: Entry) -> None:
        self.nullify(pid)

    def non_null_count(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def processes(self) -> Iterator[ProcessId]:
        return iter(sorted(self._entries))

    def items(self) -> Iterator[Tuple[ProcessId, Entry]]:
        return iter(sorted(self._entries.items()))

    def iter_items(self) -> Iterable[Tuple[ProcessId, Entry]]:
        return self._entries.items()

    def merge(self, other) -> None:
        if other.n != self.n:
            raise ValueError(
                f"cannot merge vectors of different sizes ({self.n} vs {other.n})"
            )
        entries = self._entries
        changed = None
        for pid, entry in other.iter_items():
            cur = entries.get(pid)
            if cur is None or cur < entry:
                if changed is None:
                    changed = []
                changed.append((pid, entry))
        if changed is None:
            return
        self._materialize()
        entries = self._entries
        for pid, entry in changed:
            entries[pid] = entry
        self.version += 1

    def copy(self) -> "ReferenceDependencyVector":
        dup = ReferenceDependencyVector(self.n)
        dup._entries = self._entries
        dup._shared = True
        self._shared = True
        return dup

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ReferenceDependencyVector):
            return self.n == other.n and self._entries == other._entries
        if isinstance(other, DependencyVector):
            return self.n == other.n and self.as_dict() == other.as_dict()
        return NotImplemented

    def __hash__(self):  # pragma: no cover - vectors are mutable
        raise TypeError("ReferenceDependencyVector is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{e}_{pid}" for pid, e in self.items())
        return "{" + inner + "}"

    def as_dict(self) -> Dict[ProcessId, Entry]:
        return dict(self._entries)

    def _check_pid(self, pid: ProcessId) -> None:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")
