"""The variable-size transitive dependency vector (``tdv`` in Figure 2).

The paper's presentation keeps a size-N array whose omittable entries are
set to NULL; an implementation "can omit NULL entries and convert any
non-NULL entry (t,x) for P_i to the (t,x)_i form".  We do exactly that:
:class:`DependencyVector` stores only the non-NULL entries in a dict keyed
by process id.  The *size* of the vector — the quantity the integer K
bounds (Theorem 4) — is therefore ``len(vector)``.

Piggybacking copies the sender's vector onto every outgoing message, which
made :meth:`copy` the hottest allocation site in the failure-free profile.
Copies are now copy-on-write: the snapshot shares the entry dict until
either side mutates, at which point the mutator re-materialises its own
dict.  Sharing matters because a buffered message's vector *is* mutated in
place (send-buffer nullification, Theorem 2), so an eager deep copy is the
semantic baseline that COW must — and does — preserve.  A monotonically
increasing :attr:`version` stamps every effective mutation so scan-heavy
callers (stability rescans) can skip work when nothing changed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.entry import Entry, OptEntry, lex_max
from repro.types import ProcessId


class DependencyVector:
    """Sparse dependency vector over ``n`` processes.

    Entries record, per process, the highest-index state interval (of the
    highest incarnation seen) that the owner transitively depends on and
    that is *not yet known stable* (commit dependency tracking, Theorem 2).
    """

    __slots__ = ("n", "_entries", "_shared", "version")

    def __init__(self, n: int, entries: Optional[Mapping[ProcessId, Entry]] = None):
        if n <= 0:
            raise ValueError(f"vector needs at least one process, got n={n}")
        self.n = n
        self._entries: Dict[ProcessId, Entry] = {}
        #: True while ``_entries`` may be aliased by a COW copy.
        self._shared = False
        #: Bumped on every effective mutation; lets callers cache scans.
        self.version = 0
        if entries:
            for pid, entry in entries.items():
                self.set(pid, entry)

    def _materialize(self) -> None:
        """Un-alias the entry dict before an in-place mutation."""
        if self._shared:
            self._entries = dict(self._entries)
            self._shared = False

    # -- basic accessors ---------------------------------------------------

    def get(self, pid: ProcessId) -> OptEntry:
        """The entry for ``pid``, or ``None`` for the pseudo-code's NULL."""
        self._check_pid(pid)
        return self._entries.get(pid)

    def set(self, pid: ProcessId, entry: OptEntry) -> None:
        """Overwrite the entry for ``pid`` (``None`` clears it)."""
        self._check_pid(pid)
        if entry is None:
            if pid in self._entries:
                self._materialize()
                del self._entries[pid]
                self.version += 1
        elif self._entries.get(pid) != entry:
            self._materialize()
            self._entries[pid] = entry
            self.version += 1

    def nullify(self, pid: ProcessId) -> None:
        """Set the entry for ``pid`` to NULL (Theorem 2 omission)."""
        self._check_pid(pid)
        if pid in self._entries:
            self._materialize()
            del self._entries[pid]
            self.version += 1

    def nullify_entry(self, pid: ProcessId, entry: Entry) -> None:
        """Drop one specific entry.  For this single-entry-per-process
        vector it is the same as :meth:`nullify`; the multi-incarnation
        vector of the fully-asynchronous baseline removes only the entry
        for ``entry.inc``."""
        self.nullify(pid)

    def non_null_count(self) -> int:
        """Number of non-NULL entries — the vector 'size' that K bounds."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def processes(self) -> Iterator[ProcessId]:
        """Process ids that currently have a non-NULL entry."""
        return iter(sorted(self._entries))

    def items(self) -> Iterator[Tuple[ProcessId, Entry]]:
        """(pid, entry) pairs for non-NULL entries, in pid order."""
        return iter(sorted(self._entries.items()))

    def iter_items(self) -> Iterable[Tuple[ProcessId, Entry]]:
        """(pid, entry) pairs in arbitrary order — the hot-path variant of
        :meth:`items` for callers that do not need the sort."""
        return self._entries.items()

    # -- protocol operations ----------------------------------------------

    def merge(self, other: "DependencyVector") -> None:
        """Pairwise lexicographic max, as in Deliver_message:
        ``forall j: tdv[j] = max(tdv[j], m.tdv[j])``."""
        if other.n != self.n:
            raise ValueError(
                f"cannot merge vectors of different sizes ({self.n} vs {other.n})"
            )
        other_entries = other._entries
        if not other_entries or other_entries is self._entries:
            return
        entries = self._entries
        # Pre-scan: only materialize/bump when the merge changes something.
        # Entry is an ordered (inc, sii) tuple, so ``<`` is exactly lex_max.
        changed = None
        for pid, entry in other_entries.items():
            cur = entries.get(pid)
            if cur is None or cur < entry:
                if changed is None:
                    changed = []
                changed.append((pid, entry))
        if changed is None:
            return
        self._materialize()
        entries = self._entries
        for pid, entry in changed:
            entries[pid] = entry
        self.version += 1

    def copy(self) -> "DependencyVector":
        """An independent snapshot (used when piggybacking on a message).

        O(1): the snapshot aliases the entry dict; whichever side mutates
        first pays for the real copy then.
        """
        dup = DependencyVector(self.n)
        dup._entries = self._entries
        dup._shared = True
        self._shared = True
        return dup

    # -- comparisons / rendering -------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencyVector):
            return NotImplemented
        return self.n == other.n and self._entries == other._entries

    def __hash__(self):  # pragma: no cover - vectors are mutable
        raise TypeError("DependencyVector is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{e}_{pid}" for pid, e in self.items())
        return "{" + inner + "}"

    def as_dict(self) -> Dict[ProcessId, Entry]:
        """Plain-dict snapshot, convenient for assertions in tests."""
        return dict(self._entries)

    # -- helpers -------------------------------------------------------------

    def _check_pid(self, pid: ProcessId) -> None:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")
