"""The two per-process bookkeeping tables of Figure 2.

``log``  — logging progress table: for each process and incarnation, the
           highest state-interval index known to be *stable* (reconstructible
           from stable storage).  Populated by logging-progress
           notifications, by failure announcements (Corollary 1) and by a
           process's own checkpoints (Corollary 2).

``iet``  — incarnation end table: for each process and incarnation, the
           index at which that incarnation *ended*; any dependency on a
           higher index of that (or an earlier) incarnation is an orphan.

Both tables are declared ``array[1..N] of set of entry`` and share the
paper's ``Insert(se, (t,x'))`` routine, which keeps a single entry per
incarnation holding the maximum index.  We model each row as a dict
``incarnation -> max index``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.core.entry import Entry
from repro.types import IncarnationId, IntervalIndex, ProcessId


class EntrySetTable:
    """``array[1..N] of set of entry`` with the paper's Insert semantics.

    :attr:`version` increases exactly when an :meth:`insert` (or snapshot
    merge) actually extends the table, so scan-heavy callers — send-buffer
    release checks, Theorem-2 nullification — can skip whole rescans when
    the table has not learned anything new since their last pass.
    """

    __slots__ = ("n", "_rows", "version")

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"table needs at least one process, got n={n}")
        self.n = n
        self._rows: List[Dict[IncarnationId, IntervalIndex]] = [{} for _ in range(n)]
        self.version = 0

    def insert(self, pid: ProcessId, entry: Entry) -> None:
        """``Insert(se, (t, x'))``: keep the per-incarnation maximum index."""
        row = self._row(pid)
        existing = row.get(entry.inc)
        if existing is None or entry.sii > existing:
            row[entry.inc] = entry.sii
            self.version += 1

    def entries(self, pid: ProcessId) -> Iterator[Entry]:
        """All entries recorded for ``pid``, in incarnation order."""
        row = self._row(pid)
        return iter(Entry(t, x) for t, x in sorted(row.items()))

    def lookup(self, pid: ProcessId, inc: IncarnationId):
        """The recorded index for ``(pid, inc)`` or ``None``."""
        return self._row(pid).get(inc)

    def row_size(self, pid: ProcessId) -> int:
        return len(self._row(pid))

    def snapshot(self) -> List[Dict[IncarnationId, IntervalIndex]]:
        """Deep copy of all rows (piggybacked by gossip notifications)."""
        return [dict(row) for row in self._rows]

    def merge_snapshot(self, snap: List[Dict[IncarnationId, IntervalIndex]]) -> None:
        """Insert every entry of a snapshot (Receive_log's outer loop).

        Works on the raw incarnation->index dicts directly — gossip makes
        this the most frequent table operation, and most merges bring no
        news at all."""
        if len(snap) != self.n:
            raise ValueError(
                f"snapshot covers {len(snap)} processes, table covers {self.n}"
            )
        changed = False
        rows = self._rows
        for pid, snap_row in enumerate(snap):
            if not snap_row:
                continue
            row = rows[pid]
            for inc, sii in snap_row.items():
                existing = row.get(inc)
                if existing is None or sii > existing:
                    row[inc] = sii
                    changed = True
        if changed:
            self.version += 1

    def _row(self, pid: ProcessId) -> Dict[IncarnationId, IntervalIndex]:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")
        return self._rows[pid]

    def __repr__(self) -> str:
        rows = []
        for pid in range(self.n):
            if self._rows[pid]:
                inner = ", ".join(str(Entry(t, x)) for t, x in sorted(self._rows[pid].items()))
                rows.append(f"P{pid}:{{{inner}}}")
        return f"{type(self).__name__}[{'; '.join(rows)}]"


class LoggingProgressTable(EntrySetTable):
    """The ``log`` table: per (process, incarnation) highest *stable* index."""

    def covers(self, pid: ProcessId, entry: Entry) -> bool:
        """True iff interval ``entry`` of ``pid`` is known stable.

        This is the pseudo-code's recurring test
        ``(t, x') in log[j]  and  x <= x'``.
        """
        x_prime = self.lookup(pid, entry.inc)
        return x_prime is not None and entry.sii <= x_prime


class IncarnationEndTable(EntrySetTable):
    """The ``iet`` table: per (process, incarnation) ending index.

    An entry ``(t, x')`` announces that all state intervals with index
    greater than ``x'`` belonging to incarnation ``t`` — or to any earlier
    incarnation — of that process have been rolled back.
    """

    def invalidates(self, pid: ProcessId, entry: Entry) -> bool:
        """True iff a dependency on ``entry`` of ``pid`` is an orphan.

        Check_orphan's test: ``exists t: (t, x') in iet[j]  and
        t >= dep.inc  and  x' < dep.sii``.
        """
        row = self._row(pid)
        for t, x_prime in row.items():
            if t >= entry.inc and x_prime < entry.sii:
                return True
        return False

    def highest_ended_incarnation(self, pid: ProcessId) -> int:
        """Highest incarnation of ``pid`` known to have ended (-1 if none)."""
        row = self._row(pid)
        return max(row) if row else -1

    def all_pairs(self) -> Iterator[Tuple[ProcessId, Entry]]:
        """(pid, end-entry) pairs across all processes (used by recovery)."""
        for pid in range(self.n):
            for entry in self.entries(pid):
                yield pid, entry
