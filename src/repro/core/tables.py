"""The two per-process bookkeeping tables of Figure 2.

``log``  — logging progress table: for each process and incarnation, the
           highest state-interval index known to be *stable* (reconstructible
           from stable storage).  Populated by logging-progress
           notifications, by failure announcements (Corollary 1) and by a
           process's own checkpoints (Corollary 2).

``iet``  — incarnation end table: for each process and incarnation, the
           index at which that incarnation *ended*; any dependency on a
           higher index of that (or an earlier) incarnation is an orphan.

Both tables are declared ``array[1..N] of set of entry`` and share the
paper's ``Insert(se, (t,x'))`` routine, which keeps a single entry per
incarnation holding the maximum index.

Storage layout (columnar)
-------------------------

Rows are stored as one flat integer column of ``n * stride`` slots, slot
``pid * stride + inc`` holding the maximum index recorded for that
``(pid, inc)`` pair or ``-1`` when absent.  ``stride`` (max incarnations
per row) grows geometrically on demand; incarnation counts are tiny in
practice (one per crash of a process), so the column stays dense and a
whole-table gossip merge is a single elementwise-max pass — ``np.maximum``
when numpy is available and the table is large, a flat list loop
otherwise.  Under elementwise max the values only ever grow, so the column
sum strictly increases iff the merge changed anything; that gives change
detection (and hence :attr:`version` maintenance) without a compare pass.

The previous dict-of-dicts implementation is retained below as
``Reference*`` classes; the property suite in
``tests/properties/test_columnar_equivalence.py`` drives both through
random op sequences and asserts equal observable state.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Union

from repro.core import columnar
from repro.core.columnar import PACK_MASK, PACK_SHIFT
from repro.core.entry import Entry
from repro.types import IncarnationId, IntervalIndex, ProcessId

_np = columnar.NUMPY


class TableSnapshot:
    """An immutable columnar copy of a table, piggybacked by gossip.

    Carries the raw column (same ``pid * stride + inc`` layout) so the
    receiver's :meth:`EntrySetTable.merge_snapshot` is one elementwise-max
    pass instead of a per-entry dict walk.  :meth:`rows` converts to the
    legacy list-of-dicts form (used by the wire codec and tests);
    :meth:`restrict` keeps a single row (own-progress-only gossip).
    """

    __slots__ = ("n", "stride", "cols")

    def __init__(self, n: int, stride: int, cols) -> None:
        self.n = n
        self.stride = stride
        self.cols = cols

    def rows(self) -> List[Dict[IncarnationId, IntervalIndex]]:
        """Legacy ``incarnation -> max index`` dicts, one per process."""
        out: List[Dict[IncarnationId, IntervalIndex]] = []
        stride, cols = self.stride, self.cols
        for pid in range(self.n):
            base = pid * stride
            row: Dict[IncarnationId, IntervalIndex] = {}
            for inc in range(stride):
                value = cols[base + inc]
                if value >= 0:
                    row[inc] = int(value)
            out.append(row)
        return out

    def restrict(self, pid: ProcessId) -> "TableSnapshot":
        """A snapshot carrying only ``pid``'s row (others empty)."""
        stride = self.stride
        base = pid * stride
        if _np is not None and isinstance(self.cols, _np.ndarray):
            cols = _np.full(self.n * stride, -1, dtype=_np.int64)
            cols[base:base + stride] = self.cols[base:base + stride]
        else:
            cols = [-1] * (self.n * stride)
            cols[base:base + stride] = self.cols[base:base + stride]
        return TableSnapshot(self.n, stride, cols)

    # Duck compatibility with the legacy list-of-dicts snapshot form, so
    # callers (and tests) can keep indexing/iterating rows directly.

    def __getitem__(self, pid: int) -> Dict[IncarnationId, IntervalIndex]:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")
        base = pid * self.stride
        return {inc: int(self.cols[base + inc])
                for inc in range(self.stride)
                if self.cols[base + inc] >= 0}

    def __iter__(self):
        return iter(self.rows())

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TableSnapshot):
            return self.rows() == other.rows()
        if isinstance(other, list):
            return self.rows() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        populated = sum(1 for v in self.cols if v >= 0)
        return f"TableSnapshot(n={self.n}, stride={self.stride}, entries={populated})"


class EntrySetTable:
    """``array[1..N] of set of entry`` with the paper's Insert semantics.

    :attr:`version` increases exactly when an :meth:`insert` (or snapshot
    merge) actually extends the table, so scan-heavy callers — send-buffer
    release checks, Theorem-2 nullification — can skip whole rescans when
    the table has not learned anything new since their last pass.  Since
    entries are never removed, ``version == 0`` iff the table is empty.
    """

    __slots__ = ("n", "version", "_stride", "_cols", "_use_np")

    INITIAL_STRIDE = 4

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"table needs at least one process, got n={n}")
        self.n = n
        self.version = 0
        self._stride = self.INITIAL_STRIDE
        self._use_np = columnar.use_numpy_for(n)
        self._cols = self._new_cols(n * self._stride)

    # -- storage helpers -----------------------------------------------------

    def _new_cols(self, size: int):
        if self._use_np:
            return _np.full(size, -1, dtype=_np.int64)
        return [-1] * size

    def _grow(self, min_stride: int) -> None:
        new_stride = self._stride
        while new_stride < min_stride:
            new_stride *= 2
        new_cols = self._new_cols(self.n * new_stride)
        old_stride, old_cols = self._stride, self._cols
        if self._use_np:
            new_cols.reshape(self.n, new_stride)[:, :old_stride] = (
                old_cols.reshape(self.n, old_stride))
        else:
            for pid in range(self.n):
                src = pid * old_stride
                dst = pid * new_stride
                new_cols[dst:dst + old_stride] = old_cols[src:src + old_stride]
        self._stride = new_stride
        self._cols = new_cols

    def _check_pid(self, pid: ProcessId) -> None:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")

    # -- the paper's operations ----------------------------------------------

    def insert(self, pid: ProcessId, entry: Entry) -> None:
        """``Insert(se, (t, x'))``: keep the per-incarnation maximum index."""
        self._check_pid(pid)
        inc = entry.inc
        if inc >= self._stride:
            self._grow(inc + 1)
        pos = pid * self._stride + inc
        if entry.sii > self._cols[pos]:
            self._cols[pos] = entry.sii
            self.version += 1

    def entries(self, pid: ProcessId) -> Iterator[Entry]:
        """All entries recorded for ``pid``, in incarnation order."""
        self._check_pid(pid)
        base = pid * self._stride
        cols = self._cols
        return iter([Entry(inc, int(cols[base + inc]))
                     for inc in range(self._stride)
                     if cols[base + inc] >= 0])

    def lookup(self, pid: ProcessId, inc: IncarnationId):
        """The recorded index for ``(pid, inc)`` or ``None``."""
        self._check_pid(pid)
        if not 0 <= inc < self._stride:
            return None
        value = self._cols[pid * self._stride + inc]
        return int(value) if value >= 0 else None

    def row_size(self, pid: ProcessId) -> int:
        self._check_pid(pid)
        base = pid * self._stride
        return sum(1 for inc in range(self._stride) if self._cols[base + inc] >= 0)

    def snapshot(self) -> List[Dict[IncarnationId, IntervalIndex]]:
        """Deep copy of all rows as legacy ``inc -> max index`` dicts."""
        return self.snapshot_columns().rows()

    def snapshot_columns(self) -> TableSnapshot:
        """Columnar copy of the table (what gossip now piggybacks)."""
        if self._use_np:
            cols = self._cols.copy()
        else:
            cols = self._cols[:]
        return TableSnapshot(self.n, self._stride, cols)

    def merge_snapshot(
        self,
        snap: Union[TableSnapshot, List[Dict[IncarnationId, IntervalIndex]]],
    ) -> None:
        """Insert every entry of a snapshot (Receive_log's outer loop).

        Accepts a :class:`TableSnapshot` (the fast columnar path — one
        elementwise-max pass) or the legacy list-of-dicts form (wire codec,
        archived counterexamples).  Gossip makes this the most frequent
        table operation, and most merges bring no news at all.
        """
        if isinstance(snap, TableSnapshot):
            if snap.n != self.n:
                raise ValueError(
                    f"snapshot covers {snap.n} processes, table covers {self.n}"
                )
            self._merge_columns(snap)
            return
        if len(snap) != self.n:
            raise ValueError(
                f"snapshot covers {len(snap)} processes, table covers {self.n}"
            )
        changed = False
        for pid, snap_row in enumerate(snap):
            if not snap_row:
                continue
            max_inc = max(snap_row)
            if max_inc >= self._stride:
                self._grow(max_inc + 1)
            base = pid * self._stride
            cols = self._cols
            for inc, sii in snap_row.items():
                pos = base + inc
                if sii > cols[pos]:
                    cols[pos] = sii
                    changed = True
        if changed:
            self.version += 1

    def _merge_columns(self, snap: TableSnapshot) -> None:
        if snap.stride > self._stride:
            self._grow(snap.stride)
        mine = self._cols
        theirs = snap.cols
        if self._use_np and isinstance(theirs, _np.ndarray):
            if snap.stride == self._stride:
                before = int(mine.sum())
                _np.maximum(mine, theirs, out=mine)
                if int(mine.sum()) != before:
                    self.version += 1
            else:
                view = mine.reshape(self.n, self._stride)[:, :snap.stride]
                before = int(view.sum())
                _np.maximum(view, theirs.reshape(self.n, snap.stride), out=view)
                if int(view.sum()) != before:
                    self.version += 1
            return
        changed = False
        if snap.stride == self._stride:
            for i in range(len(mine)):
                value = theirs[i]
                if value > mine[i]:
                    mine[i] = value
                    changed = True
        else:
            for pid in range(self.n):
                src = pid * snap.stride
                dst = pid * self._stride
                for inc in range(snap.stride):
                    value = theirs[src + inc]
                    if value > mine[dst + inc]:
                        mine[dst + inc] = value
                        changed = True
        if changed:
            self.version += 1

    def __repr__(self) -> str:
        rows = []
        for pid in range(self.n):
            entries = list(self.entries(pid))
            if entries:
                inner = ", ".join(str(e) for e in entries)
                rows.append(f"P{pid}:{{{inner}}}")
        return f"{type(self).__name__}[{'; '.join(rows)}]"


class LoggingProgressTable(EntrySetTable):
    """The ``log`` table: per (process, incarnation) highest *stable* index."""

    __slots__ = ()

    def covers(self, pid: ProcessId, entry: Entry) -> bool:
        """True iff interval ``entry`` of ``pid`` is known stable.

        This is the pseudo-code's recurring test
        ``(t, x') in log[j]  and  x <= x'``.
        """
        self._check_pid(pid)
        inc = entry.inc
        if not 0 <= inc < self._stride:
            return False
        value = self._cols[pid * self._stride + inc]
        return value >= entry.sii

    def covers_packed(self, pid: ProcessId, packed: int) -> bool:
        """:meth:`covers` on a packed ``(inc << SHIFT) | sii`` entry.

        Hot path — ``pid`` comes from a dependency vector and is already
        validated, so no range check here.
        """
        inc = packed >> PACK_SHIFT
        if inc >= self._stride:
            return False
        value = self._cols[pid * self._stride + inc]
        return value >= (packed & PACK_MASK)


class IncarnationEndTable(EntrySetTable):
    """The ``iet`` table: per (process, incarnation) ending index.

    An entry ``(t, x')`` announces that all state intervals with index
    greater than ``x'`` belonging to incarnation ``t`` — or to any earlier
    incarnation — of that process have been rolled back.
    """

    __slots__ = ()

    def invalidates(self, pid: ProcessId, entry: Entry) -> bool:
        """True iff a dependency on ``entry`` of ``pid`` is an orphan.

        Check_orphan's test: ``exists t: (t, x') in iet[j]  and
        t >= dep.inc  and  x' < dep.sii``.
        """
        self._check_pid(pid)
        if self.version == 0:
            return False
        base = pid * self._stride
        cols = self._cols
        sii = entry.sii
        for t in range(max(entry.inc, 0), self._stride):
            value = cols[base + t]
            if 0 <= value < sii:
                return True
        return False

    def invalidates_packed(self, pid: ProcessId, packed: int) -> bool:
        """:meth:`invalidates` on a packed entry (no pid range check)."""
        if self.version == 0:
            return False
        sii = packed & PACK_MASK
        base = pid * self._stride
        cols = self._cols
        for t in range(packed >> PACK_SHIFT, self._stride):
            value = cols[base + t]
            if 0 <= value < sii:
                return True
        return False

    def highest_ended_incarnation(self, pid: ProcessId) -> int:
        """Highest incarnation of ``pid`` known to have ended (-1 if none)."""
        self._check_pid(pid)
        base = pid * self._stride
        for t in range(self._stride - 1, -1, -1):
            if self._cols[base + t] >= 0:
                return t
        return -1

    def all_pairs(self) -> Iterator[Tuple[ProcessId, Entry]]:
        """(pid, end-entry) pairs across all processes (used by recovery)."""
        for pid in range(self.n):
            for entry in self.entries(pid):
                yield pid, entry


# -- reference (pre-columnar) implementations ---------------------------------
#
# The dict-of-dicts model the columnar tables replaced, kept as the ground
# truth for the differential property suite.  Not used by the protocol.


class ReferenceEntrySetTable:
    """Dict-of-dicts ``array[1..N] of set of entry`` (pre-columnar model)."""

    __slots__ = ("n", "_rows", "version")

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"table needs at least one process, got n={n}")
        self.n = n
        self._rows: List[Dict[IncarnationId, IntervalIndex]] = [{} for _ in range(n)]
        self.version = 0

    def insert(self, pid: ProcessId, entry: Entry) -> None:
        row = self._row(pid)
        existing = row.get(entry.inc)
        if existing is None or entry.sii > existing:
            row[entry.inc] = entry.sii
            self.version += 1

    def entries(self, pid: ProcessId) -> Iterator[Entry]:
        row = self._row(pid)
        return iter(Entry(t, x) for t, x in sorted(row.items()))

    def lookup(self, pid: ProcessId, inc: IncarnationId):
        return self._row(pid).get(inc)

    def row_size(self, pid: ProcessId) -> int:
        return len(self._row(pid))

    def snapshot(self) -> List[Dict[IncarnationId, IntervalIndex]]:
        return [dict(row) for row in self._rows]

    def merge_snapshot(self, snap) -> None:
        if isinstance(snap, TableSnapshot):
            snap = snap.rows()
        if len(snap) != self.n:
            raise ValueError(
                f"snapshot covers {len(snap)} processes, table covers {self.n}"
            )
        changed = False
        rows = self._rows
        for pid, snap_row in enumerate(snap):
            if not snap_row:
                continue
            row = rows[pid]
            for inc, sii in snap_row.items():
                existing = row.get(inc)
                if existing is None or sii > existing:
                    row[inc] = sii
                    changed = True
        if changed:
            self.version += 1

    def _row(self, pid: ProcessId) -> Dict[IncarnationId, IntervalIndex]:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")
        return self._rows[pid]


class ReferenceLoggingProgressTable(ReferenceEntrySetTable):
    __slots__ = ()

    def covers(self, pid: ProcessId, entry: Entry) -> bool:
        x_prime = self.lookup(pid, entry.inc)
        return x_prime is not None and entry.sii <= x_prime


class ReferenceIncarnationEndTable(ReferenceEntrySetTable):
    __slots__ = ()

    def invalidates(self, pid: ProcessId, entry: Entry) -> bool:
        row = self._row(pid)
        for t, x_prime in row.items():
            if t >= entry.inc and x_prime < entry.sii:
                return True
        return False

    def highest_ended_incarnation(self, pid: ProcessId) -> int:
        row = self._row(pid)
        return max(row) if row else -1

    def all_pairs(self) -> Iterator[Tuple[ProcessId, Entry]]:
        for pid in range(self.n):
            for entry in self.entries(pid):
                yield pid, entry
