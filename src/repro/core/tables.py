"""The two per-process bookkeeping tables of Figure 2.

``log``  — logging progress table: for each process and incarnation, the
           highest state-interval index known to be *stable* (reconstructible
           from stable storage).  Populated by logging-progress
           notifications, by failure announcements (Corollary 1) and by a
           process's own checkpoints (Corollary 2).

``iet``  — incarnation end table: for each process and incarnation, the
           index at which that incarnation *ended*; any dependency on a
           higher index of that (or an earlier) incarnation is an orphan.

Both tables are declared ``array[1..N] of set of entry`` and share the
paper's ``Insert(se, (t,x'))`` routine, which keeps a single entry per
incarnation holding the maximum index.

Storage layout (columnar)
-------------------------

Rows are stored as one flat integer column of ``n * stride`` slots, slot
``pid * stride + inc`` holding the maximum index recorded for that
``(pid, inc)`` pair or ``-1`` when absent.  ``stride`` (max incarnations
per row) grows geometrically on demand; incarnation counts are tiny in
practice (one per crash of a process), so the column stays dense and a
whole-table gossip merge is a single elementwise-max pass — ``np.maximum``
when numpy is available and the table is large, a flat list loop
otherwise.  Change detection (and hence :attr:`version` maintenance) is an
explicit elementwise comparison: values only ever grow under max-merge, so
``theirs > mine`` marks exactly the changed slots.  (An earlier column-sum
trick wrapped silently at 2**63 and could miss changes in a batched merge.)

Very large tables (``n >= columnar.SPARSE_MIN_N``) switch to a sparse
dict-of-rows backend: dense columns cost O(n * stride) *per process table*
— quadratic per simulation — while the rows a process actually learns stay
bounded by gossip reach.  Sparse tables gossip :class:`SparseSnapshot`
(explicit ``(pid, inc, sii)`` triples), which doubles as the delta
encoding: with :meth:`EntrySetTable.enable_changelog` a notification can
carry only the entries changed since the peer's last acknowledged
changelog position (:meth:`EntrySetTable.delta_since`).

The previous dict-of-dicts implementation is retained below as
``Reference*`` classes; the property suite in
``tests/properties/test_columnar_equivalence.py`` drives both through
random op sequences and asserts equal observable state.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core import columnar
from repro.core.columnar import PACK_MASK, PACK_SHIFT
from repro.core.entry import Entry
from repro.types import IncarnationId, IntervalIndex, ProcessId

_np = columnar.NUMPY


class TableSnapshot:
    """An immutable columnar copy of a table, piggybacked by gossip.

    Carries the raw column (same ``pid * stride + inc`` layout) so the
    receiver's :meth:`EntrySetTable.merge_snapshot` is one elementwise-max
    pass instead of a per-entry dict walk.  :meth:`rows` converts to the
    legacy list-of-dicts form (used by the wire codec and tests);
    :meth:`restrict` keeps a single row (own-progress-only gossip).
    """

    __slots__ = ("n", "stride", "cols")

    def __init__(self, n: int, stride: int, cols) -> None:
        self.n = n
        self.stride = stride
        self.cols = cols

    def rows(self) -> List[Dict[IncarnationId, IntervalIndex]]:
        """Legacy ``incarnation -> max index`` dicts, one per process."""
        out: List[Dict[IncarnationId, IntervalIndex]] = []
        stride, cols = self.stride, self.cols
        for pid in range(self.n):
            base = pid * stride
            row: Dict[IncarnationId, IntervalIndex] = {}
            for inc in range(stride):
                value = cols[base + inc]
                if value >= 0:
                    row[inc] = int(value)
            out.append(row)
        return out

    def restrict(self, pid: ProcessId) -> "TableSnapshot":
        """A snapshot carrying only ``pid``'s row (others empty)."""
        stride = self.stride
        base = pid * stride
        if _np is not None and isinstance(self.cols, _np.ndarray):
            cols = _np.full(self.n * stride, -1, dtype=_np.int64)
            cols[base:base + stride] = self.cols[base:base + stride]
        else:
            cols = [-1] * (self.n * stride)
            cols[base:base + stride] = self.cols[base:base + stride]
        return TableSnapshot(self.n, stride, cols)

    # Duck compatibility with the legacy list-of-dicts snapshot form, so
    # callers (and tests) can keep indexing/iterating rows directly.

    def __getitem__(self, pid: int) -> Dict[IncarnationId, IntervalIndex]:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")
        base = pid * self.stride
        return {inc: int(self.cols[base + inc])
                for inc in range(self.stride)
                if self.cols[base + inc] >= 0}

    def __iter__(self):
        return iter(self.rows())

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TableSnapshot):
            return self.rows() == other.rows()
        if isinstance(other, list):
            return self.rows() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        populated = sum(1 for v in self.cols if v >= 0)
        return f"TableSnapshot(n={self.n}, stride={self.stride}, entries={populated})"


class SparseSnapshot:
    """An immutable sparse table snapshot: explicit ``(pid, inc, sii)`` triples.

    Two producers:

    - sparse-backend tables (``n >= columnar.SPARSE_MIN_N``), whose dense
      column form would cost O(n * stride) per notification;
    - delta gossip (:meth:`EntrySetTable.delta_since`), which carries only
      the entries changed since the peer's last acknowledged changelog
      position instead of the whole table.

    Merging is order-insensitive (entries are global facts combined by
    max), so a receiver treats full and delta snapshots identically.
    Duck-compatible with :class:`TableSnapshot` for the wire codec and
    tests (``rows``/``restrict``/indexing/equality).
    """

    __slots__ = ("n", "entries", "full")

    def __init__(self, n: int, entries, full: bool = True) -> None:
        self.n = n
        self.entries: Tuple[Tuple[int, int, int], ...] = tuple(entries)
        #: False when this snapshot carries only a changelog suffix.
        self.full = full

    def rows(self) -> List[Dict[IncarnationId, IntervalIndex]]:
        out: List[Dict[IncarnationId, IntervalIndex]] = [{} for _ in range(self.n)]
        for pid, inc, sii in self.entries:
            out[pid][inc] = sii
        return out

    def restrict(self, pid: ProcessId) -> "SparseSnapshot":
        return SparseSnapshot(
            self.n, [e for e in self.entries if e[0] == pid], full=self.full)

    def __getitem__(self, pid: int) -> Dict[IncarnationId, IntervalIndex]:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")
        return {inc: sii for p, inc, sii in self.entries if p == pid}

    def __iter__(self):
        return iter(self.rows())

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (SparseSnapshot, TableSnapshot)):
            return self.rows() == other.rows()
        if isinstance(other, list):
            return self.rows() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "full" if self.full else "delta"
        return f"SparseSnapshot(n={self.n}, {kind}, entries={len(self.entries)})"


def _snapshot_entries(snap: TableSnapshot):
    """Populated ``(pid, inc, sii)`` triples of a dense snapshot."""
    cols, stride = snap.cols, snap.stride
    if _np is not None and isinstance(cols, _np.ndarray):
        for pos in _np.nonzero(cols >= 0)[0].tolist():
            yield pos // stride, pos % stride, int(cols[pos])
        return
    for pos, value in enumerate(cols):
        if value >= 0:
            yield pos // stride, pos % stride, value


class EntrySetTable:
    """``array[1..N] of set of entry`` with the paper's Insert semantics.

    :attr:`version` increases exactly when an :meth:`insert` (or snapshot
    merge) actually extends the table, so scan-heavy callers — send-buffer
    release checks, Theorem-2 nullification — can skip whole rescans when
    the table has not learned anything new since their last pass.  Since
    entries are never removed, ``version == 0`` iff the table is empty.
    """

    __slots__ = ("n", "version", "_stride", "_cols", "_rows", "_use_np",
                 "_track", "_changes", "changelog_epoch")

    INITIAL_STRIDE = 4
    #: Changelog compaction threshold: above this many recorded changes the
    #: log is cleared and the epoch bumped (peers resync with one full
    #: snapshot, then resume deltas).
    CHANGELOG_LIMIT = 4096

    def __init__(self, n: int, sparse: Optional[bool] = None):
        if n <= 0:
            raise ValueError(f"table needs at least one process, got n={n}")
        self.n = n
        self.version = 0
        #: Delta-gossip changelog (see :meth:`enable_changelog`).
        self._track = False
        self._changes: List[Tuple[int, int]] = []
        self.changelog_epoch = 0
        if sparse is None:
            sparse = columnar.use_sparse_for(n)
        if sparse:
            self._rows: Optional[Dict[int, Dict[int, int]]] = {}
            self._cols = None
            self._use_np = False
            self._stride = 1  # max incarnation count seen (informational)
        else:
            self._rows = None
            self._stride = self.INITIAL_STRIDE
            self._use_np = columnar.use_numpy_for(n)
            self._cols = self._new_cols(n * self._stride)

    # -- changelog (delta gossip) --------------------------------------------

    def enable_changelog(self) -> None:
        """Start recording changed ``(pid, inc)`` positions so
        :meth:`delta_since` can encode notifications incrementally."""
        self._track = True

    @property
    def changelog_position(self) -> Tuple[int, int]:
        """Opaque cursor ``(epoch, offset)`` for :meth:`delta_since`."""
        return (self.changelog_epoch, len(self._changes))

    def _note_change(self, pid: int, inc: int) -> None:
        self._changes.append((pid, inc))
        if len(self._changes) > self.CHANGELOG_LIMIT:
            self._changes.clear()
            self.changelog_epoch += 1

    def _note_changes(self, pairs) -> None:
        self._changes.extend(pairs)
        if len(self._changes) > self.CHANGELOG_LIMIT:
            self._changes.clear()
            self.changelog_epoch += 1

    def delta_since(self, position: Tuple[int, int]) -> Optional[SparseSnapshot]:
        """Entries changed since ``position``, or ``None`` when the cursor
        is stale (different epoch / tracking off) and a full snapshot is
        needed.  Values are read from the *current* table, so a position
        changed twice is carried once, at its latest value."""
        epoch, offset = position
        if not self._track or epoch != self.changelog_epoch:
            return None
        if offset > len(self._changes):
            return None
        changed = sorted(set(self._changes[offset:]))
        entries = []
        for pid, inc in changed:
            sii = self.lookup(pid, inc)
            if sii is not None:
                entries.append((pid, inc, sii))
        return SparseSnapshot(self.n, entries, full=False)

    # -- storage helpers -----------------------------------------------------

    def _new_cols(self, size: int):
        if self._use_np:
            return _np.full(size, -1, dtype=_np.int64)
        return [-1] * size

    def _grow(self, min_stride: int) -> None:
        new_stride = self._stride
        while new_stride < min_stride:
            new_stride *= 2
        new_cols = self._new_cols(self.n * new_stride)
        old_stride, old_cols = self._stride, self._cols
        if self._use_np:
            new_cols.reshape(self.n, new_stride)[:, :old_stride] = (
                old_cols.reshape(self.n, old_stride))
        else:
            for pid in range(self.n):
                src = pid * old_stride
                dst = pid * new_stride
                new_cols[dst:dst + old_stride] = old_cols[src:src + old_stride]
        self._stride = new_stride
        self._cols = new_cols

    def _check_pid(self, pid: ProcessId) -> None:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")

    # -- the paper's operations ----------------------------------------------

    def insert(self, pid: ProcessId, entry: Entry) -> None:
        """``Insert(se, (t, x'))``: keep the per-incarnation maximum index."""
        self._check_pid(pid)
        inc = entry.inc
        if self._rows is not None:
            row = self._rows.get(pid)
            if row is None:
                row = self._rows[pid] = {}
            if entry.sii > row.get(inc, -1):
                row[inc] = entry.sii
                if inc >= self._stride:
                    self._stride = inc + 1
                self.version += 1
                if self._track:
                    self._note_change(pid, inc)
            return
        if inc >= self._stride:
            self._grow(inc + 1)
        pos = pid * self._stride + inc
        if entry.sii > self._cols[pos]:
            self._cols[pos] = entry.sii
            self.version += 1
            if self._track:
                self._note_change(pid, inc)

    def entries(self, pid: ProcessId) -> Iterator[Entry]:
        """All entries recorded for ``pid``, in incarnation order."""
        self._check_pid(pid)
        if self._rows is not None:
            row = self._rows.get(pid)
            if not row:
                return iter(())
            return iter([Entry(inc, sii) for inc, sii in sorted(row.items())])
        base = pid * self._stride
        cols = self._cols
        return iter([Entry(inc, int(cols[base + inc]))
                     for inc in range(self._stride)
                     if cols[base + inc] >= 0])

    def lookup(self, pid: ProcessId, inc: IncarnationId):
        """The recorded index for ``(pid, inc)`` or ``None``."""
        self._check_pid(pid)
        if self._rows is not None:
            row = self._rows.get(pid)
            return row.get(inc) if row else None
        if not 0 <= inc < self._stride:
            return None
        value = self._cols[pid * self._stride + inc]
        return int(value) if value >= 0 else None

    def row_size(self, pid: ProcessId) -> int:
        self._check_pid(pid)
        if self._rows is not None:
            row = self._rows.get(pid)
            return len(row) if row else 0
        base = pid * self._stride
        return sum(1 for inc in range(self._stride) if self._cols[base + inc] >= 0)

    def snapshot(self) -> List[Dict[IncarnationId, IntervalIndex]]:
        """Deep copy of all rows as legacy ``inc -> max index`` dicts."""
        return self.snapshot_columns().rows()

    def snapshot_columns(self) -> Union[TableSnapshot, SparseSnapshot]:
        """Columnar (or sparse) copy of the table — what gossip piggybacks."""
        if self._rows is not None:
            entries = []
            for pid in sorted(self._rows):
                row = self._rows[pid]
                for inc in sorted(row):
                    entries.append((pid, inc, row[inc]))
            return SparseSnapshot(self.n, entries)
        if self._use_np:
            cols = self._cols.copy()
        else:
            cols = self._cols[:]
        return TableSnapshot(self.n, self._stride, cols)

    def merge_snapshot(
        self,
        snap: Union[TableSnapshot, List[Dict[IncarnationId, IntervalIndex]]],
    ) -> None:
        """Insert every entry of a snapshot (Receive_log's outer loop).

        Accepts a :class:`TableSnapshot` (the fast columnar path — one
        elementwise-max pass) or the legacy list-of-dicts form (wire codec,
        archived counterexamples).  Gossip makes this the most frequent
        table operation, and most merges bring no news at all.
        """
        if isinstance(snap, TableSnapshot):
            if snap.n != self.n:
                raise ValueError(
                    f"snapshot covers {snap.n} processes, table covers {self.n}"
                )
            if self._rows is not None:
                self._merge_entries(_snapshot_entries(snap))
            else:
                self._merge_columns(snap)
            return
        if isinstance(snap, SparseSnapshot):
            if snap.n != self.n:
                raise ValueError(
                    f"snapshot covers {snap.n} processes, table covers {self.n}"
                )
            self._merge_entries(snap.entries)
            return
        if len(snap) != self.n:
            raise ValueError(
                f"snapshot covers {len(snap)} processes, table covers {self.n}"
            )
        self._merge_entries(
            (pid, inc, sii)
            for pid, snap_row in enumerate(snap)
            for inc, sii in snap_row.items())

    def merge_snapshots(self, snaps) -> None:
        """Merge a batch of snapshots (one gossip tick's worth) in one pass.

        Max-merge is commutative and associative, so the final table state
        is independent of merge order.  On the dense numpy backend, dense
        snapshots of equal stride are combined first with one stacked
        ``np.maximum.reduce`` and merged as a single snapshot — one
        elementwise pass plus one change-detection compare for the whole
        batch instead of N of each.
        """
        snaps = list(snaps)
        if len(snaps) <= 1:
            for snap in snaps:
                self.merge_snapshot(snap)
            return
        if self._rows is None and self._use_np:
            groups: Dict[int, List] = {}
            rest = []
            for snap in snaps:
                if (isinstance(snap, TableSnapshot)
                        and isinstance(snap.cols, _np.ndarray)):
                    groups.setdefault(snap.stride, []).append(snap.cols)
                else:
                    rest.append(snap)
            for stride in sorted(groups):
                group = groups[stride]
                cols = group[0] if len(group) == 1 else _np.maximum.reduce(group)
                self.merge_snapshot(TableSnapshot(self.n, stride, cols))
            for snap in rest:
                self.merge_snapshot(snap)
            return
        for snap in snaps:
            self.merge_snapshot(snap)

    def _merge_entries(self, entries) -> None:
        """Insert ``(pid, inc, sii)`` triples; shared by the sparse-snapshot,
        sparse-backend, and legacy list-of-dicts merge paths."""
        changed = False
        track = self._track
        if self._rows is not None:
            rows = self._rows
            for pid, inc, sii in entries:
                row = rows.get(pid)
                if row is None:
                    row = rows[pid] = {}
                if sii > row.get(inc, -1):
                    row[inc] = sii
                    if inc >= self._stride:
                        self._stride = inc + 1
                    changed = True
                    if track:
                        self._note_change(pid, inc)
        else:
            for pid, inc, sii in entries:
                if inc >= self._stride:
                    self._grow(inc + 1)
                pos = pid * self._stride + inc
                if sii > self._cols[pos]:
                    self._cols[pos] = sii
                    changed = True
                    if track:
                        self._note_change(pid, inc)
        if changed:
            self.version += 1

    def _merge_columns(self, snap: TableSnapshot) -> None:
        if snap.stride > self._stride:
            self._grow(snap.stride)
        mine = self._cols
        theirs = snap.cols
        if self._use_np and isinstance(theirs, _np.ndarray):
            if snap.stride == self._stride:
                view = mine.reshape(self.n, self._stride)
                theirs2 = theirs.reshape(self.n, snap.stride)
            else:
                view = mine.reshape(self.n, self._stride)[:, :snap.stride]
                theirs2 = theirs.reshape(self.n, snap.stride)
            # Explicit elementwise comparison for change detection.  The
            # previous column-sum check wrapped silently at 2**63 (entries
            # are packed ints with the incarnation in the high bits, so a
            # batched merge can overflow the int64 sum and miss offsetting
            # changes); a boolean compare cannot, and it also yields the
            # changed positions the delta changelog needs.
            grew = theirs2 > view
            if grew.any():
                _np.maximum(view, theirs2, out=view)
                self.version += 1
                if self._track:
                    rows_idx, cols_idx = _np.nonzero(grew)
                    self._note_changes(
                        zip(rows_idx.tolist(), cols_idx.tolist()))
            return
        changed = False
        track = self._track
        if snap.stride == self._stride:
            for i in range(len(mine)):
                value = theirs[i]
                if value > mine[i]:
                    mine[i] = value
                    changed = True
                    if track:
                        self._note_change(i // self._stride, i % self._stride)
        else:
            for pid in range(self.n):
                src = pid * snap.stride
                dst = pid * self._stride
                for inc in range(snap.stride):
                    value = theirs[src + inc]
                    if value > mine[dst + inc]:
                        mine[dst + inc] = value
                        changed = True
                        if track:
                            self._note_change(pid, inc)
        if changed:
            self.version += 1

    def __repr__(self) -> str:
        rows = []
        for pid in range(self.n):
            entries = list(self.entries(pid))
            if entries:
                inner = ", ".join(str(e) for e in entries)
                rows.append(f"P{pid}:{{{inner}}}")
        return f"{type(self).__name__}[{'; '.join(rows)}]"


class LoggingProgressTable(EntrySetTable):
    """The ``log`` table: per (process, incarnation) highest *stable* index."""

    __slots__ = ()

    def covers(self, pid: ProcessId, entry: Entry) -> bool:
        """True iff interval ``entry`` of ``pid`` is known stable.

        This is the pseudo-code's recurring test
        ``(t, x') in log[j]  and  x <= x'``.
        """
        self._check_pid(pid)
        inc = entry.inc
        if self._rows is not None:
            row = self._rows.get(pid)
            return row is not None and row.get(inc, -1) >= entry.sii
        if not 0 <= inc < self._stride:
            return False
        value = self._cols[pid * self._stride + inc]
        return value >= entry.sii

    def covers_packed(self, pid: ProcessId, packed: int) -> bool:
        """:meth:`covers` on a packed ``(inc << SHIFT) | sii`` entry.

        Hot path — ``pid`` comes from a dependency vector and is already
        validated, so no range check here.
        """
        rows = self._rows
        if rows is not None:
            row = rows.get(pid)
            if row is None:
                return False
            return row.get(packed >> PACK_SHIFT, -1) >= (packed & PACK_MASK)
        inc = packed >> PACK_SHIFT
        if inc >= self._stride:
            return False
        value = self._cols[pid * self._stride + inc]
        return value >= (packed & PACK_MASK)


class IncarnationEndTable(EntrySetTable):
    """The ``iet`` table: per (process, incarnation) ending index.

    An entry ``(t, x')`` announces that all state intervals with index
    greater than ``x'`` belonging to incarnation ``t`` — or to any earlier
    incarnation — of that process have been rolled back.
    """

    __slots__ = ()

    def invalidates(self, pid: ProcessId, entry: Entry) -> bool:
        """True iff a dependency on ``entry`` of ``pid`` is an orphan.

        Check_orphan's test: ``exists t: (t, x') in iet[j]  and
        t >= dep.inc  and  x' < dep.sii``.
        """
        self._check_pid(pid)
        if self.version == 0:
            return False
        if self._rows is not None:
            row = self._rows.get(pid)
            if not row:
                return False
            inc, sii = entry.inc, entry.sii
            return any(t >= inc and value < sii for t, value in row.items())
        base = pid * self._stride
        cols = self._cols
        sii = entry.sii
        for t in range(max(entry.inc, 0), self._stride):
            value = cols[base + t]
            if 0 <= value < sii:
                return True
        return False

    def invalidates_packed(self, pid: ProcessId, packed: int) -> bool:
        """:meth:`invalidates` on a packed entry (no pid range check)."""
        if self.version == 0:
            return False
        rows = self._rows
        if rows is not None:
            row = rows.get(pid)
            if not row:
                return False
            inc = packed >> PACK_SHIFT
            sii = packed & PACK_MASK
            return any(t >= inc and value < sii for t, value in row.items())
        sii = packed & PACK_MASK
        base = pid * self._stride
        cols = self._cols
        for t in range(packed >> PACK_SHIFT, self._stride):
            value = cols[base + t]
            if 0 <= value < sii:
                return True
        return False

    def highest_ended_incarnation(self, pid: ProcessId) -> int:
        """Highest incarnation of ``pid`` known to have ended (-1 if none)."""
        self._check_pid(pid)
        if self._rows is not None:
            row = self._rows.get(pid)
            return max(row) if row else -1
        base = pid * self._stride
        for t in range(self._stride - 1, -1, -1):
            if self._cols[base + t] >= 0:
                return t
        return -1

    def all_pairs(self) -> Iterator[Tuple[ProcessId, Entry]]:
        """(pid, end-entry) pairs across all processes (used by recovery)."""
        for pid in range(self.n):
            for entry in self.entries(pid):
                yield pid, entry


# -- reference (pre-columnar) implementations ---------------------------------
#
# The dict-of-dicts model the columnar tables replaced, kept as the ground
# truth for the differential property suite.  Not used by the protocol.


class ReferenceEntrySetTable:
    """Dict-of-dicts ``array[1..N] of set of entry`` (pre-columnar model)."""

    __slots__ = ("n", "_rows", "version")

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"table needs at least one process, got n={n}")
        self.n = n
        self._rows: List[Dict[IncarnationId, IntervalIndex]] = [{} for _ in range(n)]
        self.version = 0

    def insert(self, pid: ProcessId, entry: Entry) -> None:
        row = self._row(pid)
        existing = row.get(entry.inc)
        if existing is None or entry.sii > existing:
            row[entry.inc] = entry.sii
            self.version += 1

    def entries(self, pid: ProcessId) -> Iterator[Entry]:
        row = self._row(pid)
        return iter(Entry(t, x) for t, x in sorted(row.items()))

    def lookup(self, pid: ProcessId, inc: IncarnationId):
        return self._row(pid).get(inc)

    def row_size(self, pid: ProcessId) -> int:
        return len(self._row(pid))

    def snapshot(self) -> List[Dict[IncarnationId, IntervalIndex]]:
        return [dict(row) for row in self._rows]

    def merge_snapshot(self, snap) -> None:
        if isinstance(snap, (TableSnapshot, SparseSnapshot)):
            snap = snap.rows()
        if len(snap) != self.n:
            raise ValueError(
                f"snapshot covers {len(snap)} processes, table covers {self.n}"
            )
        changed = False
        rows = self._rows
        for pid, snap_row in enumerate(snap):
            if not snap_row:
                continue
            row = rows[pid]
            for inc, sii in snap_row.items():
                existing = row.get(inc)
                if existing is None or sii > existing:
                    row[inc] = sii
                    changed = True
        if changed:
            self.version += 1

    def _row(self, pid: ProcessId) -> Dict[IncarnationId, IntervalIndex]:
        if not 0 <= pid < self.n:
            raise IndexError(f"process id {pid} out of range [0, {self.n})")
        return self._rows[pid]


class ReferenceLoggingProgressTable(ReferenceEntrySetTable):
    __slots__ = ()

    def covers(self, pid: ProcessId, entry: Entry) -> bool:
        x_prime = self.lookup(pid, entry.inc)
        return x_prime is not None and entry.sii <= x_prime


class ReferenceIncarnationEndTable(ReferenceEntrySetTable):
    __slots__ = ()

    def invalidates(self, pid: ProcessId, entry: Entry) -> bool:
        row = self._row(pid)
        for t, x_prime in row.items():
            if t >= entry.inc and x_prime < entry.sii:
                return True
        return False

    def highest_ended_incarnation(self, pid: ProcessId) -> int:
        row = self._row(pid)
        return max(row) if row else -1

    def all_pairs(self) -> Iterator[Tuple[ProcessId, Entry]]:
        for pid in range(self.n):
            for entry in self.entries(pid):
                yield pid, entry
