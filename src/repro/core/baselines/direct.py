"""Direct dependency tracking (Section 5 related work).

"Direct dependency tracking techniques [6, 7, 10] piggyback only the
sender's current state interval index, and so are in general more
scalable.  The tradeoff is that, at the time of output commit and
recovery, the system needs to assemble direct dependencies to obtain
transitive dependencies."

This baseline realizes that point in the design space:

- **piggyback** — exactly one entry: the sender's current interval;
- **recovery** — a receiver can only detect orphanhood w.r.t. processes it
  heard from *directly*, so every rollback (not just failures) must be
  announced; orphan elimination then cascades announcement by
  announcement, which is the "assembly at recovery time" cost: more
  announcements and more rollback rounds instead of bigger messages;
- **output commit** — sound commit requires assembling the transitive
  closure of direct dependencies across processes (Johnson's commit
  algorithm), a separate sub-protocol this reproduction scopes out;
  behaviours that emit outputs are rejected so the omission cannot be
  mistaken for support.

The scalability comparison against transitive tracking (message size vs
announcement traffic and rollback rounds) is measured in
``repro.experiments.direct_tracking``.

A fair warning that is itself a finding: this baseline is *deliberately
naive* — it has none of the session/synchronization machinery real
direct-tracking systems add on top — and its announcement cascade is
extremely schedule-sensitive.  On adverse seeds two processes can keep
re-orphaning each other's re-deliveries for a very long virtual time
before quiescing (the engine's max-event guard bounds it).  E9 uses a
schedule that converges quickly; the contrast with one-round transitive
recovery is the point.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.depvec import DependencyVector
from repro.core.effects import BroadcastAnnouncement, Effect, ReleaseMessage
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.net.message import FailureAnnouncement


class DirectDependencyProcess(KOptimisticProcess):
    """Sender-index-only piggybacking with cascaded rollback announcements."""

    def __init__(self, pid, n, k=None, behavior=None, **kwargs):
        del k  # no send buffering in this scheme
        super().__init__(pid, n, n, behavior, **kwargs)

    # -- one-entry piggyback ---------------------------------------------------

    def _piggyback_vector(self) -> DependencyVector:
        """Only the sender's current interval index travels."""
        vector = DependencyVector(self.n)
        vector.set(self.pid, self.current)
        return vector

    # -- release immediately (scalability is the point of the scheme) ----------

    def _check_send_buffer(self) -> List[Effect]:
        effects: List[Effect] = []
        for msg in self.send_buffer:
            self._send_enqueue_times.pop(msg.wire_id, None)
            self.stats.messages_released += 1
            effects.append(ReleaseMessage(msg))
        self.send_buffer = []
        return effects

    # -- cascaded announcements -------------------------------------------------

    def _rollback(self) -> List[Effect]:
        """Every rollback is announced: downstream processes only carry
        *direct* dependencies, so transitive orphan elimination works by
        propagating announcements hop by hop."""
        old_inc = max(self._highest_inc, self.current.inc)
        effects = super()._rollback()
        end = Entry(old_inc, self.current.sii - 1)
        announcement = FailureAnnouncement(self.pid, end)
        self.storage.log_announcement(announcement)
        self.iet.insert(self.pid, end)
        self.log.insert(self.pid, end)
        effects.append(BroadcastAnnouncement(announcement))
        return effects

    # -- outputs are out of scope ------------------------------------------------

    def _enqueue_output(self, payload: Any, seq: int) -> List[Effect]:
        raise NotImplementedError(
            "output commit under direct dependency tracking requires a "
            "transitive-closure assembly sub-protocol (Johnson [6]); this "
            "baseline reproduces only the dependency-tracking/recovery "
            "tradeoff - use an output-free workload"
        )
