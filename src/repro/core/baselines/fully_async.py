"""The completely asynchronous recovery protocol of Section 2.

This baseline "completely decouples dependency propagation from failure
information propagation": messages are delivered as soon as they arrive and
released as soon as they are sent.  The price, as the paper notes, is that

- a process must track dependencies on *every incarnation of every process*
  (message chains from multiple incarnations may coexist), so vectors can
  grow beyond N entries; and
- "it allows potential orphan states to send messages, which may create
  more orphans and hence more rollbacks."

As in the Section 2 narrative, a rolled-back process "starts a new
incarnation as if it itself has failed" and broadcasts its own rollback
announcement.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.core.effects import BroadcastAnnouncement, Effect, ReleaseMessage
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.net.message import AppMessage, FailureAnnouncement
from repro.types import ProcessId


class MultiIncarnationVector:
    """A dependency vector with one entry per (process, incarnation).

    Exposes the subset of the :class:`DependencyVector` interface the
    protocol machinery uses; ``items`` may yield several entries for the
    same process — one per incarnation depended on.
    """

    __slots__ = ("n", "_entries")

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"vector needs at least one process, got n={n}")
        self.n = n
        self._entries: Dict[Tuple[ProcessId, int], int] = {}

    def get(self, pid: ProcessId):
        """Lexicographically largest entry for ``pid`` (or None)."""
        candidates = [
            Entry(inc, sii) for (p, inc), sii in self._entries.items() if p == pid
        ]
        return max(candidates) if candidates else None

    def entries_for(self, pid: ProcessId) -> List[Entry]:
        return sorted(
            Entry(inc, sii) for (p, inc), sii in self._entries.items() if p == pid
        )

    def set(self, pid: ProcessId, entry) -> None:
        if entry is None:
            self.nullify(pid)
            return
        key = (pid, entry.inc)
        existing = self._entries.get(key)
        if existing is None or entry.sii > existing:
            self._entries[key] = entry.sii

    def nullify(self, pid: ProcessId) -> None:
        """Drop every incarnation entry for ``pid``."""
        for key in [k for k in self._entries if k[0] == pid]:
            del self._entries[key]

    def nullify_entry(self, pid: ProcessId, entry) -> None:
        """Drop only the entry for (pid, entry.inc)."""
        self._entries.pop((pid, entry.inc), None)

    def merge(self, other) -> None:
        """Merge any vector exposing ``items()`` — a peer's multi-incarnation
        vector, or a plain single-entry vector (environment messages)."""
        for pid, entry in other.items():
            self.set(pid, entry)

    def copy(self) -> "MultiIncarnationVector":
        dup = MultiIncarnationVector(self.n)
        dup._entries = dict(self._entries)
        return dup

    def non_null_count(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[Tuple[ProcessId, Entry]]:
        return iter(
            sorted((p, Entry(inc, sii)) for (p, inc), sii in self._entries.items())
        )

    def iter_items(self) -> Iterator[Tuple[ProcessId, Entry]]:
        """Unordered variant of :meth:`items` (hot-path duck-typing with
        :class:`repro.core.depvec.DependencyVector`)."""
        return ((p, Entry(inc, sii)) for (p, inc), sii in self._entries.items())

    def processes(self) -> Iterator[ProcessId]:
        return iter(sorted({p for p, _inc in self._entries}))

    def as_dict(self):
        return {key: sii for key, sii in self._entries.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiIncarnationVector):
            return NotImplemented
        return self.n == other.n and self._entries == other._entries

    def __hash__(self):  # pragma: no cover
        raise TypeError("MultiIncarnationVector is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{e}_{p}" for p, e in self.items())
        return "{" + inner + "}"


class FullyAsyncProcess(KOptimisticProcess):
    """Completely asynchronous recovery (Section 2's illustration protocol)."""

    def __init__(self, pid, n, k=None, behavior=None, **kwargs):
        del k  # no degree of optimism: release immediately
        super().__init__(pid, n, n, behavior, **kwargs)

    # -- per-incarnation tracking ---------------------------------------------

    def _new_vector(self):
        return MultiIncarnationVector(self.n)

    def _nullify_stable_tdv_entries(self) -> None:
        """No commit dependency tracking in this baseline."""

    # -- fully decoupled: no delivery gating, no send buffering ---------------

    def _deliverable(self, msg: AppMessage) -> bool:
        return True

    def _check_send_buffer(self) -> List[Effect]:
        effects: List[Effect] = []
        for msg in self.send_buffer:
            self._send_enqueue_times.pop(msg.wire_id, None)
            self.stats.messages_released += 1
            effects.append(ReleaseMessage(msg))
        self.send_buffer = []
        return effects

    # -- rollback: any invalidated incarnation entry orphans us ---------------

    def _state_orphaned_by(self, ann: FailureAnnouncement) -> bool:
        return any(
            self.iet.invalidates(ann.origin, entry)
            for entry in self.tdv.entries_for(ann.origin)
        )

    def _rollback(self) -> List[Effect]:
        old_inc = max(self._highest_inc, self.current.inc)
        effects = super()._rollback()
        end = Entry(old_inc, self.current.sii - 1)
        announcement = FailureAnnouncement(self.pid, end)
        self.storage.log_announcement(announcement)
        self.iet.insert(self.pid, end)
        self.log.insert(self.pid, end)
        effects.append(BroadcastAnnouncement(announcement))
        return effects
