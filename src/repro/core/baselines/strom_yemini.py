"""The Strom & Yemini optimistic recovery baseline (TOCS 1985).

The classical protocol the paper improves on.  Differences from the
K-optimistic protocol, each implemented as an override:

- **always-size-N tracking** — no commit dependency tracking: entries are
  never nullified by logging progress, so every message carries (close to)
  one entry per process it causally depends on;
- **no send buffer** — messages are released immediately regardless of how
  many failures could revoke them (equivalent to K = N);
- **announcements on every rollback** — a non-failed rolled-back process
  also broadcasts a rollback announcement (Theorem 1 shows this is
  unnecessary; this baseline predates that observation);
- **incarnation-gated delivery** — delivery of a message carrying a
  dependency on incarnation t of P_i is delayed until the rollback
  announcement ending incarnation t-1 of P_i has arrived, so the vector
  only ever needs one entry per process (the coupling of dependency and
  failure-information propagation described in Section 2).

Strom & Yemini assume FIFO channels; run this baseline with
``SimConfig(fifo=True)``.
"""

from __future__ import annotations

from typing import List

from repro.core.effects import BroadcastAnnouncement, Effect, ReleaseMessage
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.net.message import AppMessage, FailureAnnouncement


class StromYeminiProcess(KOptimisticProcess):
    """Classical optimistic recovery with full transitive vectors."""

    def __init__(self, pid, n, k=None, behavior=None, **kwargs):
        # The degree of optimism does not exist in this protocol: messages
        # are never held, which is K = N behaviour.
        del k
        kwargs.pop("nullify_own_on_flush", None)
        super().__init__(pid, n, n, behavior, nullify_own_on_flush=False, **kwargs)

    # -- no commit dependency tracking ------------------------------------

    def _nullify_stable_tdv_entries(self) -> None:
        """Logging progress never shrinks the vector (pre-Theorem-2)."""

    def _check_send_buffer(self) -> List[Effect]:
        """Release everything immediately, with its full vector intact."""
        effects: List[Effect] = []
        for msg in self.send_buffer:
            self._send_enqueue_times.pop(msg.wire_id, None)
            self.stats.messages_released += 1
            effects.append(ReleaseMessage(msg))
        self.send_buffer = []
        return effects

    # -- incarnation-gated delivery -----------------------------------------

    def _deliverable(self, msg: AppMessage) -> bool:
        """Delay m until, for each dependency on incarnation t of P_j, the
        ends of all incarnations below t are known; the lexicographic-max
        merge is then unambiguous (Strom & Yemini's rule, which the paper's
        Corollary 1 relaxes)."""
        for pid, m_entry in msg.tdv.items():
            if pid == self.pid:
                continue
            if m_entry.inc > self.iet.highest_ended_incarnation(pid) + 1:
                return False
        return True

    # -- announce every rollback -----------------------------------------------

    def _rollback(self) -> List[Effect]:
        old_inc = max(self._highest_inc, self.current.inc)
        effects = super()._rollback()
        end = Entry(old_inc, self.current.sii - 1)
        announcement = FailureAnnouncement(self.pid, end)
        self.storage.log_announcement(announcement)
        self.iet.insert(self.pid, end)
        self.log.insert(self.pid, end)
        effects.append(BroadcastAnnouncement(announcement))
        return effects
