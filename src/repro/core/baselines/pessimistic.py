"""Pessimistic (synchronous receiver-based) message logging.

The paper's description: "Pessimistic logging either synchronously logs
each message upon receiving it, or logs all delivered messages before
sending a message.  It guarantees that any process state from which a
message is sent is always recreatable, and therefore no process failure
will ever revoke any message."

This baseline implements the first form: every delivery is synchronously
forced to stable storage *before* the handler's sends can leave the
process.  Because every interval anywhere is stable by the time anything
depends on it, no dependency tracking is needed at all — messages carry an
empty vector and are released immediately.  The price is one synchronous
stable-storage operation per delivered message, the failure-free overhead
the paper's industrial users pay for localized recovery.
"""

from __future__ import annotations

from typing import List

from repro.core.depvec import DependencyVector
from repro.core.effects import Effect, StableProgress
from repro.core.protocol import KOptimisticProcess


class PessimisticProcess(KOptimisticProcess):
    """0-risk logging: sync-on-delivery, empty piggyback, instant release."""

    def __init__(self, pid, n, k=0, behavior=None, **kwargs):
        # K is forced to 0: pessimistic logging is 0-optimistic by nature.
        super().__init__(pid, n, 0, behavior, **kwargs)

    def _post_delivery_effects(self) -> List[Effect]:
        """Force the delivery to disk before its sends are released."""
        self.storage.append_log(self.volatile.drain(), sync=True)
        self.log.insert(self.pid, self.current)
        self.tdv.nullify(self.pid)
        return [StableProgress(self.pid, self.current)]

    def _piggyback_vector(self) -> DependencyVector:
        """All causal predecessors are stable; nothing needs tracking."""
        return DependencyVector(self.n)

    def flush(self) -> List[Effect]:
        """Nothing accumulates in the volatile buffer; flushes are no-ops
        (they would double-count storage operations in the cost model)."""
        self._require_running()
        return []
