"""Baseline protocols the paper positions K-optimistic logging against,
plus harness factories for running them side by side."""

from repro.core.baselines.direct import DirectDependencyProcess
from repro.core.baselines.fully_async import FullyAsyncProcess, MultiIncarnationVector
from repro.core.baselines.pessimistic import PessimisticProcess
from repro.core.baselines.strom_yemini import StromYeminiProcess

__all__ = [
    "DirectDependencyProcess",
    "FullyAsyncProcess",
    "MultiIncarnationVector",
    "PessimisticProcess",
    "StromYeminiProcess",
    "direct_factory",
    "fully_async_factory",
    "pessimistic_factory",
    "strom_yemini_factory",
]


def pessimistic_factory(pid, config, behavior, now_fn):
    """Harness factory for :class:`PessimisticProcess`."""
    return PessimisticProcess(
        pid, config.n, 0, behavior, seed=config.seed, now_fn=now_fn
    )


def strom_yemini_factory(pid, config, behavior, now_fn):
    """Harness factory for :class:`StromYeminiProcess` (use with fifo=True)."""
    return StromYeminiProcess(
        pid, config.n, behavior=behavior, seed=config.seed, now_fn=now_fn
    )


def fully_async_factory(pid, config, behavior, now_fn):
    """Harness factory for :class:`FullyAsyncProcess`."""
    return FullyAsyncProcess(
        pid, config.n, behavior=behavior, seed=config.seed, now_fn=now_fn
    )


def direct_factory(pid, config, behavior, now_fn):
    """Harness factory for :class:`DirectDependencyProcess`."""
    from repro.core.baselines.direct import DirectDependencyProcess

    return DirectDependencyProcess(
        pid, config.n, behavior=behavior, seed=config.seed, now_fn=now_fn
    )
