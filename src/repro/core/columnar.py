"""Shared primitives for the columnar hot-state layout.

The protocol's hot state — dependency vectors, the ``log``/``iet`` tables,
and the engine queue — used to be dicts of :class:`~repro.core.entry.Entry`
objects.  The columnar layout packs each ``(inc, sii)`` pair into a single
int and stores rows as flat int columns, so the inner loops of depvec
merges, orphan scans, and stability nullification become index arithmetic
with no per-element object allocation.

Packing
-------

``packed = (inc << PACK_SHIFT) | sii`` with ``sii < 2**PACK_SHIFT``.
Because ``inc`` occupies the high bits, integer comparison of packed values
coincides exactly with :class:`Entry`'s lexicographic ``(inc, sii)`` order,
so ``max(packed_a, packed_b)`` is the paper's lexical maximum.  ``PACK_SHIFT
= 40`` leaves room for ~10^12 state intervals per incarnation — far beyond
any run this simulator can produce (a bench run executes ~10^5 intervals).

numpy feature probe
-------------------

numpy is optional.  When importable (and not disabled via the
``REPRO_NO_NUMPY`` environment variable, which the equivalence tests use to
exercise the fallback), large tables store their columns as ``int64``
ndarrays and merge snapshots with ``np.maximum``; otherwise plain Python
lists are used with identical semantics.  Small tables always use lists —
per-scalar ndarray indexing costs more than it saves below ``NP_MIN_N``
processes.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as _numpy
except Exception:  # pragma: no cover
    _numpy = None

if os.environ.get("REPRO_NO_NUMPY"):
    _numpy = None

#: The numpy module, or ``None`` when unavailable/disabled.
NUMPY = _numpy

#: Below this process count the list backend wins (scalar access dominates).
NP_MIN_N = 64

PACK_SHIFT = 40
PACK_MASK = (1 << PACK_SHIFT) - 1


def pack(inc: int, sii: int) -> int:
    """Pack ``(inc, sii)`` preserving Entry's lexicographic order."""
    return (inc << PACK_SHIFT) | sii


def unpack_inc(packed: int) -> int:
    return packed >> PACK_SHIFT


def unpack_sii(packed: int) -> int:
    return packed & PACK_MASK


def use_numpy_for(n: int) -> bool:
    """Whether a table over ``n`` processes should use ndarray columns."""
    return NUMPY is not None and n >= NP_MIN_N


#: At and above this process count the dense ``pid*stride+inc`` column is
#: replaced by a dict-of-rows backend: every process holds two tables, so
#: dense storage is O(n^2 * stride) per simulation — ~6 GB at n=10000 —
#: while the rows a process actually learns about stay sparse (bounded by
#: gossip reach, not by n).  Overridable for tests via REPRO_SPARSE_MIN_N.
SPARSE_MIN_N = int(os.environ.get("REPRO_SPARSE_MIN_N", "4096"))


def use_sparse_for(n: int) -> bool:
    """Whether a table over ``n`` processes should use the sparse backend."""
    return n >= SPARSE_MIN_N
