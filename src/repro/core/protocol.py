"""The K-optimistic logging protocol (Figures 2 and 3 of the paper).

Every routine of the pseudo-code maps onto a method of
:class:`KOptimisticProcess`:

=======================  ==============================================
Paper routine            Method
=======================  ==============================================
Initialize               :meth:`initialize`
Receive_message          :meth:`on_receive`
Deliver_message          :meth:`_deliver` (driven by the deliver loop)
Check_deliverability     :meth:`_deliverable`
Check_orphan             :meth:`_is_orphan_message` / buffer scrubbing
Send_message             :meth:`_enqueue_send` (called by the app context)
Check_send_buffer        :meth:`_check_send_buffer`
Restart                  :meth:`restart` (after :meth:`crash`)
Receive_failure_ann      :meth:`on_failure_announcement`
Rollback                 :meth:`_rollback`
Checkpoint               :meth:`checkpoint`
Receive_log              :meth:`on_log_notification`
Insert                   ``EntrySetTable.insert``
=======================  ==============================================

Handlers are sans-IO: they return :mod:`repro.core.effects` objects instead
of touching a network, so every routine is unit-testable in isolation and
the runtime layer stays a thin interpreter.

Fidelity notes (deviations are deliberate and argued):

- **Delivery point.**  The pseudo-code marks messages deliverable
  (``m.deliver``) and delivers them in a separate application-driven event.
  Here a deliver loop runs at the end of each handler, which is the same
  schedule with the application always ready.
- **Rollback before delivery.**  On a failure announcement we evaluate the
  rollback condition *before* delivering newly deliverable messages.  The
  paper lists the rollback check last, but delivering first would knowingly
  extend an orphan state — exactly the behaviour Section 2 criticises in
  fully asynchronous protocols; with rollback first the same messages are
  delivered afterwards from the recovered state.
- **Incarnation persistence.**  A non-failed Rollback announces nothing
  (Theorem 1) yet must not lose its incarnation bump across a later crash,
  so it writes a one-word incarnation marker to stable storage.  Failed
  rollbacks get this for free from the synchronously logged announcement.
- **Restart honours logged announcements.**  Announcements are synchronously
  logged, so a restarting process first rebuilds iet/log from them and stops
  its replay at the first orphaned logged message, rather than blindly
  replaying everything and rolling back again moments later.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.app.behavior import AppBehavior, AppContext
from repro.core.columnar import PACK_SHIFT as _PACK_SHIFT
from repro.core.depvec import DependencyVector
from repro.core.effects import (
    BroadcastAnnouncement,
    CommitOutput,
    DuplicateDropped,
    Effect,
    MessageDelivered,
    MessageDiscarded,
    OutputDiscarded,
    ReleaseMessage,
    RequestLogging,
    RestartPerformed,
    RollbackPerformed,
    ScheduleRetransmit,
    SendNotification,
    StableProgress,
)
from repro.core.entry import Entry
from repro.core.output import OutputBuffer
from repro.core.tables import IncarnationEndTable, LoggingProgressTable
from repro.net.message import (
    AppAck,
    AppMessage,
    FailureAnnouncement,
    LoggingRequest,
    LogProgressNotification,
    OutputRecord,
)
from repro.storage.stable import Checkpoint, LoggedMessage, StableStorage
from repro.storage.volatile import VolatileBuffer
from repro.types import MessageId, OutputId, ProcessId


class ProtocolStats:
    """Failure-free and recovery counters maintained by the protocol."""

    def __init__(self):
        self.messages_enqueued = 0
        self.messages_released = 0
        self.send_hold_time_total = 0.0
        self.send_hold_time_max = 0.0
        self.deliveries = 0
        self.replayed_deliveries = 0
        self.delivery_wait_total = 0.0
        self.duplicates_dropped = 0
        self.orphans_discarded = 0
        self.outputs_enqueued = 0
        self.outputs_committed = 0
        self.output_wait_total = 0.0
        self.outputs_discarded = 0
        self.rollbacks = 0
        self.restarts = 0
        self.retransmissions = 0
        self.timer_retransmissions = 0
        self.acks_received = 0
        self.retransmit_budget_exhausted = 0
        self.intervals_undone = 0
        self.messages_requeued = 0

    def mean_send_hold(self) -> float:
        if self.messages_released == 0:
            return 0.0
        return self.send_hold_time_total / self.messages_released

    def mean_output_wait(self) -> float:
        if self.outputs_committed == 0:
            return 0.0
        return self.output_wait_total / self.outputs_committed


class _PendingSend:
    """A released message awaiting a transport ack (unreliable networks)."""

    __slots__ = ("msg", "attempts", "next_delay")

    def __init__(self, msg: AppMessage, next_delay: float):
        self.msg = msg
        self.attempts = 0
        self.next_delay = next_delay


class KOptimisticProcess:
    """The per-process recovery layer running underneath the application."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        k: int,
        behavior: AppBehavior,
        storage: Optional[StableStorage] = None,
        seed: int = 0,
        now_fn: Optional[Callable[[], float]] = None,
        nullify_own_on_flush: bool = True,
        output_driven_logging: bool = False,
        gc_on_checkpoint: bool = True,
        retransmit_window: int = 0,
        retransmit_timeout: float = 0.0,
        retransmit_backoff: float = 2.0,
        retransmit_budget: int = 8,
        k_policy: Optional[Callable[[], int]] = None,
        delta_notifications: bool = False,
    ):
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range for n={n}")
        if k < 0:
            raise ValueError(f"degree of optimism K must be >= 0, got {k}")
        self.pid = pid
        self.n = n
        self.k = k
        self.behavior = behavior
        self.storage = storage if storage is not None else StableStorage(pid)
        self.seed = seed
        self.now_fn = now_fn or (lambda: 0.0)
        self.nullify_own_on_flush = nullify_own_on_flush
        self.output_driven_logging = output_driven_logging
        self.gc_on_checkpoint = gc_on_checkpoint
        # Footnote 3: lost in-transit messages "can be retrieved from the
        # senders' volatile logs".  A window of 0 disables retransmission.
        self.retransmit_window = retransmit_window
        self._sent_log: Dict[ProcessId, List[AppMessage]] = {}
        # Timer-driven ack/retransmit (for unreliable networks): every
        # released message stays pending until the destination transport
        # acks it; a timer (requested as a ScheduleRetransmit effect and
        # interpreted by the harness) re-releases it with exponential
        # backoff, up to ``retransmit_budget`` attempts.  0 disables.
        self.retransmit_timeout = retransmit_timeout
        self.retransmit_backoff = retransmit_backoff
        self.retransmit_budget = retransmit_budget
        self._unacked: Dict[MessageId, _PendingSend] = {}
        # Per-message K policy (Section 4.2): consulted at enqueue time
        # for sends the application left unbounded.  The adaptive-K
        # controller (repro.control) plugs in here; ``None`` keeps the
        # static system-wide K.
        self.k_policy = k_policy
        # Latency accounting across a restart boundary: outputs
        # re-enqueued by crash-recovery replay are backdated to the crash
        # time (their original enqueue time died with the volatile output
        # buffer; the crash instant is the latest knowable lower bound),
        # so commit latency includes the downtime instead of restarting
        # the clock at replay time.
        self._down_since: Optional[float] = None
        self._replay_backdate: Optional[float] = None

        # Figure 2 variable declarations.
        self.tdv = self._new_vector()
        self.log = LoggingProgressTable(n)
        self.iet = IncarnationEndTable(n)
        self.current = Entry(0, 1)

        # Delta gossip (make_log_notification_for): per-peer changelog
        # cursor (epoch, offset, deltas_since_full).
        self.delta_notifications = delta_notifications
        self._delta_peers: Dict[ProcessId, Tuple[int, int, int]] = {}
        if delta_notifications:
            self.log.enable_changelog()

        # Buffers.
        self.receive_buffer: List[AppMessage] = []
        self.send_buffer: List[AppMessage] = []
        self.output_buffer = OutputBuffer()
        self.volatile = VolatileBuffer()

        # Application state and bookkeeping.
        self.app_state: Any = None
        self.received_ids: Set[MessageId] = set()
        self.failed = False
        self._initialized = False
        self._highest_inc = 0
        self._send_enqueue_times: Dict[int, float] = {}
        self._receive_times: Dict[int, float] = {}
        self.stats = ProtocolStats()

        # Scan-skip state: send-buffer release checks and Theorem-2
        # nullification only change their answer when the log table, the
        # local vector, or the buffered set changed since the last pass.
        self._sb_dirty = True
        self._sb_log_version = -1
        self._nul_versions: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Initialize
    # ------------------------------------------------------------------

    def initialize(self) -> List[Effect]:
        """Figure 2's Initialize plus the implicit initial checkpoint.

        Corollary 3: a process starts with no dependency entry; its first
        state interval counts as stable because "each process execution can
        be considered as starting with an initial checkpoint".
        """
        if self._initialized:
            raise RuntimeError(f"P{self.pid} initialized twice")
        self._initialized = True
        self.current = Entry(0, 1)
        self.app_state = self.behavior.initial_state(self.pid, self.n)
        self.storage.write_checkpoint(
            self.current, self.app_state, self.tdv, self.received_ids,
            time_taken=self.now_fn(),
        )
        self.log.insert(self.pid, self.current)
        return []

    # ------------------------------------------------------------------
    # Receive_message
    # ------------------------------------------------------------------

    def on_receive(self, msg: AppMessage) -> List[Effect]:
        """Receive_message(m): orphan check, then buffer, then deliver loop."""
        self._require_running()
        if msg.msg_id in self.received_ids:
            self.stats.duplicates_dropped += 1
            return [DuplicateDropped(msg)]
        if self._is_orphan_message(msg):
            self.stats.orphans_discarded += 1
            return [MessageDiscarded(msg, reason="orphan-on-receive")]
        self.received_ids.add(msg.msg_id)
        self._receive_times[msg.wire_id] = self.now_fn()
        self.receive_buffer.append(msg)
        return self._deliver_loop()

    # ------------------------------------------------------------------
    # Receive_failure_ann
    # ------------------------------------------------------------------

    def on_failure_announcement(self, ann: FailureAnnouncement) -> List[Effect]:
        """Receive_failure_ann(j, t, x'): Figure 3."""
        self._require_running()
        effects: List[Effect] = []
        # "Synchronously log the received announcement" — so iet/log survive
        # our own later crash.
        self.storage.log_announcement(ann)
        self.iet.insert(ann.origin, ann.end)
        # Corollary 1: the announcement also says (t, x') is stable.
        self.log.insert(ann.origin, ann.end)
        # The origin lost every gossiped table row with its volatile state:
        # our next notification to it must be a full snapshot.
        self._delta_peers.pop(ann.origin, None)

        # Roll back first if our own state is orphaned (see fidelity notes).
        if self._state_orphaned_by(ann):
            effects += self._rollback()

        effects += self._scrub_orphans()
        # Corollary 1 also applies to the local vector: the announcement
        # certifies (t, x') stable, so a dependency it covers is redundant
        # (the paper's pseudo-code nullifies only buffered copies here; the
        # local entry would be dropped by the next Receive_log anyway).
        self._nullify_stable_tdv_entries()
        effects += self._retransmit_to(ann.origin)
        effects += self._check_send_buffer()
        effects += self._update_output_buffer()
        effects += self._deliver_loop()
        return effects

    def _retransmit_to(self, dst: ProcessId) -> List[Effect]:
        """Footnote 3: re-send recent messages to a restarted process from
        the volatile sent-log; its receive buffer died with it.  Duplicates
        are harmless (receivers deduplicate by message id) and orphan
        copies are pruned here and discarded again on receipt."""
        if self.retransmit_window <= 0:
            return []
        copies = self._sent_log.get(dst)
        if not copies:
            return []
        survivors = [m for m in copies if not self._is_orphan_message(m)]
        self._sent_log[dst] = survivors
        self.stats.retransmissions += len(survivors)
        return [ReleaseMessage(m) for m in survivors]

    # ------------------------------------------------------------------
    # Ack/retransmit (unreliable networks)
    # ------------------------------------------------------------------

    def on_ack(self, ack: AppAck) -> List[Effect]:
        """A transport ack arrived: the destination holds the message, so
        stop retransmitting it.  Idempotent (acks may be duplicated)."""
        if self._unacked.pop(ack.msg_id, None) is not None:
            self.stats.acks_received += 1
        return []

    def on_retransmit_timer(self, msg_id: MessageId) -> List[Effect]:
        """A retransmission timer fired (the harness interpreting an
        earlier :class:`ScheduleRetransmit`).

        Re-releases the message and re-arms the timer with exponential
        backoff unless it was acked in the meantime, became an orphan, or
        the bounded retry budget ran out.  The re-release is safe: the
        receiver deduplicates by message id, and stability only grows, so
        Theorem 4's bound still holds at every re-release.
        """
        pending = self._unacked.get(msg_id)
        if pending is None or self.failed:
            return []
        if self._is_orphan_message(pending.msg):
            del self._unacked[msg_id]
            return []
        if pending.attempts >= self.retransmit_budget:
            del self._unacked[msg_id]
            self.stats.retransmit_budget_exhausted += 1
            return []
        pending.attempts += 1
        delay = pending.next_delay
        pending.next_delay *= self.retransmit_backoff
        self.stats.timer_retransmissions += 1
        return [ReleaseMessage(pending.msg), ScheduleRetransmit(msg_id, delay)]

    # ------------------------------------------------------------------
    # Receive_log
    # ------------------------------------------------------------------

    def on_log_notification(self, notif: LogProgressNotification) -> List[Effect]:
        """Receive_log(mlog): merge stability info, drop redundant deps."""
        return self.on_log_notifications([notif])

    def on_log_notifications(
        self, notifs: List[LogProgressNotification]) -> List[Effect]:
        """Receive_log over a whole batch of notifications at once.

        Stability information is monotone and merged by max, so merging
        all snapshots first and running the (expensive) nullification /
        send-buffer / output-buffer / deliver scans *once* is equivalent to
        interleaving them per notification — and at high fan-in it is the
        difference between O(batch) and O(batch * scan) work per gossip
        tick.  The runtime batches same-instant arrivals (see
        ``ProcessHost``); a batch of one is exactly the paper's
        Receive_log.
        """
        self._require_running()
        if len(notifs) == 1:
            self.log.merge_snapshot(notifs[0].table)
        else:
            self.log.merge_snapshots([notif.table for notif in notifs])
        self._nullify_stable_tdv_entries()
        effects = self._check_send_buffer()
        effects += self._update_output_buffer()
        effects += self._deliver_loop()
        return effects

    def make_log_notification(self, own_only: bool = False) -> LogProgressNotification:
        """Build a logging progress notification for broadcast.

        With ``own_only`` the notification carries only this process's own
        row; by default the full table is gossiped (Receive_log's signature
        iterates over all j, so transitive propagation is intended).
        """
        snapshot = self.log.snapshot_columns()
        if own_only:
            snapshot = snapshot.restrict(self.pid)
        return LogProgressNotification(self.pid, snapshot)

    #: Every this-many delta notifications to a peer, send a full snapshot
    #: anyway — a cheap safety valve bounding the damage of any divergence.
    DELTA_FULL_REFRESH_EVERY = 16

    def make_log_notification_for(
            self, dst: ProcessId, own_only: bool = False,
    ) -> LogProgressNotification:
        """Per-destination notification, delta-encoded when possible.

        With :attr:`delta_notifications` the changelog cursor acknowledged
        by the last notification to ``dst`` selects only the entries that
        changed since (:meth:`EntrySetTable.delta_since`); first contact, a
        stale cursor (changelog compaction), the periodic refresh, or a
        crashed peer (cursor dropped on its failure announcement) fall back
        to the full snapshot.  Sound only on reliable channels — a dropped
        delta would silently lose the acknowledged entries — which
        ``SimConfig.validate`` enforces.
        """
        if not self.delta_notifications:
            return self.make_log_notification(own_only=own_only)
        cursor_now = self.log.changelog_position
        state = self._delta_peers.get(dst)
        if state is not None and state[2] < self.DELTA_FULL_REFRESH_EVERY:
            delta = self.log.delta_since((state[0], state[1]))
            if delta is not None:
                if own_only:
                    delta = delta.restrict(self.pid)
                self._delta_peers[dst] = (cursor_now[0], cursor_now[1],
                                          state[2] + 1)
                return LogProgressNotification(self.pid, delta)
        notif = self.make_log_notification(own_only=own_only)
        self._delta_peers[dst] = (cursor_now[0], cursor_now[1], 0)
        return notif

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self) -> List[Effect]:
        """Figure 3's Checkpoint.

        Logging the volatile buffer first keeps stable state intervals
        contiguous (Section 2); Corollary 2 then lets us drop the dependency
        entry on our own current incarnation.
        """
        self._require_running()
        self.storage.append_log(self.volatile.drain(), sync=True)
        self.storage.write_checkpoint(
            self.current, self.app_state, self.tdv, self.received_ids,
            time_taken=self.now_fn(),
        )
        self.log.insert(self.pid, self.current)
        self.tdv.nullify(self.pid)
        if self.gc_on_checkpoint:
            self._garbage_collect()
        effects: List[Effect] = [StableProgress(self.pid, self.current)]
        effects += self._check_send_buffer()
        effects += self._update_output_buffer()
        effects += self._deliver_loop()
        return effects

    def _garbage_collect(self) -> int:
        """Reclaim recovery data that can never be needed again.

        A checkpoint whose dependency vector is entirely covered by the log
        table has no non-stable transitive dependencies (Theorem 3), so it
        can never become orphaned; Restart and Rollback will never restore
        anything older.  Earlier checkpoints and logged messages at or
        before its interval are dead weight.  Returns records reclaimed.
        """
        checkpoints = self.storage.checkpoints
        for idx in range(len(checkpoints) - 1, 0, -1):
            checkpoint = checkpoints[idx]
            if all(self.log.covers(pid, entry)
                   for pid, entry in checkpoint.tdv.items()):
                return self.storage.truncate_before(idx)
        return 0

    # ------------------------------------------------------------------
    # Asynchronous flush (the optimistic logging step)
    # ------------------------------------------------------------------

    def flush(self) -> List[Effect]:
        """Write the volatile buffer to stable storage in one async operation.

        This is the paper's "asynchronously saves messages in the volatile
        buffer to stable storage".  Afterwards every interval up to
        ``current`` is reconstructible; with ``nullify_own_on_flush`` (the
        default) that progress is recorded in our own row of the log table
        and the dependency on our own current interval is dropped
        (Theorem 2).  With the flag off, only Checkpoint advances the log
        table (Corollary 2 to the letter) — flushes still make intervals
        stable, the protocol just does not *exploit* it.
        """
        self._require_running()
        records = self.volatile.drain()
        if records:
            self.storage.append_log(records, sync=False)
        # The backend, not the protocol, decides how far durability really
        # reached: a group-committing file log may still hold un-fsynced
        # records, and announcing those intervals stable (or nullifying the
        # own-entry they protect) would let an output commit depend on
        # bytes a crash can still lose.  The model backend's frontier is
        # always ``current``, which reduces to the paper's flush exactly.
        frontier = self.storage.stable_frontier(self.current)
        if self.nullify_own_on_flush:
            self.log.insert(self.pid, frontier)
            if self.log.covers(self.pid, self.current):
                self.tdv.nullify(self.pid)
        effects: List[Effect] = [StableProgress(self.pid, frontier)]
        effects += self._check_send_buffer()
        effects += self._update_output_buffer()
        return effects

    # ------------------------------------------------------------------
    # Crash / Restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: every piece of volatile state disappears."""
        self._require_running()
        self.failed = True
        self._down_since = self.now_fn()
        # The storage device drops whatever was never truly persisted
        # (un-fsynced group-commit batches, lied-about fsyncs, armed torn
        # tails).  Never raises — for the model backend it is a no-op.
        self.storage.crash()
        self.volatile.clear()
        self.receive_buffer.clear()
        self.send_buffer.clear()
        self._sent_log.clear()
        self._unacked.clear()
        self.output_buffer.discard_all()
        self._send_enqueue_times.clear()
        self._receive_times.clear()
        self.received_ids = set()
        self._delta_peers.clear()

    def boot_after_crash(self) -> List[Effect]:
        """Bring a *freshly constructed* instance up from an existing journal.

        The simulation calls :meth:`crash` then :meth:`restart` on one
        long-lived instance.  A real deployment cannot: the crashed OS
        process is gone, and its replacement constructs a new instance over
        the same journal directory.  This is the entry point for that
        respawn path — it must be used instead of :meth:`initialize`
        (which would write a fresh initial checkpoint into a journal that
        already has history)."""
        if self._initialized:
            raise RuntimeError(
                f"P{self.pid}: boot_after_crash on an initialized instance"
            )
        self._initialized = True
        self.failed = True
        return self.restart()

    def restart(self) -> List[Effect]:
        """Figure 3's Restart: rebuild from stable storage, announce the
        failure, and start a new incarnation."""
        if not self.failed:
            raise RuntimeError(f"P{self.pid}: restart without a crash")

        # REDO-only fast restart: the backend re-reads its journal, checks
        # every frame's checksum, truncates at the first torn or corrupt
        # record, and rebuilds the logical state the code below consumes.
        # May raise StorageDeadError (unreadable media) — the runtime then
        # keeps the process down and retries the restart later.
        self.storage.recover()

        # Rebuild iet/log from synchronously logged announcements.
        self.tdv = self._new_vector()
        self.iet = IncarnationEndTable(self.n)
        self.log = LoggingProgressTable(self.n)
        if self.delta_notifications:
            self.log.enable_changelog()
        self._invalidate_scan_caches()
        for ann in self.storage.announcements:
            self.iet.insert(ann.origin, ann.end)
            self.log.insert(ann.origin, ann.end)
        for checkpoint in self.storage.checkpoints:
            self.log.insert(self.pid, checkpoint.entry)

        effects: List[Effect] = []
        self.failed = False
        # Outputs re-enqueued during replay were first enqueued before the
        # crash (the volatile buffer that held them — and their original
        # enqueue stamps — is gone).  Backdating them to the crash instant
        # keeps output-wait accounting from silently dropping the downtime.
        self._replay_backdate = self._down_since
        try:
            replayed, requeued = self._restore_and_replay(effects)
        finally:
            self._replay_backdate = None
            self._down_since = None

        stop = self.current
        self.log.insert(self.pid, Entry(stop.inc, stop.sii))
        effects.append(StableProgress(self.pid, stop))

        # The failed incarnation is the highest ever used; the marker query
        # folds in checkpoints, logged messages and our own announcements.
        failed_inc = max(self.storage.highest_incarnation_marker(), stop.inc)
        announcement = FailureAnnouncement(self.pid, Entry(failed_inc, stop.sii))
        self.storage.log_announcement(announcement)
        self.iet.insert(self.pid, announcement.end)
        self.log.insert(self.pid, announcement.end)

        self._highest_inc = failed_inc + 1
        self.current = Entry(self._highest_inc, stop.sii + 1)
        self.tdv.set(self.pid, self.current)
        self.stats.restarts += 1

        effects.append(
            RestartPerformed(self.pid, announcement, replayed, self.current)
        )
        effects.append(BroadcastAnnouncement(announcement))
        effects += self._check_send_buffer()
        effects += self._update_output_buffer()
        effects += self._deliver_loop()
        return effects

    # ------------------------------------------------------------------
    # Rollback (non-failed orphan recovery)
    # ------------------------------------------------------------------

    def _rollback(self) -> List[Effect]:
        """Figure 3's Rollback, triggered from Receive_failure_ann.

        The orphan condition is evaluated against the *whole* iet (which the
        caller has just extended with the triggering announcement); that is
        equivalent to condition (I) for the new announcement plus all
        previously handled ones.
        """
        before = self.current

        # "Log all the unlogged messages to the stable storage."  The whole
        # prefix is stable from here on (orphans among it are popped below,
        # but stability and orphanhood are orthogonal).
        self.storage.append_log(self.volatile.drain(), sync=True)
        effects: List[Effect] = [StableProgress(self.pid, before)]

        replayed, requeued = self._restore_and_replay(effects)

        stop = self.current
        # Everything replayed is on stable storage: record our own progress.
        self.log.insert(self.pid, Entry(stop.inc, stop.sii))

        new_inc = max(self._highest_inc, self.storage.highest_incarnation_marker()) + 1
        self._highest_inc = new_inc
        self.storage.log_incarnation_start(new_inc)
        self.current = Entry(new_inc, stop.sii + 1)
        self.tdv.set(self.pid, self.current)

        undone = before.sii - stop.sii
        self.stats.rollbacks += 1
        self.stats.intervals_undone += max(undone, 0)

        # Drop wait-time entries whose messages are no longer buffered
        # (delivered-then-undone, or replaced by requeued log records) so
        # neither dict leaks and mean_delivery_wait stays honest.
        live = {m.wire_id for m in self.send_buffer}
        self._send_enqueue_times = {
            w: t for w, t in self._send_enqueue_times.items() if w in live
        }
        live = {m.wire_id for m in self.receive_buffer}
        self._receive_times = {
            w: t for w, t in self._receive_times.items() if w in live
        }

        effects.append(
            RollbackPerformed(self.pid, stop, self.current, max(undone, 0), requeued)
        )
        return effects

    def _restore_and_replay(self, effects: List[Effect]) -> Tuple[int, int]:
        """Shared core of Restart and Rollback.

        Restores the latest non-orphan checkpoint, deterministically replays
        logged messages while the resulting state stays non-orphan, then
        pops the remainder of the log: orphans are discarded, non-orphans
        handed back to the receive buffer to be delivered (and re-logged)
        again in the new incarnation.

        Returns ``(replayed_count, requeued_count)`` and extends ``effects``
        with the replay deliveries.
        """
        checkpoints = self.storage.checkpoints
        idx = len(checkpoints) - 1
        while idx >= 0 and self._checkpoint_is_orphan(checkpoints[idx]):
            idx -= 1
        if idx < 0:
            raise RuntimeError(
                f"P{self.pid}: no non-orphan checkpoint found; the initial "
                "checkpoint has an empty vector and can never be orphaned"
            )
        # A defensive copy: execution resumes *in* this state and mutates
        # it freely; the stored recovery point must stay pristine.
        checkpoint = self.storage.restore_checkpoint(idx)
        self.storage.discard_checkpoints_after(idx)

        self.app_state = checkpoint.app_state
        self.current = checkpoint.entry
        self.tdv = checkpoint.tdv
        self._invalidate_scan_caches()
        self.received_ids = set(checkpoint.received_ids)
        self._highest_inc = max(self._highest_inc, checkpoint.entry.inc)

        # Replay "till condition (I) is not satisfied": the first logged
        # message whose dependencies are invalidated stops the replay —
        # everything after it is orphan by program order.
        replayed = 0
        for record in self.storage.logged_after(checkpoint.entry.sii):
            if self._is_orphan_message(record.message):
                break
            effects.extend(self._deliver(record.message, replay_record=record))
            replayed += 1

        popped = self.storage.pop_logged_after(self.current.sii)
        requeued = 0
        for record in popped:
            msg = record.message
            if self._is_orphan_message(msg):
                self.stats.orphans_discarded += 1
                effects.append(MessageDiscarded(msg, reason="orphan-in-log"))
            else:
                # "These messages will be delivered again."
                self.received_ids.add(msg.msg_id)
                self.receive_buffer.append(msg)
                self.stats.messages_requeued += 1
                requeued += 1
        # Messages still sitting in the receive buffer were received but not
        # delivered; keep their ids deduplicated.
        self.received_ids |= {m.msg_id for m in self.receive_buffer}
        # The restored checkpoint's vector may predate stability information
        # we already hold (e.g. a synchronously logged announcement): apply
        # Theorem 2 to the reconstructed vector too.
        self._nullify_stable_tdv_entries()
        return replayed, requeued

    def _checkpoint_is_orphan(self, checkpoint: Checkpoint) -> bool:
        """Condition (I) of Rollback, against all known incarnation ends."""
        return any(
            self.iet.invalidates(pid, entry) for pid, entry in checkpoint.tdv.items()
        )

    # ------------------------------------------------------------------
    # Deliver_message and the deliver loop
    # ------------------------------------------------------------------

    def _deliver_loop(self) -> List[Effect]:
        """Deliver buffered messages while any is deliverable.

        One forward pass per round: each message is checked against the
        *current* state, so a delivery can unlock later messages within
        the same pass.  A new round runs only when the previous pass
        delivered something (every delivery mutates ``tdv``/``log``, which
        is the only state that can turn an earlier-buffered held message
        deliverable) — O(rounds x buffer) instead of the old
        restart-from-zero scan's O(buffer^2) per call.
        """
        effects: List[Effect] = []
        while self.receive_buffer:
            delivered_any = False
            i = 0
            while i < len(self.receive_buffer):
                msg = self.receive_buffer[i]
                if self._deliverable(msg):
                    del self.receive_buffer[i]
                    effects += self._deliver(msg)
                    delivered_any = True
                else:
                    i += 1
            if not delivered_any:
                break
        return effects

    def _deliverable(self, msg: AppMessage) -> bool:
        """Check_deliverability(m).

        Delivering m must not make this process depend on two incarnations
        of the same process without knowing that the smaller one is stable
        (the Section 3 special case: no local entry means no delay).
        """
        m_tdv = msg.tdv
        tdv = self.tdv
        if isinstance(m_tdv, DependencyVector) and isinstance(tdv, DependencyVector):
            log = self.log
            for pid, theirs in m_tdv.iter_packed():
                mine = tdv.get_packed(pid)
                if mine < 0 or (mine >> _PACK_SHIFT) == (theirs >> _PACK_SHIFT):
                    continue
                smaller = mine if mine < theirs else theirs
                if not log.covers_packed(pid, smaller):
                    return False
            return True
        for pid, m_entry in m_tdv.iter_items():
            mine = tdv.get(pid)
            if mine is None or mine.inc == m_entry.inc:
                continue
            smaller = min(mine, m_entry)
            if not self.log.covers(pid, smaller):
                return False
        return True

    def _deliver(
        self, msg: AppMessage, replay_record: Optional[LoggedMessage] = None
    ) -> List[Effect]:
        """Deliver_message(m): merge dependencies, start a new interval, run
        the deterministic application handler, queue its sends and outputs."""
        replay = replay_record is not None
        self.tdv.merge(msg.tdv)
        # Theorem 2 at acquisition time: entries the log table already
        # covers are redundant the moment they are merged.
        self._nullify_stable_tdv_entries()
        if replay:
            self.current = Entry(replay_record.inc, replay_record.position)
        else:
            self.current = self.current.next_interval()
        self.tdv.set(self.pid, self.current)
        self.received_ids.add(msg.msg_id)

        ctx = AppContext(self.pid, self.n, self.current.inc, self.current.sii, self.seed)
        self.app_state = self.behavior.on_message(self.app_state, msg.payload, ctx)

        effects: List[Effect] = [MessageDelivered(msg, self.current, replay=replay)]
        self.stats.deliveries += 1
        if replay:
            self.stats.replayed_deliveries += 1
        else:
            self.volatile.append(
                LoggedMessage(self.current.sii, self.current.inc, msg)
            )
            arrival = self._receive_times.pop(msg.wire_id, None)
            if arrival is not None:
                self.stats.delivery_wait_total += self.now_fn() - arrival
            # Hook for protocol variants (pessimistic logging syncs here).
            effects += self._post_delivery_effects()

        for seq, (dst, payload, k_limit) in enumerate(ctx.sends_with_limits):
            self._enqueue_send(dst, payload, seq, replayed=replay,
                               k_limit=k_limit)
        for seq, payload in enumerate(ctx.outputs):
            effects += self._enqueue_output(payload, seq)

        effects += self._check_send_buffer()
        effects += self._update_output_buffer()
        return effects

    # ------------------------------------------------------------------
    # Send_message and Check_send_buffer
    # ------------------------------------------------------------------

    def _enqueue_send(
        self,
        dst: ProcessId,
        payload: Any,
        seq: int,
        replayed: bool = False,
        k_limit: Optional[int] = None,
    ) -> None:
        """Send_message(data): "put (data, tdv) in Send_buffer".

        ``k_limit`` optionally overrides the system-wide K for this message
        (Section 4.2); ``k_limit=0`` makes it as safe as an output.  When
        the application gives no explicit bound and a ``k_policy`` is
        installed (the adaptive-K controller), the policy's current
        recommendation is stamped onto the message at enqueue time.
        """
        if k_limit is None and self.k_policy is not None:
            k_limit = self.k_policy()
        msg_id = MessageId(self.pid, self.current.inc, self.current.sii, seq)
        msg = AppMessage(
            msg_id=msg_id,
            src=self.pid,
            dst=dst,
            payload=payload,
            tdv=self._piggyback_vector(),
            send_interval=self.current,
            replayed=replayed,
            k_limit=k_limit,
        )
        self.send_buffer.append(msg)
        self._sb_dirty = True
        self._send_enqueue_times[msg.wire_id] = self.now_fn()
        self.stats.messages_enqueued += 1

    def _check_send_buffer(self) -> List[Effect]:
        """Check_send_buffer: nullify stable entries, release every message
        whose dependency vector has at most K non-NULL entries.

        Releasability depends only on the log table and the buffered
        vectors (which nothing else mutates), so when neither has changed
        since the last pass the whole rescan is skipped.
        """
        if not self.send_buffer:
            return []
        if not self._sb_dirty and self._sb_log_version == self.log.version:
            return []
        effects: List[Effect] = []
        log = self.log
        for msg in self.send_buffer:
            tdv = msg.tdv
            if isinstance(tdv, DependencyVector):
                stable = [pid for pid, packed in tdv.iter_packed()
                          if log.covers_packed(pid, packed)]
                for pid in stable:
                    tdv.nullify(pid)
            else:
                for pid, entry in list(tdv.iter_items()):
                    if log.covers(pid, entry):
                        tdv.nullify(pid)
        still_held: List[AppMessage] = []
        now = self.now_fn()
        for msg in self.send_buffer:
            limit = self.k if msg.k_limit is None else msg.k_limit
            if msg.tdv.non_null_count() <= limit:
                enqueued = self._send_enqueue_times.pop(msg.wire_id, now)
                hold = now - enqueued
                self.stats.send_hold_time_total += hold
                if hold > self.stats.send_hold_time_max:
                    self.stats.send_hold_time_max = hold
                self.stats.messages_released += 1
                if self.retransmit_window > 0:
                    copies = self._sent_log.setdefault(msg.dst, [])
                    copies.append(msg)
                    del copies[: -self.retransmit_window]
                effects.append(ReleaseMessage(msg))
                if self.retransmit_timeout > 0:
                    self._unacked[msg.msg_id] = _PendingSend(
                        msg, self.retransmit_timeout * self.retransmit_backoff
                    )
                    effects.append(
                        ScheduleRetransmit(msg.msg_id, self.retransmit_timeout)
                    )
            else:
                still_held.append(msg)
        self.send_buffer = still_held
        self._sb_dirty = False
        self._sb_log_version = self.log.version
        return effects

    # ------------------------------------------------------------------
    # Output commit
    # ------------------------------------------------------------------

    def _enqueue_output(self, payload: Any, seq: int) -> List[Effect]:
        """Queue an output; it is a 0-optimistic message (Section 4.2).

        With output-driven logging (Section 2's alternative to waiting for
        periodic notifications), enqueueing also asks every process we
        depend on to force its logging progress now.
        """
        output_id = OutputId(self.pid, self.current.inc, self.current.sii, seq)
        if self.storage.output_committed(output_id):
            return []  # deterministic replay of an already-committed output
        if self.output_buffer.contains(output_id):
            return []  # rollback replay of an output still pending in-buffer
        record = OutputRecord(output_id, self.pid, payload, self.current)
        # During restart replay, re-enqueued outputs are backdated to the
        # crash instant (the closest knowable lower bound on their original
        # enqueue time) so wait accounting spans the restart boundary.
        now = self.now_fn() if self._replay_backdate is None \
            else self._replay_backdate
        self.output_buffer.add(record, self.tdv, now=now)
        self.stats.outputs_enqueued += 1
        if self.output_driven_logging:
            targets = [pid for pid in self.tdv.processes() if pid != self.pid]
            if targets:
                return [RequestLogging(targets)]
        return []

    def on_logging_request(self, request: "LoggingRequest") -> List[Effect]:
        """Serve an output-driven logging request: flush immediately and
        reply with a targeted logging progress notification."""
        self._require_running()
        effects = self.flush()
        effects.append(
            SendNotification(request.origin, self.make_log_notification())
        )
        return effects

    def _update_output_buffer(self) -> List[Effect]:
        effects: List[Effect] = []
        now = self.now_fn()
        for pending in self.output_buffer.update(self.log):
            self.storage.record_committed_output(pending.record.output_id)
            self.stats.outputs_committed += 1
            wait = now - pending.enqueued_at
            self.stats.output_wait_total += wait
            effects.append(CommitOutput(pending.record, wait))
        return effects

    # ------------------------------------------------------------------
    # Variant hooks (overridden by the baseline protocols)
    # ------------------------------------------------------------------

    def _new_vector(self) -> DependencyVector:
        """Factory for the dependency-vector type this protocol tracks."""
        return DependencyVector(self.n)

    def _state_orphaned_by(self, ann: FailureAnnouncement) -> bool:
        """Receive_failure_ann's rollback test:
        ``tdv[j].inc <= t  and  tdv[j].sii > x'``."""
        mine = self.tdv.get(ann.origin)
        return mine is not None and mine.inc <= ann.end.inc and mine.sii > ann.end.sii

    def _post_delivery_effects(self) -> List[Effect]:
        """Hook invoked right after a (non-replay) delivery is buffered.

        The K-optimistic protocol does nothing here; pessimistic logging
        overrides this to synchronously log the delivery before any message
        sent from the new interval can leave the process.
        """
        return []

    def _piggyback_vector(self) -> DependencyVector:
        """The dependency vector snapshot attached to an outgoing message."""
        return self.tdv.copy()

    # ------------------------------------------------------------------
    # Orphan detection
    # ------------------------------------------------------------------

    def _is_orphan_message(self, msg: AppMessage) -> bool:
        """Check_orphan for one message: any piggybacked dependency that an
        incarnation-end entry invalidates makes the message an orphan.

        Note stability is no defence: a failed process's announcement end
        can sit *below* indices it had earlier gossiped as stable (replay
        stops at the first orphaned logged message), so a log-covered
        entry can still name a lost interval.
        """
        iet = self.iet
        if iet.version == 0:
            return False  # empty table invalidates nothing
        tdv = msg.tdv
        if isinstance(tdv, DependencyVector):
            return any(iet.invalidates_packed(pid, packed)
                       for pid, packed in tdv.iter_packed())
        return any(iet.invalidates(pid, e) for pid, e in tdv.iter_items())

    def _scrub_orphans(self) -> List[Effect]:
        """Check_orphan(Send_buffer) and Check_orphan(Receive_buffer), plus
        the analogous scrub of the output buffer and the unacked map."""
        effects: List[Effect] = []
        for buffer_name, wait_times in (
            ("send_buffer", self._send_enqueue_times),
            ("receive_buffer", self._receive_times),
        ):
            buffer: List[AppMessage] = getattr(self, buffer_name)
            kept: List[AppMessage] = []
            for msg in buffer:
                if self._is_orphan_message(msg):
                    self.stats.orphans_discarded += 1
                    wait_times.pop(msg.wire_id, None)
                    effects.append(
                        MessageDiscarded(msg, reason=f"orphan-in-{buffer_name}")
                    )
                else:
                    kept.append(msg)
            setattr(self, buffer_name, kept)
        for msg_id in [mid for mid, pending in self._unacked.items()
                       if self._is_orphan_message(pending.msg)]:
            del self._unacked[msg_id]  # retransmitting an orphan is pointless
        for pending in self.output_buffer.discard_orphans(self.iet):
            self.stats.outputs_discarded += 1
            effects.append(OutputDiscarded(pending.record))
        return effects

    # ------------------------------------------------------------------
    # Theorem 2 nullification
    # ------------------------------------------------------------------

    def _nullify_stable_tdv_entries(self) -> None:
        """Receive_log's inner loop: drop every dependency entry whose
        interval is now known stable.

        The outcome is a function of (log, tdv) alone, so when both carry
        the versions recorded after the previous pass, nothing can be
        newly covered and the scan is skipped.
        """
        key = (self.log.version, self.tdv.version)
        if key == self._nul_versions:
            return
        tdv = self.tdv
        log = self.log
        if isinstance(tdv, DependencyVector):
            own = self.pid  # own entry is managed by Checkpoint/flush
            stable = [pid for pid, packed in tdv.iter_packed()
                      if pid != own and log.covers_packed(pid, packed)]
            for pid in stable:
                tdv.nullify(pid)
        else:
            for pid, entry in list(tdv.iter_items()):
                if pid == self.pid:
                    continue  # own entry is managed by Checkpoint/flush
                if log.covers(pid, entry):
                    tdv.nullify(pid)
        self._nul_versions = (self.log.version, self.tdv.version)

    # ------------------------------------------------------------------
    # Read-only introspection (for the invariant probe layer and tests)
    # ------------------------------------------------------------------
    #
    # These accessors expose protocol state without going through the
    # overridable protocol routines, so external checkers (repro.check)
    # can evaluate invariants even against deliberately broken variants
    # that override e.g. ``_is_orphan_message``.

    def tdv_entries(self) -> List[Tuple[ProcessId, Entry]]:
        """The non-NULL entries of the current dependency vector."""
        return list(self.tdv.items())

    def iet_entries(self) -> List[Tuple[ProcessId, Entry]]:
        """Every (process, incarnation-end) pair this process knows of."""
        return list(self.iet.all_pairs())

    def iet_invalidates(self, pid: ProcessId, entry: Entry) -> bool:
        """Whether this process's incarnation-end table already proves a
        dependency on ``entry`` of ``pid`` orphaned (Check_orphan's test,
        evaluated on the raw table)."""
        return self.iet.invalidates(pid, entry)

    def vector_known_orphan(self, tdv: DependencyVector) -> bool:
        """Whether the incarnation-end table invalidates any entry of
        ``tdv`` — i.e. whether a message carrying it is a *known* orphan."""
        return any(self.iet.invalidates(pid, e) for pid, e in tdv.items())

    def log_covers(self, pid: ProcessId, entry: Entry) -> bool:
        """Whether this process's log table records ``entry`` as stable."""
        return self.log.covers(pid, entry)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _invalidate_scan_caches(self) -> None:
        """Recovery replaces the vector and/or tables wholesale; new
        objects restart their version counters, so drop the scan-skip
        state rather than risk a stale match."""
        self._sb_dirty = True
        self._sb_log_version = -1
        self._nul_versions = None

    def _require_running(self) -> None:
        if not self._initialized:
            raise RuntimeError(f"P{self.pid} used before initialize()")
        if self.failed:
            raise RuntimeError(f"P{self.pid} is crashed; restart() first")

    @property
    def unacked_count(self) -> int:
        """Released messages still awaiting a transport ack (in flight)."""
        return len(self._unacked)

    @property
    def stable_interval(self) -> Entry:
        """Highest interval of the current state reconstructible from disk
        (for introspection in tests and experiments)."""
        position = max(
            self.storage.latest_checkpoint_entry().sii,
            self.storage.highest_logged_position(),
        )
        return Entry(self.current.inc, min(position, self.current.sii))

    def __repr__(self) -> str:
        return (
            f"<P{self.pid} K={self.k} current={self.current} tdv={self.tdv!r} "
            f"rbuf={len(self.receive_buffer)} sbuf={len(self.send_buffer)}>"
        )
