"""The Output_buffer: output commit as 0-optimistic messaging.

Section 4.2: "If a process needs to commit output to external world during
its execution, it maintains an Output_buffer like the Send_buffer.  This
buffer is also updated whenever the Send_buffer is updated.  An output is
released when all of its dependency entries become NULL" — i.e. an output
is a message with K = 0.

Outputs sent from intervals that later turn out to be orphans must never be
committed, so the buffer is also scrubbed against the incarnation end table
whenever a failure announcement arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.depvec import DependencyVector
from repro.core.tables import IncarnationEndTable, LoggingProgressTable
from repro.net.message import OutputRecord


@dataclass
class PendingOutput:
    """An output waiting for all of its dependencies to become stable."""

    record: OutputRecord
    tdv: DependencyVector
    enqueued_at: float = 0.0


class OutputBuffer:
    """Holds outputs until every dependency entry is NULL (0-optimism).

    :meth:`update` runs after every delivery/flush/notification, but only
    new stability knowledge (the log table's version) or newly added
    outputs can change its answer, so unchanged calls return immediately.
    """

    def __init__(self):
        self._pending: List[PendingOutput] = []
        self._dirty = False
        self._log_version = -1

    def add(self, record: OutputRecord, tdv: DependencyVector, now: float = 0.0) -> None:
        self._pending.append(PendingOutput(record, tdv.copy(), now))
        self._dirty = True

    def contains(self, output_id: object) -> bool:
        """True when an output with this id is already waiting.

        Rollback replay re-executes the surviving prefix of the current
        incarnation; an output enqueued there may still be sitting in this
        buffer from its original execution (rollback, unlike crash, keeps
        the volatile buffers).  Committing both copies would violate
        exactly-once output, so the enqueue path must dedup against
        pending entries, not just against already-committed ids.
        """
        return any(p.record.output_id == output_id for p in self._pending)

    def update(self, log: LoggingProgressTable) -> List[PendingOutput]:
        """Nullify entries known stable; return the outputs that became
        fully NULL and are therefore committable (removed from the buffer)."""
        if not self._pending:
            return []
        if not self._dirty and self._log_version == log.version:
            return []
        for pending in self._pending:
            tdv = pending.tdv
            if isinstance(tdv, DependencyVector):
                stable = [pid for pid, packed in tdv.iter_packed()
                          if log.covers_packed(pid, packed)]
                for pid in stable:
                    tdv.nullify(pid)
            else:
                # Multi-incarnation vectors (fully-async baseline) need the
                # per-entry form: nullify only the covered incarnation.
                for pid, entry in list(tdv.iter_items()):
                    if log.covers(pid, entry):
                        tdv.nullify_entry(pid, entry)
        ready = [p for p in self._pending if p.tdv.non_null_count() == 0]
        if ready:
            self._pending = [p for p in self._pending if p.tdv.non_null_count() > 0]
        self._dirty = False
        self._log_version = log.version
        return ready

    def discard_orphans(self, iet: IncarnationEndTable) -> List[PendingOutput]:
        """Drop outputs that depend on rolled-back intervals; return them."""
        if iet.version == 0 or not self._pending:
            return []
        orphans = []
        kept = []
        for pending in self._pending:
            tdv = pending.tdv
            if isinstance(tdv, DependencyVector):
                orphaned = any(iet.invalidates_packed(pid, packed)
                               for pid, packed in tdv.iter_packed())
            else:
                orphaned = any(iet.invalidates(pid, e) for pid, e in tdv.items())
            if orphaned:
                orphans.append(pending)
            else:
                kept.append(pending)
        self._pending = kept
        return orphans

    def discard_all(self) -> None:
        """Crash: the volatile output buffer is lost."""
        self._pending.clear()

    @property
    def pending(self) -> List[PendingOutput]:
        return list(self._pending)

    def __len__(self) -> int:
        return len(self._pending)
