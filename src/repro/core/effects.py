"""Effects emitted by the sans-IO protocol core.

Protocol handlers return a list of effects instead of performing IO, so the
Figures 2-3 logic is testable in isolation.  The runtime interprets the
actionable effects (transmit, broadcast, commit); the informational ones
feed tracing, metrics, and the ground-truth oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.entry import Entry
from repro.net.message import AppMessage, FailureAnnouncement, LogProgressNotification, OutputRecord


class Effect:
    """Marker base class for everything a protocol handler can request."""


# -- actionable ---------------------------------------------------------------


@dataclass
class ReleaseMessage(Effect):
    """Hand a message to the network (it left the Send_buffer)."""

    message: AppMessage


@dataclass
class BroadcastAnnouncement(Effect):
    """Broadcast a failure announcement to every other process."""

    announcement: FailureAnnouncement


@dataclass
class CommitOutput(Effect):
    """Release an output to the outside world (all its deps are stable).

    ``wait`` is the buffer residence time (enqueue to commit, in virtual
    units) — the raw material of output-commit latency accounting."""

    record: OutputRecord
    wait: float = 0.0


@dataclass
class RequestLogging(Effect):
    """Output-driven logging (Section 2): ask ``targets`` to flush now so a
    pending output's dependencies become stable sooner."""

    targets: list


@dataclass
class SendNotification(Effect):
    """Send a logging progress notification to one specific process
    (the reply to a :class:`RequestLogging`)."""

    dst: int
    notification: LogProgressNotification


@dataclass
class ScheduleRetransmit(Effect):
    """Ask the runtime to fire :meth:`on_retransmit_timer` for ``msg_id``
    after ``delay`` time units.

    The protocol core is sans-IO, so it cannot own timers; it requests
    them as effects and the harness calls back.  The handler is
    idempotent — if the message was acked (or orphaned, or the process
    crashed) by the time the timer fires, nothing happens.
    """

    msg_id: Any
    delay: float


# -- informational ----------------------------------------------------------


@dataclass
class StableProgress(Effect):
    """Every interval of this process up to ``through`` is now on stable
    storage (a flush, checkpoint, or forced log during recovery).

    Emitted *in stream order*, before any release that the new stability
    enables, so observers (oracle, metrics) never lag the protocol.
    """

    pid: int
    through: Entry


@dataclass
class MessageDelivered(Effect):
    """A message was delivered to the application, starting ``interval``.

    ``replay`` marks deterministic re-execution of an existing stable
    interval (after a failure), as opposed to a brand-new interval.
    """

    message: AppMessage
    interval: Entry
    replay: bool = False


@dataclass
class MessageDiscarded(Effect):
    """A message was discarded as an orphan (Check_orphan)."""

    message: AppMessage
    reason: str


@dataclass
class OutputDiscarded(Effect):
    """A buffered output was discarded because its interval is orphaned."""

    record: OutputRecord


@dataclass
class DuplicateDropped(Effect):
    """A duplicate transmission (replay re-send) was ignored on receipt."""

    message: AppMessage


@dataclass
class RollbackPerformed(Effect):
    """A non-failed process rolled back orphaned intervals (Rollback)."""

    pid: int
    restored_to: Entry
    new_current: Entry
    intervals_undone: int
    requeued: int


@dataclass
class RestartPerformed(Effect):
    """A failed process completed Restart."""

    pid: int
    announcement: FailureAnnouncement
    replayed: int
    new_current: Entry
