"""The per-process adaptive-K controller.

Section 4.2 observes that "different values of K can in fact be applied
to different messages in the same system" — commit dependency tracking
(Theorem 2) keeps every receiver correct whatever bound each message
carries.  That makes K a *runtime* control variable: this controller
retunes it per process through the per-message K path, trading the two
costs the paper quantifies against each other:

- **latency**: a larger K releases messages with more non-stable
  dependencies, so chains progress (and outputs commit) sooner;
- **revocation risk**: every released-but-unstable dependency is an
  interval whose loss revokes the message (Theorem 4 bounds the
  exposure by K).

The rule is AIMD over K in [k_min, k_max]: multiplicative decrease the
moment revocation evidence appears (rollbacks, restarts, orphan or
output discards since the last tick), additive increase while healthy
and under latency pressure.  Decisions are a pure function of
``(seed, observation stream)`` — the only randomness is a named-seeded
RNG used for optional exploration probes, and there are no wall-clock
reads — so simulation traces stay deterministically replayable and
W-sharded runs observe bit-identical K sequences (see the property
tests in ``tests/properties/test_controller_properties.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.control.slo import LatencyWindow


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning knobs for one :class:`AdaptiveKController`."""

    #: Inclusive K bounds.  ``k_min=0`` can degrade to pessimistic-style
    #: release under sustained revocation pressure.
    k_min: int = 0
    k_max: int = 4
    #: Output-commit latency target; 0 disables the SLO test, making the
    #: controller always hungry (classic AIMD: probe up while healthy).
    slo_target: float = 0.0
    #: Which percentile of the latency window the SLO test evaluates.
    slo_percentile: float = 99.0
    #: Sliding-window size for latency samples.
    window: int = 256
    #: Additive increase per healthy tick under latency pressure.
    increase_step: int = 1
    #: Multiplicative decrease applied on revocation evidence.
    decrease_factor: float = 0.5
    #: Probability of probing one step up on a healthy tick that is
    #: *not* under latency pressure (0 disables exploration).
    explore_probability: float = 0.0

    def validate(self) -> None:
        if self.k_min < 0:
            raise ValueError(f"k_min must be >= 0, got {self.k_min}")
        if self.k_max < self.k_min:
            raise ValueError(
                f"k_max ({self.k_max}) must be >= k_min ({self.k_min})"
            )
        if not 0.0 < self.slo_percentile <= 100.0:
            raise ValueError(
                f"slo_percentile must be in (0, 100], got {self.slo_percentile}"
            )
        if self.slo_target < 0:
            raise ValueError(f"slo_target must be >= 0, got {self.slo_target}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.increase_step < 1:
            raise ValueError(
                f"increase_step must be >= 1, got {self.increase_step}"
            )
        if not 0.0 <= self.decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in [0, 1), got {self.decrease_factor}"
            )
        if not 0.0 <= self.explore_probability <= 1.0:
            raise ValueError(
                "explore_probability must be in [0, 1], "
                f"got {self.explore_probability}"
            )


@dataclass(frozen=True)
class Observation:
    """One control-tick snapshot of a process's recovery-layer counters.

    ``revocations`` is *cumulative* (the controller diffs successive
    observations): rollbacks + restarts + orphan discards + output
    discards, i.e. every event that proves optimism recently cost us
    work.  ``commit_waits`` are the output-commit latency samples
    collected since the previous tick.
    """

    time: float
    revocations: int
    commit_waits: Tuple[float, ...] = ()


@dataclass(frozen=True)
class KDecision:
    """One K change (the decisions trace records changes, not holds)."""

    time: float
    k: int
    reason: str


class AdaptiveKController:
    """Deterministic AIMD over the degree of optimism for one process."""

    def __init__(self, pid: int, config: ControllerConfig, seed: int = 0):
        config.validate()
        self.pid = pid
        self.config = config
        # Start fully optimistic: under failure-free traffic that is the
        # latency-optimal point, and the first revocation evidence pulls
        # K down multiplicatively.
        self.k = config.k_max
        self.window = LatencyWindow(config.window)
        #: (time, k) after every observation — the replayability witness.
        self.history: List[Tuple[float, int]] = []
        #: K *changes* only, each with its reason.
        self.decisions: List[KDecision] = [KDecision(0.0, self.k, "init")]
        self._last_revocations = 0
        # A named-seeded stream: decisions depend on (seed, pid, stream)
        # alone — never on wall clock or interleaving with other streams.
        self._rng = random.Random(f"adaptive-k/{seed}/{pid}")

    # -- the per-message K policy ------------------------------------------

    def recommend(self) -> int:
        """Current K bound; installed as the protocol's ``k_policy``."""
        return self.k

    # -- the control loop -----------------------------------------------------

    def observe(self, obs: Observation) -> int:
        """Fold one observation into the loop; returns the (new) K."""
        self.window.extend(obs.commit_waits)
        revoked = obs.revocations - self._last_revocations
        self._last_revocations = obs.revocations
        cfg = self.config
        if revoked > 0:
            # Multiplicative decrease: optimism just cost us work.
            new_k = max(cfg.k_min, int(self.k * cfg.decrease_factor))
            reason = f"revocation x{revoked}"
        elif self._latency_pressure():
            new_k = min(cfg.k_max, self.k + cfg.increase_step)
            reason = "latency-pressure"
        elif (cfg.explore_probability > 0
              and self._rng.random() < cfg.explore_probability):
            new_k = min(cfg.k_max, self.k + cfg.increase_step)
            reason = "probe"
        else:
            new_k = self.k
            reason = "hold"
        if new_k != self.k:
            self.decisions.append(KDecision(obs.time, new_k, reason))
        self.k = new_k
        self.history.append((obs.time, new_k))
        return new_k

    def _latency_pressure(self) -> bool:
        """True when the latency evidence argues for more optimism.

        With no target configured the controller is always hungry; with a
        target, pressure means the watched percentile misses it — or the
        window is empty, which under open-loop traffic means outputs are
        not committing at all (the worst possible latency)."""
        if self.config.slo_target <= 0:
            return True
        if self.window.count == 0:
            return True
        watched = self.window.percentile(self.config.slo_percentile)
        return watched > self.config.slo_target

    # -- reporting -------------------------------------------------------------

    def mean_k(self) -> float:
        """Mean K over the recorded history (k_max before any tick)."""
        if not self.history:
            return float(self.k)
        return sum(k for _, k in self.history) / len(self.history)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AdaptiveKController P{self.pid} k={self.k} "
            f"[{self.config.k_min},{self.config.k_max}] "
            f"decisions={len(self.decisions)}>"
        )
