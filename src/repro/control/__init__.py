"""Runtime K control: adaptive degree-of-optimism under live traffic.

The paper poses K as a static, system-wide parameter; Theorem 2's commit
dependency tracking is what makes *per-message*, runtime-chosen K legal
(Section 4.2).  This package closes the loop the ROADMAP asks for: a
per-process controller observes output-commit latency and revocation
risk and retunes K on the fly through the per-message K path, with a
deterministic (seeded, wall-clock-free) AIMD rule so simulated traces
stay bit-identically replayable.  See docs/CONTROL.md.
"""

from repro.control.controller import (
    AdaptiveKController,
    ControllerConfig,
    KDecision,
    Observation,
)
from repro.control.slo import LatencyWindow

__all__ = [
    "AdaptiveKController",
    "ControllerConfig",
    "KDecision",
    "LatencyWindow",
    "Observation",
]
