"""SLO accounting: bounded latency windows with degenerate-window-safe math.

Output-commit latency is the quantity the paper's K trade-off is *about*:
higher K releases messages earlier (shorter chains to commit) at the cost
of more revocation exposure.  The controller and the run-level metrics
both consume samples through a :class:`LatencyWindow`, whose mean and
percentiles are total functions — empty and single-sample windows are
well-defined, not errors (see :func:`repro.runtime.metrics.sample_percentile`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.runtime.metrics import sample_mean, sample_percentile


class LatencyWindow:
    """A bounded sliding window of latency samples."""

    def __init__(self, maxlen: int = 256):
        if maxlen < 1:
            raise ValueError(f"window maxlen must be >= 1, got {maxlen}")
        self._samples: Deque[float] = deque(maxlen=maxlen)

    def add(self, sample: float) -> None:
        self._samples.append(sample)

    def extend(self, samples) -> None:
        self._samples.extend(samples)

    def clear(self) -> None:
        self._samples.clear()

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        """Mean of the window; 0.0 when empty."""
        return sample_mean(self._samples)

    def percentile(self, q: float) -> float:
        """q-th percentile of the window; 0.0 when empty, the sample
        itself when the window holds exactly one."""
        return sample_percentile(self._samples, q)

    def attainment(self, target: float) -> float:
        """Fraction of samples at or under ``target``; 1.0 when the
        window is empty or the target is unset (<= 0)."""
        if target <= 0 or not self._samples:
            return 1.0
        return sum(1 for s in self._samples if s <= target) / len(self._samples)

    def samples(self) -> List[float]:
        return list(self._samples)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self._samples)
