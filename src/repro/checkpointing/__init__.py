"""Checkpoint-only rollback recovery with lazy coordination (Section 5's
counterpart family to K-optimistic logging)."""

from repro.checkpointing.coordinator import RecoveryCoordinator
from repro.checkpointing.harness import (
    CheckpointConfig,
    CheckpointRunMetrics,
    CheckpointSimulation,
)
from repro.checkpointing.protocol import (
    UNCOORDINATED,
    CkptMessage,
    EpochCheckpoint,
    LazyCheckpointProcess,
)

__all__ = ["CheckpointConfig", "CheckpointRunMetrics", "CheckpointSimulation",
           "CkptMessage", "EpochCheckpoint", "LazyCheckpointProcess",
           "RecoveryCoordinator", "UNCOORDINATED"]
