"""Checkpoint-only rollback recovery with lazy coordination (Wang & Fuchs).

Section 5 of the paper: "In the area of checkpoint-based rollback-recovery,
the concept of lazy checkpoint coordination [13] has been proposed to
provide a fine-grain tradeoff in-between the two extremes of uncoordinated
checkpointing and coordinated checkpointing.  An integer parameter Z,
called the laziness, was introduced to control the degree of optimism by
controlling the frequency of coordination.  The concept of K-optimistic
logging can be considered as the counterpart of lazy checkpoint
coordination for the area of log-based rollback-recovery."

To make that counterpart claim measurable, this subpackage implements the
checkpoint-only family:

- execution is divided into **epochs**: checkpoint k closes epoch k and
  opens epoch k+1 (the implicit initial checkpoint closes epoch 0);
- every Z-th closed epoch completes a **coordination line**
  (line = closed_epoch // Z); messages piggyback the sender's line, and a
  receiver that is behind takes an **induced checkpoint** before
  delivering — the communication-induced rule that keeps rollback
  cascades from crossing a completed line;
- there is **no message logging**: a failure loses the open epoch, and
  every epoch anywhere that (transitively) depends on a lost epoch must be
  rolled back too.  Small Z stops the cascade at a recent line;
  Z = infinity (uncoordinated) lets it domino — the paper's own framing.

Recovery is computed by
:class:`repro.checkpointing.coordinator.RecoveryCoordinator` from the
*recorded* per-epoch direct dependencies (the classic rollback-dependency
fixpoint), not from the oracle.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.app.behavior import AppBehavior, AppContext

#: Laziness value meaning "never coordinate" (uncoordinated checkpointing).
UNCOORDINATED = 10**9

_wire = itertools.count()


@dataclass
class CkptMessage:
    """An application message in the checkpoint-only system."""

    src: int
    dst: int
    payload: Any
    src_epoch: int
    src_line: int
    round: int
    wire_id: int = field(default_factory=lambda: next(_wire))


@dataclass
class EpochCheckpoint:
    """A saved process state; ``closes`` is the epoch it terminates."""

    closes: int
    line: int
    app_state: Any
    deliveries_at: int
    induced: bool = False


class LazyCheckpointProcess:
    """One process of the checkpoint-only recovery system."""

    def __init__(
        self,
        pid: int,
        n: int,
        z: int,
        behavior: AppBehavior,
        seed: int = 0,
        send_hook: Optional[Callable[[CkptMessage], None]] = None,
    ):
        if z < 1:
            raise ValueError(f"laziness Z must be >= 1, got {z}")
        self.pid = pid
        self.n = n
        self.z = z
        self.behavior = behavior
        self.seed = seed
        self.send_hook = send_hook or (lambda msg: None)

        self.app_state = behavior.initial_state(pid, n)
        #: The open epoch (epoch 0 is closed by the initial checkpoint).
        self.epoch = 1
        self.line = 0
        self.round = 0
        self.deliveries = 0
        self.checkpoints: List[EpochCheckpoint] = [
            EpochCheckpoint(0, 0, copy.deepcopy(self.app_state), 0)
        ]
        #: Direct dependencies recorded per epoch: epoch -> {(src, src_epoch)}.
        self.epoch_deps: Dict[int, Set[Tuple[int, int]]] = {}

        # accounting
        self.local_checkpoints = 0
        self.induced_checkpoints = 0
        self.messages_discarded = 0
        self.work_lost = 0

    # -- checkpointing -----------------------------------------------------

    def take_local_checkpoint(self) -> None:
        """The periodic checkpoint: close the open epoch."""
        self._save(induced=False)
        self.local_checkpoints += 1

    def _save(self, induced: bool, target_line: Optional[int] = None) -> None:
        closed = self.epoch
        if self.z != UNCOORDINATED:
            self.line = max(self.line, closed // self.z)
        if target_line is not None:
            self.line = max(self.line, target_line)
        self.checkpoints.append(EpochCheckpoint(
            closes=closed,
            line=self.line,
            app_state=copy.deepcopy(self.app_state),
            deliveries_at=self.deliveries,
            induced=induced,
        ))
        self.epoch = closed + 1

    # -- the data path ------------------------------------------------------

    def on_receive(self, msg: CkptMessage) -> bool:
        """Deliver a message (returns False if discarded as stale).

        Recovery is a global round: every message sent before the last
        recovery decision is dropped.  This conservatively discards some
        valid in-flight messages along with all orphans — without message
        logging there is no replay to recover them anyway (that is the
        point of the comparison with the logging family).
        """
        if msg.round != self.round:
            self.messages_discarded += 1
            return False
        if msg.src_line > self.line and self.z != UNCOORDINATED:
            # Induced checkpoint: catch up to the sender's line *before*
            # the delivery, so the dependency lands beyond the line.
            self._save(induced=True, target_line=msg.src_line)
            self.induced_checkpoints += 1
        self.deliveries += 1
        if msg.src >= 0:  # the outside world has no rollback-able epochs
            self.epoch_deps.setdefault(self.epoch, set()).add(
                (msg.src, msg.src_epoch)
            )
        ctx = AppContext(self.pid, self.n, 0, self.deliveries, self.seed)
        self.app_state = self.behavior.on_message(self.app_state, msg.payload, ctx)
        for dst, payload, _k in ctx.sends_with_limits:
            self.send_hook(CkptMessage(
                src=self.pid, dst=dst, payload=payload,
                src_epoch=self.epoch, src_line=self.line, round=self.round,
            ))
        return True

    # -- recovery ------------------------------------------------------------

    def restore_before(self, first_invalid_epoch: int) -> int:
        """Roll back so that no epoch >= ``first_invalid_epoch`` survives.

        Restores the newest checkpoint closing an earlier epoch and reopens
        the invalidated epoch number.  Returns the new open epoch.
        """
        keep = max(
            (c for c in self.checkpoints if c.closes < first_invalid_epoch),
            key=lambda c: c.closes,
        )
        self.work_lost += self.deliveries - keep.deliveries_at
        self.app_state = copy.deepcopy(keep.app_state)
        self.deliveries = keep.deliveries_at
        self.line = keep.line
        self.checkpoints = [c for c in self.checkpoints if c.closes <= keep.closes]
        self.epoch = keep.closes + 1
        self.epoch_deps = {
            e: deps for e, deps in self.epoch_deps.items() if e <= keep.closes
        }
        return self.epoch

    def enter_round(self, round_number: int) -> None:
        """Adopt a recovery decision (a new global round begins)."""
        self.round = round_number

    @property
    def total_checkpoints(self) -> int:
        return self.local_checkpoints + self.induced_checkpoints

    def __repr__(self) -> str:
        return (f"<ckpt-P{self.pid} Z={self.z} epoch={self.epoch} "
                f"line={self.line} round={self.round}>")
