"""The recovery-line computation for checkpoint-only recovery.

Given a crash, compute the maximal consistent cut by the classic
rollback-propagation fixpoint over recorded per-epoch direct dependencies:

    the failed process's open epoch is lost;
    while some surviving epoch depends on a lost epoch:
        it (and everything after it on the same process) is lost too;
    everyone restores the newest checkpoint below its lost suffix.

With lazy coordination, induced checkpoints keep dependencies from
reaching back across a completed line, so the cascade halts at the most
recent line; uncoordinated checkpointing (Z = infinity) has no barrier and
can domino — experiment E10 measures exactly this.

A centralized coordinator is the textbook realization for this family
(the paper's reference [13] likewise assumes a recovery-line computation
over collected dependency information).
"""

from __future__ import annotations

from typing import Dict, List

from repro.checkpointing.protocol import LazyCheckpointProcess

_INFINITY = float("inf")


class RecoveryCoordinator:
    """Centralized rollback-dependency fixpoint + cut application."""

    def __init__(self, processes: List[LazyCheckpointProcess]):
        self.processes = processes
        self.recoveries = 0
        self.total_cascade = 0

    def compute_cut(self, failed_pid: int) -> Dict[int, float]:
        """first_invalid[pid]: smallest lost epoch per process (inf = none)."""
        first_invalid: Dict[int, float] = {
            p.pid: _INFINITY for p in self.processes
        }
        # The failed process loses its open epoch.
        first_invalid[failed_pid] = self.processes[failed_pid].epoch

        changed = True
        while changed:
            changed = False
            for process in self.processes:
                bar = first_invalid[process.pid]
                for epoch in sorted(process.epoch_deps):
                    if epoch >= bar:
                        break
                    if any(src_epoch >= first_invalid[src]
                           for src, src_epoch in process.epoch_deps[epoch]):
                        first_invalid[process.pid] = epoch
                        changed = True
                        break
        return first_invalid

    def recover(self, failed_pid: int) -> Dict[int, int]:
        """Handle a crash; returns pid -> reopened epoch after rollback."""
        first_invalid = self.compute_cut(failed_pid)

        reopened: Dict[int, int] = {}
        cascade = 0
        for process in self.processes:
            bar = first_invalid[process.pid]
            if bar == _INFINITY:
                reopened[process.pid] = process.epoch
            else:
                reopened[process.pid] = process.restore_before(int(bar))
                if process.pid != failed_pid:
                    cascade += 1

        self.recoveries += 1
        self.total_cascade += cascade
        for process in self.processes:
            process.enter_round(self.recoveries)
        return reopened
