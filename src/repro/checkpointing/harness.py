"""Simulation harness for the checkpoint-only family.

Deliberately lighter than the logging harness: messages travel through the
same kind of latency model, checkpoints fire on staggered timers, and a
crash triggers the centralized recovery-line computation *atomically* (the
coordination messages of a real implementation are abstracted into the
coordinator's counters — we compare recovery *outcomes*, not recovery
latencies, across this family).

The harness quacks enough like :class:`repro.runtime.harness.SimulationHarness`
(``config.n``, ``rngs``, ``inject_at``) for the standard workload
generators to drive it unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.app.behavior import AppBehavior
from repro.checkpointing.coordinator import RecoveryCoordinator
from repro.checkpointing.protocol import UNCOORDINATED, CkptMessage, LazyCheckpointProcess
from repro.failures.injector import FailureSchedule
from repro.net.channel import UniformLatency
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@dataclass
class CheckpointConfig:
    """Configuration for a checkpoint-only run."""

    n: int = 6
    #: Laziness: coordinate every Z-th checkpoint; UNCOORDINATED disables.
    z: int = 1
    seed: int = 0
    checkpoint_interval: float = 40.0
    msg_latency_low: float = 0.5
    msg_latency_high: float = 1.5

    def validate(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.z < 1:
            raise ValueError("Z must be >= 1")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")


@dataclass
class CheckpointRunMetrics:
    """Aggregated results of one checkpoint-only run."""

    n: int = 0
    z: int = 0
    deliveries: int = 0
    local_checkpoints: int = 0
    induced_checkpoints: int = 0
    work_lost: int = 0
    messages_discarded: int = 0
    crashes: int = 0
    cascade_rollbacks: int = 0

    def as_row(self) -> Dict[str, object]:
        return {
            "Z": "inf" if self.z >= UNCOORDINATED else self.z,
            "ckpts_local": self.local_checkpoints,
            "ckpts_induced": self.induced_checkpoints,
            "delivered": self.deliveries,
            "work_lost": self.work_lost,
            "cascade": self.cascade_rollbacks,
            "discarded": self.messages_discarded,
        }


class CheckpointSimulation:
    """Runs N :class:`LazyCheckpointProcess` instances on the event engine."""

    def __init__(
        self,
        config: CheckpointConfig,
        behavior: AppBehavior,
        failures: Optional[FailureSchedule] = None,
    ):
        config.validate()
        self.config = config
        self.engine = Engine()
        self.rngs = RngRegistry(config.seed)
        self._latency = UniformLatency(config.msg_latency_low,
                                       config.msg_latency_high)
        self.processes: List[LazyCheckpointProcess] = [
            LazyCheckpointProcess(pid, config.n, config.z, behavior,
                                  seed=config.seed, send_hook=self._transmit)
            for pid in range(config.n)
        ]
        self.coordinator = RecoveryCoordinator(self.processes)
        self.crashes = 0
        self._horizon = 0.0
        for event in (failures or FailureSchedule.none()).crashes:
            self.engine.schedule_at(event.time,
                                    lambda pid=event.pid: self._crash(pid))

    # -- transport ------------------------------------------------------------

    def _transmit(self, msg: CkptMessage) -> None:
        rng = self.rngs.stream(f"ckptnet/{msg.src}->{msg.dst}")
        delay = self._latency.delay(rng)
        self.engine.schedule(
            delay, lambda m=msg: self.processes[m.dst].on_receive(m)
        )

    def inject_at(self, time: float, dst: int, payload: Any) -> None:
        """Outside-world message: no rollback-able sender (deps skipped
        because the sender id is negative)."""
        def deliver() -> None:
            process = self.processes[dst]
            process.on_receive(CkptMessage(
                src=-1, dst=dst, payload=payload,
                src_epoch=0, src_line=0, round=process.round,
            ))

        self.engine.schedule_at(time, deliver)

    # -- failure handling ----------------------------------------------------

    def _crash(self, pid: int) -> None:
        self.crashes += 1
        self.coordinator.recover(pid)

    # -- main loop -------------------------------------------------------------

    def run(self, duration: float) -> None:
        self._horizon = duration
        for process in self.processes:
            phase = (process.pid + 1) / (self.config.n + 1)
            self._periodic(self.config.checkpoint_interval, phase,
                           process.take_local_checkpoint)
        self.engine.run(until=duration, max_events=10_000_000)
        self.engine.run(max_events=10_000_000)  # drain in-flight traffic

    def _periodic(self, interval: float, phase: float, action) -> None:
        def fire() -> None:
            action()
            if self.engine.now + interval <= self._horizon:
                self.engine.schedule(interval, fire)

        first = interval * phase
        if first <= self._horizon:
            self.engine.schedule(first, fire)

    # -- results ---------------------------------------------------------------

    def metrics(self) -> CheckpointRunMetrics:
        m = CheckpointRunMetrics(n=self.config.n, z=self.config.z,
                                 crashes=self.crashes,
                                 cascade_rollbacks=self.coordinator.total_cascade)
        for process in self.processes:
            m.deliveries += process.deliveries
            m.local_checkpoints += process.local_checkpoints
            m.induced_checkpoints += process.induced_checkpoints
            m.work_lost += process.work_lost
            m.messages_discarded += process.messages_discarded
        return m
