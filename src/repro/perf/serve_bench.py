"""Serve-mode throughput: what the real backplane sustains end to end.

The standing ``bench`` suite measures the sans-IO core under simulation
(events/sec of pure protocol work).  This module measures the *deployed*
stack instead — OS processes, TCP framing, durable file logs, wall-clock
timers — by driving a crash-free serve run flat out and reporting
committed outputs and deliveries per wall second.

The number is printed, not persisted: serve throughput depends on host
load and core count, so it deliberately lives outside the
schema-versioned BENCH file and its ``--compare`` regression gate.
"""

from __future__ import annotations

from typing import Any, Dict


def run_serve_bench(
    n: int = 4,
    k: int = 2,
    duration: float = 150.0,
    rate: float = 2.0,
    timescale: float = 0.01,
    seed: int = 0,
) -> Dict[str, Any]:
    """One crash-free serve run, summarized as throughput figures."""
    from repro.backplane.coordinator import ServePlan, run_serve

    plan = ServePlan(
        n=n, k=k, seed=seed,
        behavior="hopchain",
        timescale=timescale,
        duration=duration,
        rate=rate,
        crashes=[],
    )
    report = run_serve(plan)
    wall = max(report.wall_seconds, 1e-9)
    return {
        "n": n,
        "k": k,
        "injected": report.injected,
        "committed": len(report.committed),
        "deliveries": report.deliveries,
        "wall_seconds": report.wall_seconds,
        "commits_per_sec": len(report.committed) / wall,
        "deliveries_per_sec": report.deliveries / wall,
        "violations": report.violations,
        "run_dir": report.run_dir,
    }


def format_serve_bench(result: Dict[str, Any]) -> str:
    lines = [
        f"serve throughput (n={result['n']}, k={result['k']}, "
        f"{result['injected']} stimuli, crash-free):",
        f"  committed:   {result['committed']} outputs "
        f"in {result['wall_seconds']:.1f}s wall",
        f"  throughput:  {result['commits_per_sec']:.1f} commits/s, "
        f"{result['deliveries_per_sec']:.1f} deliveries/s",
        "  (not written to the BENCH file: wall-clock throughput is "
        "host-dependent)",
    ]
    return "\n".join(lines)
