"""The fixed bench scenario suite.

Three scenario families cover the cost regimes the paper's argument turns
on:

- **failure-free throughput** at n in {8, 32, 128} — the steady-state
  mechanism cost per message (vector merges, stability scans, gossip);
- **crash/recovery storm** — repeated crashes force rollback, replay and
  announcement traffic through the recovery paths;
- **unreliable-network sweep** — drop/duplicate/reorder faults engage the
  ack/retransmit layer and its timer churn (the engine-heap stress case:
  every ack cancels a pending retransmission timer);
- **durable recovery at K in {0, 2, 8}** — the file-log backend under a
  crash schedule: measures REDO-only restart wall time and bytes fsynced
  per committed message as the degree of optimism varies (K = 0 commits
  like pessimistic logging; higher K defers stability work);
- **adaptive-K under open-loop heavy traffic** — the runtime controller
  (:mod:`repro.control`) against a matched static-K baseline on the same
  open-loop arrival schedule and failure schedule, reporting the
  p99 output-commit latency / revocation trade-off.

Every scenario is deterministic (fixed seed) and accepts a ``scale``
factor that shrinks the simulated duration so CI smoke runs finish in
seconds while the committed baseline uses ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.failures.injector import CrashEvent, FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.openloop import OpenLoopWorkload
from repro.workloads.random_peers import RandomPeersWorkload


@dataclass(frozen=True)
class ScenarioSpec:
    """One deterministic bench scenario."""

    name: str
    description: str
    n: int
    duration: float
    rate: float
    k: Optional[int] = None
    seed: int = 1
    #: (time_fraction_of_duration, pid) pairs; crash times scale with duration.
    crashes: Tuple[Tuple[float, int], ...] = ()
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    retransmit_window: int = 0
    #: ``"random_peers"`` (closed-loop token traffic) or ``"openloop"``
    #: (heavy-tailed, diurnally modulated, bursty arrivals with
    #: end-to-end latency stamps).
    workload: str = "random_peers"
    workload_kwargs: dict = field(default_factory=dict)
    extra_config: dict = field(default_factory=dict)

    def build(self, scale: float = 1.0) -> Tuple[SimulationHarness, float]:
        """Construct a ready-to-run harness; returns ``(harness, duration)``."""
        duration = max(self.duration * scale, 40.0)
        config = SimConfig(
            n=self.n,
            k=self.k,
            seed=self.seed,
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
            retransmit_window=self.retransmit_window,
            **self.extra_config,
        )
        if self.workload == "openloop":
            workload = OpenLoopWorkload(rate=self.rate, **self.workload_kwargs)
        elif self.workload == "random_peers":
            workload = RandomPeersWorkload(rate=self.rate, **self.workload_kwargs)
        else:
            raise ValueError(f"unknown workload {self.workload!r}")
        failures = FailureSchedule.none()
        if self.crashes:
            failures = FailureSchedule(
                [CrashEvent(duration * frac, pid) for frac, pid in self.crashes]
            )
        if config.parallel_workers > 1:
            # Epoch-parallel runner: the workload is installed inside each
            # worker (same named rng streams, so the same injections), and
            # worker fork/startup happens here, outside the timed region.
            from repro.parallel import ParallelHarness

            return ParallelHarness(
                config, workload.behavior(), failures=failures,
                workload=workload, install_until=duration * 0.8,
            ), duration
        harness = SimulationHarness(config, workload.behavior(),
                                    failures=failures)
        workload.install(harness, until=duration * 0.8)
        return harness, duration


SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="ff_n8",
        description="failure-free throughput, 8 processes",
        n=8, duration=400.0, rate=1.0, k=4,
    ),
    ScenarioSpec(
        name="ff_n32",
        description="failure-free throughput, 32 processes",
        n=32, duration=400.0, rate=2.0, k=4,
    ),
    ScenarioSpec(
        name="ff_n128",
        description="failure-free throughput, 128 processes",
        n=128, duration=150.0, rate=2.0, k=4,
    ),
    ScenarioSpec(
        name="ff_n1024",
        description="failure-free throughput, 1024 processes, fanout gossip",
        n=1024, duration=60.0, rate=2.0, k=4,
        # Full-broadcast notifications are O(n^2) per period; at this size
        # stability gossips through 8 random peers per round instead.
        extra_config={"notify_fanout": 8},
    ),
    ScenarioSpec(
        name="ff_n1024_s4",
        description="ff_n1024 on the serial 4-shard engine, post-hoc "
                    "certification settings (baseline for ff_n1024_p4)",
        n=1024, duration=60.0, rate=2.0, k=4,
        extra_config={"notify_fanout": 8, "shards": 4,
                      "oracle_enabled": False, "check_invariants": False,
                      "trace_prefix": "dep.", "dep_trace": True},
    ),
    ScenarioSpec(
        name="ff_n1024_p4",
        description="ff_n1024 on 4 parallel worker processes "
                    "(epoch-barrier runner)",
        n=1024, duration=60.0, rate=2.0, k=4,
        extra_config={"notify_fanout": 8, "parallel_workers": 4,
                      "oracle_enabled": False, "check_invariants": False,
                      "trace_prefix": "dep.", "dep_trace": True},
    ),
    ScenarioSpec(
        name="ff_n4096",
        description="failure-free throughput, 4096 processes (sparse "
                    "tables, own-row notifications), 4 parallel workers",
        n=4096, duration=40.0, rate=2.0, k=4,
        # Past the sparse-table threshold, full-table gossip costs
        # O(n^2 * fanout) dict merges per notify round; own-row
        # notifications (the paper's base dissemination) keep payloads
        # O(1) so the scenario measures protocol cost, not gossip
        # convergence.
        extra_config={"notify_fanout": 8, "gossip_log_tables": False,
                      "parallel_workers": 4,
                      "oracle_enabled": False, "check_invariants": False,
                      "trace_prefix": "dep.", "dep_trace": True},
    ),
    ScenarioSpec(
        name="ff_n10k",
        description="failure-free throughput, 10000 processes (sparse "
                    "tables, own-row notifications), 4 parallel workers",
        n=10_000, duration=40.0, rate=2.0, k=4,
        extra_config={"notify_fanout": 8, "gossip_log_tables": False,
                      "parallel_workers": 4,
                      "oracle_enabled": False, "check_invariants": False,
                      "trace_prefix": "dep.", "dep_trace": True},
    ),
    ScenarioSpec(
        name="crash_storm",
        description="crash/recovery storm, 16 processes, 6 crashes",
        n=16, duration=400.0, rate=1.0, k=2,
        crashes=((0.2, 1), (0.3, 5), (0.45, 9), (0.55, 1), (0.65, 13),
                 (0.75, 3)),
    ),
    ScenarioSpec(
        name="recovery_k0",
        description="file-log backend, 3 crashes, K=0 (pessimistic commit)",
        n=8, duration=400.0, rate=1.0, k=0,
        crashes=((0.3, 2), (0.5, 5), (0.7, 2)),
        extra_config={"storage_backend": "filelog"},
    ),
    ScenarioSpec(
        name="recovery_k2",
        description="file-log backend, 3 crashes, K=2",
        n=8, duration=400.0, rate=1.0, k=2,
        crashes=((0.3, 2), (0.5, 5), (0.7, 2)),
        extra_config={"storage_backend": "filelog"},
    ),
    ScenarioSpec(
        name="recovery_k8",
        description="file-log backend, 3 crashes, K=8 (fully optimistic)",
        n=8, duration=400.0, rate=1.0, k=8,
        crashes=((0.3, 2), (0.5, 5), (0.7, 2)),
        extra_config={"storage_backend": "filelog"},
    ),
    ScenarioSpec(
        name="openloop_static",
        description="open-loop heavy traffic + crash clusters, static K=8",
        n=16, duration=600.0, rate=1.2, k=8, seed=7,
        crashes=((0.35, 3), (0.38, 9), (0.41, 13), (0.44, 5),
                 (0.68, 12), (0.71, 2), (0.74, 7)),
        retransmit_window=32,
        workload="openloop",
        extra_config={"slo_output_latency": 90.0},
    ),
    ScenarioSpec(
        name="adaptive_k",
        description="open-loop heavy traffic + crash clusters, adaptive K",
        n=16, duration=600.0, rate=1.2, k=8, seed=7,
        # Two clusters of closely spaced crashes: a reactive controller
        # cannot dodge the first crash of a cluster, but the retreat it
        # triggers shields the rest of the cluster — the regime where
        # adaptive K beats every static point (see experiments/adaptive_k).
        crashes=((0.35, 3), (0.38, 9), (0.41, 13), (0.44, 5),
                 (0.68, 12), (0.71, 2), (0.74, 7)),
        retransmit_window=32,
        workload="openloop",
        extra_config={"adaptive_k": True, "k_max": 8,
                      "slo_output_latency": 90.0, "control_interval": 10.0},
    ),
    ScenarioSpec(
        name="unreliable",
        description="lossy network sweep (drop/dup/reorder + retransmission)",
        n=8, duration=300.0, rate=1.0, k=4,
        drop_rate=0.05, duplicate_rate=0.02, reorder_rate=0.05,
        retransmit_window=32,
    ),
)


def scenario_by_name(name: str) -> ScenarioSpec:
    for spec in SCENARIOS:
        if spec.name == name:
            return spec
    raise KeyError(
        f"unknown scenario {name!r}; known: {[s.name for s in SCENARIOS]}"
    )
