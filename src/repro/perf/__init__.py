"""Standing performance layer: a fixed bench suite with committed baselines.

``python -m repro bench`` runs the scenario suite in
:mod:`repro.perf.scenarios`, collects wall-clock, events/sec,
deliveries/sec and allocation counters, and writes a schema-versioned
``BENCH_<date>.json`` at the repo root.  ``--compare`` diffs two such
files and flags events/sec regressions beyond a tolerance — the nightly
CI job runs it against the committed baseline so a slow PR fails loudly
instead of silently eroding the "as fast as the hardware allows" goal.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BenchResult,
    compare_results,
    load_results,
    run_suite,
    write_results,
)
from repro.perf.scenarios import SCENARIOS, ScenarioSpec

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchResult",
    "SCENARIOS",
    "ScenarioSpec",
    "compare_results",
    "load_results",
    "run_suite",
    "write_results",
]
