"""Bench runner, BENCH JSON schema, and the regression comparator.

The emitted file is schema-versioned so old baselines stay comparable:

.. code-block:: json

    {
      "schema": "repro-bench",
      "schema_version": 1,
      "created_utc": "2026-08-06T12:00:00+00:00",
      "python": "3.12.3",
      "platform": "Linux-...",
      "scale": 1.0,
      "scenarios": {
        "ff_n32": {
          "description": "...",
          "n": 32, "duration": 400.0, "seed": 1,
          "wall_s": 7.81,
          "events": 33931, "events_per_s": 4344.2,
          "deliveries": 3863, "deliveries_per_s": 494.5,
          "released": 3086, "outputs_committed": 198,
          "alloc_blocks": 1180423, "violations": 0
        }
      }
    }

``events_per_s`` (engine events fired per wall-clock second) is the
headline number the comparator guards: it captures total mechanism cost
per unit of simulated activity and is robust to scenario-duration
changes, unlike raw wall-clock.
"""

from __future__ import annotations

import datetime
import gc
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.perf.scenarios import SCENARIOS, ScenarioSpec

BENCH_SCHEMA = "repro-bench"
BENCH_SCHEMA_VERSION = 1

#: Fields every per-scenario record must carry (schema contract).
SCENARIO_FIELDS = (
    "description", "n", "duration", "seed",
    "wall_s", "events", "events_per_s",
    "deliveries", "deliveries_per_s",
    "released", "outputs_committed", "alloc_blocks", "violations",
)


@dataclass
class BenchResult:
    """One suite run: header metadata plus per-scenario measurements."""

    scale: float = 1.0
    created_utc: str = ""
    scenarios: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def as_document(self) -> Dict[str, object]:
        return {
            "schema": BENCH_SCHEMA,
            "schema_version": BENCH_SCHEMA_VERSION,
            "created_utc": self.created_utc,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "scale": self.scale,
            "scenarios": self.scenarios,
        }


class BenchSchemaError(ValueError):
    """A BENCH document does not conform to the expected schema."""


def run_scenario(spec: ScenarioSpec, scale: float = 1.0,
                 repeats: int = 2) -> Dict[str, object]:
    """Run one scenario and return its measurement record.

    The scenario is executed ``repeats`` times and the fastest wall time
    kept: the first execution pays cold-start costs (imports, allocator
    warm-up, branch caches) that are noise, not mechanism cost, and the
    simulated behaviour is identical on every repeat (same seed).
    """
    wall = float("inf")
    for _ in range(max(1, repeats)):
        harness, duration = spec.build(scale)
        try:
            gc.collect()
            blocks_before = sys.getallocatedblocks()
            wall_start = time.perf_counter()
            harness.run(duration)
            wall = min(wall, time.perf_counter() - wall_start)
            blocks_after = sys.getallocatedblocks()
            metrics = harness.metrics()
            events = harness.engine.events_executed
        finally:
            harness.close()
    record: Dict[str, object] = {
        "description": spec.description,
        "n": spec.n,
        "duration": duration,
        "seed": spec.seed,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events / wall, 2) if wall > 0 else 0.0,
        "deliveries": metrics.messages_delivered,
        "deliveries_per_s": (
            round(metrics.messages_delivered / wall, 2) if wall > 0 else 0.0
        ),
        "released": metrics.messages_released,
        "outputs_committed": metrics.outputs_committed,
        "alloc_blocks": max(0, blocks_after - blocks_before),
        "violations": len(metrics.violations),
    }
    if metrics.storage_fsyncs:
        # Durable-backend scenarios: restart cost and log-write
        # amplification (how many journal bytes must be made durable per
        # unit of useful work) as functions of the degree of optimism.
        record["storage"] = {
            "bytes_written": metrics.storage_bytes_written,
            "bytes_fsynced": metrics.storage_bytes_fsynced,
            "fsyncs": metrics.storage_fsyncs,
            "group_commits": metrics.storage_group_commits,
            "recoveries": metrics.storage_recoveries,
            "recovered_records": metrics.storage_recovered_records,
            "recovery_wall_s": round(metrics.storage_recovery_wall_s, 6),
            "fsynced_bytes_per_delivery": (
                round(metrics.storage_bytes_fsynced
                      / metrics.messages_delivered, 2)
                if metrics.messages_delivered else 0.0
            ),
            "fsynced_bytes_per_output": (
                round(metrics.storage_bytes_fsynced
                      / metrics.outputs_committed, 2)
                if metrics.outputs_committed else 0.0
            ),
        }
    if metrics.output_latency_count:
        # Output-commit latency SLO accounting (end-to-end samples when
        # the workload stamps injection times, buffer waits otherwise).
        record["slo"] = {
            "p50": round(metrics.output_latency_p50, 3),
            "p95": round(metrics.output_latency_p95, 3),
            "p99": round(metrics.output_latency_p99, 3),
            "mean": round(metrics.mean_output_latency, 3),
            "samples": metrics.output_latency_count,
            "target": metrics.slo_target,
            "attained": round(metrics.slo_attained, 4),
            "revoked_intervals": metrics.rolled_back_intervals,
            "outputs_discarded": metrics.outputs_discarded,
        }
    if metrics.adaptive_k:
        record["control"] = {
            "k_decisions": metrics.k_decisions,
            "k_mean": round(metrics.k_mean, 3),
            "k_final_mean": round(metrics.k_final_mean, 3),
        }
    if metrics.violations:
        record["violation_samples"] = metrics.violations[:3]
    return record


def run_suite(
    scale: float = 1.0,
    only: Optional[Sequence[str]] = None,
    specs: Iterable[ScenarioSpec] = SCENARIOS,
    progress=None,
) -> BenchResult:
    """Run the suite (optionally a named subset) and collect the results."""
    result = BenchResult(
        scale=scale,
        created_utc=datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    )
    wanted = set(only) if only else None
    for spec in specs:
        if wanted is not None and spec.name not in wanted:
            continue
        if progress:
            progress(f"running {spec.name} ({spec.description}) ...")
        result.scenarios[spec.name] = run_scenario(spec, scale)
        if progress:
            rec = result.scenarios[spec.name]
            progress(
                f"  {spec.name}: {rec['wall_s']}s wall, "
                f"{rec['events_per_s']} events/s, "
                f"{rec['deliveries_per_s']} deliveries/s"
            )
    if wanted is not None:
        missing = wanted - set(result.scenarios)
        if missing:
            raise KeyError(f"unknown scenarios requested: {sorted(missing)}")
    return result


# -- persistence -----------------------------------------------------------


def write_results(result: BenchResult, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.as_document(), fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_results(path: str) -> Dict[str, object]:
    """Load and schema-validate a BENCH document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_document(doc, source=path)
    return doc


def validate_document(doc: Dict[str, object], source: str = "<memory>") -> None:
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"{source}: document must be an object")
    if doc.get("schema") != BENCH_SCHEMA:
        raise BenchSchemaError(
            f"{source}: not a {BENCH_SCHEMA} document "
            f"(schema={doc.get('schema')!r})"
        )
    version = doc.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise BenchSchemaError(f"{source}: bad schema_version {version!r}")
    if version > BENCH_SCHEMA_VERSION:
        raise BenchSchemaError(
            f"{source}: schema_version {version} is newer than supported "
            f"({BENCH_SCHEMA_VERSION})"
        )
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise BenchSchemaError(f"{source}: missing or empty 'scenarios'")
    for name, record in scenarios.items():
        if not isinstance(record, dict):
            raise BenchSchemaError(f"{source}: scenario {name!r} is not an object")
        for key in SCENARIO_FIELDS:
            if key not in record:
                raise BenchSchemaError(
                    f"{source}: scenario {name!r} is missing field {key!r}"
                )


# -- comparison ------------------------------------------------------------


@dataclass
class Comparison:
    """Per-scenario old-vs-new events/sec comparison."""

    name: str
    old_eps: float
    new_eps: float

    @property
    def ratio(self) -> float:
        if self.old_eps <= 0:
            return float("inf")
        return self.new_eps / self.old_eps

    def is_regression(self, tolerance: float) -> bool:
        return self.ratio < 1.0 - tolerance


def compare_results(
    old_doc: Dict[str, object],
    new_doc: Dict[str, object],
    tolerance: float = 0.25,
) -> List[Comparison]:
    """Compare shared scenarios; callers filter with ``is_regression``."""
    old_scenarios: Dict[str, Dict] = old_doc["scenarios"]  # type: ignore[assignment]
    new_scenarios: Dict[str, Dict] = new_doc["scenarios"]  # type: ignore[assignment]
    comparisons = []
    for name in old_scenarios:
        if name not in new_scenarios:
            continue
        comparisons.append(Comparison(
            name=name,
            old_eps=float(old_scenarios[name]["events_per_s"]),
            new_eps=float(new_scenarios[name]["events_per_s"]),
        ))
    return comparisons


def scenario_set_diff(
    old_doc: Dict[str, object],
    new_doc: Dict[str, object],
) -> "tuple[List[str], List[str]]":
    """``(added, removed)`` scenario names between two BENCH documents.

    ``added`` scenarios exist only in the new document (new coverage —
    informational); ``removed`` exist only in the old one (coverage lost —
    the CLI treats that as a failure, since a silently shrunk suite would
    let regressions hide).
    """
    old_names = set(old_doc["scenarios"])  # type: ignore[arg-type]
    new_names = set(new_doc["scenarios"])  # type: ignore[arg-type]
    return sorted(new_names - old_names), sorted(old_names - new_names)


def render_comparison(comparisons: List[Comparison], tolerance: float) -> str:
    lines = [
        f"{'scenario':<14} {'old ev/s':>12} {'new ev/s':>12} {'ratio':>8}  verdict",
        "-" * 58,
    ]
    for comp in comparisons:
        if comp.is_regression(tolerance):
            verdict = f"REGRESSION (>{tolerance:.0%} slower)"
        elif comp.ratio > 1.0 + tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"{comp.name:<14} {comp.old_eps:>12.1f} {comp.new_eps:>12.1f} "
            f"{comp.ratio:>8.2f}  {verdict}"
        )
    return "\n".join(lines)


def default_output_path(today: Optional[datetime.date] = None) -> str:
    date = today or datetime.date.today()
    return f"BENCH_{date.isoformat()}.json"


# -- profiling -------------------------------------------------------------


def default_profile_path(today: Optional[datetime.date] = None) -> str:
    date = today or datetime.date.today()
    return f"BENCH_{date.isoformat()}.profile.txt"


def profile_path_for(out_path: str) -> str:
    """Profile path paired with a BENCH output path (`X.json` -> `X.profile.txt`)."""
    if out_path.endswith(".json"):
        return out_path[: -len(".json")] + ".profile.txt"
    return out_path + ".profile.txt"


def write_profile(profiler, path: str, top: int = 20) -> None:
    """Write the top ``top`` cumulative-time frames of a cProfile run.

    Parallel scenarios are profiled from the coordinator's side only —
    worker processes do their stepping off-profiler — so their frames show
    orchestration cost (pipe traffic, merge, barrier waits), which is
    exactly the overhead the epoch runner is supposed to keep small.
    """
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative")
    stats.print_stats(top)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(stream.getvalue())
