"""``python -m repro bench`` — run the suite or compare two BENCH files."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.perf.bench import (
    BenchSchemaError,
    compare_results,
    default_output_path,
    load_results,
    profile_path_for,
    render_comparison,
    run_suite,
    scenario_set_diff,
    write_profile,
    write_results,
)
from repro.perf.scenarios import SCENARIOS


def configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--out", default=None,
        help="output path for the BENCH JSON (default: BENCH_<date>.json)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="scenario duration multiplier (CI smoke uses e.g. 0.1)",
    )
    parser.add_argument(
        "--only", default=None,
        help="comma-separated scenario subset "
             f"(known: {','.join(s.name for s in SCENARIOS)})",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="compare two BENCH files instead of running the suite",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed events/sec regression fraction for --compare "
             "(default 0.25)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the suite under cProfile and write the top-20 cumulative "
             "frames next to the BENCH JSON (BENCH_<date>.profile.txt)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="measure live backplane throughput (multi-process serve run) "
             "instead of the simulation suite; printed, not persisted",
    )
    parser.set_defaults(func=main)


def main(args: argparse.Namespace) -> int:
    if args.compare is not None:
        return _compare(args.compare[0], args.compare[1], args.tolerance)
    if args.serve:
        from repro.perf.serve_bench import format_serve_bench, run_serve_bench

        result = run_serve_bench(duration=150.0 * args.scale)
        print(format_serve_bench(result))
        if result["violations"]:
            print("CERTIFICATION VIOLATIONS:", file=sys.stderr)
            for violation in result["violations"][:10]:
                print(" *", violation, file=sys.stderr)
            return 1
        return 0
    only: Optional[List[str]] = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = run_suite(scale=args.scale, only=only, progress=print)
    finally:
        if profiler is not None:
            profiler.disable()
    out = args.out or default_output_path()
    write_results(result, out)
    print(f"wrote {out}")
    if profiler is not None:
        profile_out = profile_path_for(out)
        write_profile(profiler, profile_out)
        print(f"wrote {profile_out}")
    slow = [name for name, rec in result.scenarios.items() if rec["violations"]]
    if slow:
        print(f"WARNING: scenarios with invariant violations: {slow}",
              file=sys.stderr)
        return 1
    return 0


def _compare(old_path: str, new_path: str, tolerance: float) -> int:
    """Exit codes: 0 ok, 1 regression, 2 error/no shared scenarios,
    3 scenarios removed (coverage lost)."""
    try:
        old_doc = load_results(old_path)
        new_doc = load_results(new_path)
    except (BenchSchemaError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparisons = compare_results(old_doc, new_doc, tolerance)
    if not comparisons:
        print("error: the two files share no scenarios", file=sys.stderr)
        return 2
    print(render_comparison(comparisons, tolerance))
    added, removed = scenario_set_diff(old_doc, new_doc)
    if added:
        # New coverage never fails a comparison (a grown suite is the
        # normal shape of a re-baseline); it is still worth surfacing.
        print(f"\nnote: scenarios only in {new_path}: " + ", ".join(added))
    regressions = [c for c in comparisons if c.is_regression(tolerance)]
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{tolerance:.0%} tolerance: "
            + ", ".join(c.name for c in regressions),
            file=sys.stderr,
        )
        return 1
    if removed:
        print(
            f"\nerror: scenarios missing from {new_path}: "
            + ", ".join(removed)
            + " — coverage was lost, re-run the full suite or re-baseline",
            file=sys.stderr,
        )
        return 3
    print("\nno regressions beyond tolerance")
    return 0
