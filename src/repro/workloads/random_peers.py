"""Uniform peer-gossip workload.

Tokens are injected at Poisson times to random processes; each delivery
forwards the token to a random peer until its hop budget is exhausted, and
the final hop may emit an outside-world output.  Hop chains build exactly
the transitive cross-process dependencies that make dependency vectors grow
— the stress case for commit dependency tracking.
"""

from __future__ import annotations

from typing import Any

from repro.app.behavior import AppBehavior, AppContext
from repro.workloads.base import Workload, poisson_times


class TokenBehavior(AppBehavior):
    """Forward tokens for ``hops`` more steps; output on the last hop."""

    def initial_state(self, pid: int, n: int) -> Any:
        return {"tokens_seen": 0, "work": 0}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        state["tokens_seen"] += 1
        # A little deterministic "work" so state evolves measurably.
        state["work"] = (state["work"] * 31 + payload.get("token", 0)) % 1_000_003
        hops = payload.get("hops", 0)
        if hops > 0:
            peers = [p for p in range(ctx.n) if p != ctx.pid]
            dst = peers[ctx.rng.randrange(len(peers))]
            ctx.send(dst, {
                "token": payload.get("token", 0),
                "hops": hops - 1,
                "emit_output": payload.get("emit_output", False),
            })
        elif payload.get("emit_output"):
            ctx.output({"token": payload.get("token", 0), "work": state["work"]})
        return state


class RandomPeersWorkload(Workload):
    """Poisson token injection over all processes."""

    def __init__(
        self,
        rate: float = 0.5,
        min_hops: int = 2,
        max_hops: int = 6,
        output_fraction: float = 0.25,
    ):
        if not 0 <= min_hops <= max_hops:
            raise ValueError("need 0 <= min_hops <= max_hops")
        if not 0.0 <= output_fraction <= 1.0:
            raise ValueError("output_fraction must be in [0, 1]")
        self.rate = rate
        self.min_hops = min_hops
        self.max_hops = max_hops
        self.output_fraction = output_fraction

    def behavior(self) -> AppBehavior:
        return TokenBehavior()

    def install(self, harness, until: float) -> None:
        rng = harness.rngs.stream("workload/random_peers")
        for token, time in enumerate(poisson_times(rng, self.rate, until)):
            dst = rng.randrange(harness.config.n)
            payload = {
                "token": token,
                "hops": rng.randint(self.min_hops, self.max_hops),
                "emit_output": rng.random() < self.output_fraction,
            }
            harness.inject_at(time, dst, payload)
