"""Open-loop heavy-traffic workload: the millions-of-users arrival shape.

Closed-loop generators (inject, wait, inject) flatter a recovery protocol:
backpressure hides every latency excursion.  Production front-end traffic
is *open-loop* — arrivals do not wait for the system — and three shape
features dominate its tail behaviour:

- **heavy-tailed interarrivals** (Pareto): most gaps are short, a few are
  very long, so load arrives in uneven clumps rather than a Poisson purr;
- **diurnal modulation**: a slow sinusoid over the base rate models the
  daily cycle of a planet-scale user population;
- **burst episodes**: with small probability an arrival opens a burst
  window during which the rate is multiplied — flash crowds.

Every payload carries its injection time ``t0``, and the final hop of a
token chain copies ``t0`` into the output payload, so the runtime can
account *end-to-end* output-commit latency (injection to commit) — the
quantity the adaptive-K controller's SLO is stated over.

All randomness comes from the caller's RNG, so the same
``(seed, rate, until)`` triple yields the same arrival schedule in the
simulator and in the serve backplane's load generator
(:func:`repro.backplane.loadgen.generate_stimuli` with
``profile="openloop"``).
"""

from __future__ import annotations

import math
import random
from typing import Any, Iterator

from repro.app.behavior import AppBehavior, AppContext
from repro.workloads.base import Workload


def open_loop_times(
    rng: random.Random,
    rate: float,
    until: float,
    *,
    alpha: float = 1.7,
    diurnal_amplitude: float = 0.4,
    diurnal_period: float = 400.0,
    burst_probability: float = 0.02,
    burst_multiplier: float = 6.0,
    burst_mean_length: float = 12.0,
) -> Iterator[float]:
    """Yield open-loop arrival times in ``[0, until)``.

    Interarrival gaps are Pareto(``alpha``) scaled so the *instantaneous*
    mean rate tracks ``rate`` modulated by a diurnal sinusoid; a burst
    episode (geometric length, mean ``burst_mean_length`` arrivals)
    multiplies the instantaneous rate by ``burst_multiplier``.
    ``alpha`` must exceed 1 (a finite-mean tail), and values close to 1
    make the tail heavier.
    """
    if rate <= 0:
        return
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for a finite mean, got {alpha}")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError(
            f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}"
        )
    t = 0.0
    burst_left = 0
    # Pareto(alpha, xm) has mean xm * alpha / (alpha - 1); choose xm so
    # the mean gap is 1/r at the instantaneous rate r.
    mean_factor = (alpha - 1.0) / alpha
    while True:
        r = rate
        if diurnal_amplitude > 0:
            r *= 1.0 + diurnal_amplitude * math.sin(
                2.0 * math.pi * t / diurnal_period
            )
        if burst_left > 0:
            burst_left -= 1
            r *= burst_multiplier
        elif burst_probability > 0 and rng.random() < burst_probability:
            burst_left = 1 + int(rng.expovariate(1.0 / burst_mean_length))
        xm = mean_factor / max(r, 1e-9)
        t += xm * rng.paretovariate(alpha)
        if t >= until:
            return
        yield t


class OpenLoopBehavior(AppBehavior):
    """Token hop-chains that carry their injection time end to end.

    Identical in spirit to :class:`~repro.workloads.random_peers.TokenBehavior`
    but every forwarded payload and every emitted output keeps the
    injection stamp ``t0``, enabling end-to-end commit-latency SLOs.
    """

    def initial_state(self, pid: int, n: int) -> Any:
        return {"tokens_seen": 0, "work": 0}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        state["tokens_seen"] += 1
        state["work"] = (state["work"] * 31 + payload.get("token", 0)) % 1_000_003
        hops = payload.get("hops", 0)
        if hops > 0:
            peers = [p for p in range(ctx.n) if p != ctx.pid]
            dst = peers[ctx.rng.randrange(len(peers))]
            ctx.send(dst, {
                "token": payload.get("token", 0),
                "hops": hops - 1,
                "emit_output": payload.get("emit_output", False),
                "t0": payload.get("t0", 0.0),
            })
        elif payload.get("emit_output"):
            ctx.output({
                "token": payload.get("token", 0),
                "work": state["work"],
                "t0": payload.get("t0", 0.0),
            })
        return state


class OpenLoopWorkload(Workload):
    """Open-loop token injection: heavy tails, diurnal cycle, bursts."""

    def __init__(
        self,
        rate: float = 1.0,
        min_hops: int = 2,
        max_hops: int = 6,
        output_fraction: float = 0.5,
        alpha: float = 1.7,
        diurnal_amplitude: float = 0.4,
        diurnal_period: float = 400.0,
        burst_probability: float = 0.02,
        burst_multiplier: float = 6.0,
        burst_mean_length: float = 12.0,
    ):
        if not 0 <= min_hops <= max_hops:
            raise ValueError("need 0 <= min_hops <= max_hops")
        if not 0.0 <= output_fraction <= 1.0:
            raise ValueError("output_fraction must be in [0, 1]")
        self.rate = rate
        self.min_hops = min_hops
        self.max_hops = max_hops
        self.output_fraction = output_fraction
        self.alpha = alpha
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = diurnal_period
        self.burst_probability = burst_probability
        self.burst_multiplier = burst_multiplier
        self.burst_mean_length = burst_mean_length

    def behavior(self) -> AppBehavior:
        return OpenLoopBehavior()

    def arrival_times(self, rng: random.Random, until: float) -> Iterator[float]:
        return open_loop_times(
            rng, self.rate, until,
            alpha=self.alpha,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period=self.diurnal_period,
            burst_probability=self.burst_probability,
            burst_multiplier=self.burst_multiplier,
            burst_mean_length=self.burst_mean_length,
        )

    def install(self, harness, until: float) -> None:
        rng = harness.rngs.stream("workload/openloop")
        for token, time in enumerate(self.arrival_times(rng, until)):
            dst = rng.randrange(harness.config.n)
            payload = {
                "token": token,
                "hops": rng.randint(self.min_hops, self.max_hops),
                "emit_output": rng.random() < self.output_fraction,
                "t0": time,
            }
            harness.inject_at(time, dst, payload)
