"""Pipeline workload.

Items enter at stage 0 and flow through every process in order; the last
stage emits an output per item.  This is the long-running scientific
computation of the paper's introduction: a deep, linear causal chain in
which a single failure anywhere can (under high K) orphan the entire
downstream suffix.
"""

from __future__ import annotations

from typing import Any

from repro.app.behavior import AppBehavior, AppContext
from repro.workloads.base import Workload, poisson_times


class PipelineBehavior(AppBehavior):
    """Transform and forward to the next stage; final stage outputs."""

    def initial_state(self, pid: int, n: int) -> Any:
        return {"processed": 0, "acc": pid + 1}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        state["processed"] += 1
        value = (payload["value"] * 37 + state["acc"]) % 1_000_003
        state["acc"] = value
        if ctx.pid + 1 < ctx.n:
            ctx.send(ctx.pid + 1, {"item": payload["item"], "value": value})
        else:
            ctx.output({"item": payload["item"], "value": value})
        return state


class PipelineWorkload(Workload):
    """Poisson item arrivals at stage 0."""

    def __init__(self, rate: float = 0.5):
        self.rate = rate

    def behavior(self) -> AppBehavior:
        return PipelineBehavior()

    def install(self, harness, until: float) -> None:
        rng = harness.rngs.stream("workload/pipeline")
        for item, time in enumerate(poisson_times(rng, self.rate, until)):
            harness.inject_at(time, 0, {"item": item, "value": item})
