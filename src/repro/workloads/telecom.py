"""Telecom-style service workload.

The paper motivates K-optimistic logging with continuously-running
service-providing applications — "a telecommunications system needs to
choose a parameter to control the overhead so that it can be responsive
during normal operation, and also control the rollback scope" — and notes
that such systems interact heavily with the outside world (billing,
hardware switches).

Model: a call setup enters at an ingress switch, is routed through a small
random chain of transit switches, and the egress switch emits a billing
record (an outside-world output that must be committed, never revoked).
Every switch keeps per-switch counters, so calls interleave dependencies
across the whole fabric.
"""

from __future__ import annotations

from typing import Any

from repro.app.behavior import AppBehavior, AppContext
from repro.workloads.base import Workload, poisson_times


class SwitchBehavior(AppBehavior):
    """Route call setups along their precomputed path; bill at egress."""

    def initial_state(self, pid: int, n: int) -> Any:
        return {"routed": 0, "billed": 0, "usage": 0}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        state["routed"] += 1
        state["usage"] = (state["usage"] + payload["units"]) % 1_000_000_007
        path = payload["path"]
        position = payload["position"]
        if position + 1 < len(path):
            ctx.send(path[position + 1], {
                "call": payload["call"],
                "path": path,
                "position": position + 1,
                "units": payload["units"],
            })
        else:
            state["billed"] += 1
            ctx.output({
                "billing_record": payload["call"],
                "units": payload["units"],
                "egress": ctx.pid,
            })
        return state


class TelecomWorkload(Workload):
    """Poisson call arrivals with random ingress/egress and transit chain."""

    def __init__(self, rate: float = 0.8, min_transit: int = 1, max_transit: int = 3):
        if not 0 <= min_transit <= max_transit:
            raise ValueError("need 0 <= min_transit <= max_transit")
        self.rate = rate
        self.min_transit = min_transit
        self.max_transit = max_transit

    def behavior(self) -> AppBehavior:
        return SwitchBehavior()

    def install(self, harness, until: float) -> None:
        n = harness.config.n
        if n < 2:
            raise ValueError("telecom workload needs at least 2 switches")
        rng = harness.rngs.stream("workload/telecom")
        for call, time in enumerate(poisson_times(rng, self.rate, until)):
            transit = rng.randint(self.min_transit, min(self.max_transit, n - 1))
            path = rng.sample(range(n), transit + 1)
            harness.inject_at(time, path[0], {
                "call": call,
                "path": path,
                "position": 0,
                "units": 1 + rng.randrange(100),
            })
