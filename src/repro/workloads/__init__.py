"""Deterministic workload generators (traffic + application behaviour)."""

from repro.workloads.base import Workload, poisson_times
from repro.workloads.client_server import ClientServerBehavior, ClientServerWorkload
from repro.workloads.pipeline import PipelineBehavior, PipelineWorkload
from repro.workloads.random_peers import RandomPeersWorkload, TokenBehavior
from repro.workloads.telecom import SwitchBehavior, TelecomWorkload

__all__ = ["ClientServerBehavior", "ClientServerWorkload", "PipelineBehavior",
           "PipelineWorkload", "RandomPeersWorkload", "SwitchBehavior",
           "TelecomWorkload", "TokenBehavior", "Workload", "poisson_times"]
