"""Deterministic workload generators (traffic + application behaviour)."""

from repro.workloads.base import Workload, poisson_times
from repro.workloads.client_server import ClientServerBehavior, ClientServerWorkload
from repro.workloads.openloop import (
    OpenLoopBehavior,
    OpenLoopWorkload,
    open_loop_times,
)
from repro.workloads.pipeline import PipelineBehavior, PipelineWorkload
from repro.workloads.random_peers import RandomPeersWorkload, TokenBehavior
from repro.workloads.telecom import SwitchBehavior, TelecomWorkload

__all__ = ["ClientServerBehavior", "ClientServerWorkload", "OpenLoopBehavior",
           "OpenLoopWorkload", "PipelineBehavior", "PipelineWorkload",
           "RandomPeersWorkload", "SwitchBehavior", "TelecomWorkload",
           "TokenBehavior", "Workload", "open_loop_times", "poisson_times"]
