"""Workload framework.

A workload couples a deterministic :class:`AppBehavior` (the message
handler every process runs) with an injection plan (outside-world messages
scheduled onto the harness).  All randomness is drawn from named seeded
streams, so two runs that differ only in protocol parameters (e.g. the
degree of optimism K) process exactly the same traffic.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.app.behavior import AppBehavior

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.harness import SimulationHarness


class Workload:
    """Base class: subclass and override :meth:`behavior` and
    :meth:`install`."""

    def behavior(self) -> AppBehavior:
        """The application behaviour each process runs."""
        raise NotImplementedError

    def install(self, harness: "SimulationHarness", until: float) -> None:
        """Schedule this workload's injections on the harness up to time
        ``until`` (usually a bit before the run horizon, so traffic drains)."""
        raise NotImplementedError


def poisson_times(rng: random.Random, rate: float, until: float, start: float = 0.0):
    """Yield Poisson arrival times with ``rate`` events per time unit."""
    if rate <= 0:
        return
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= until:
            return
        yield t
