"""Client-server workload.

Process 0 is the server; all other processes are clients.  An injected
stimulus makes a client issue a multi-round request/reply conversation with
the server; the server's state accumulates across requests, so replies
causally depend on *every* earlier request from *any* client — the pattern
that makes a server failure expensive under optimistic logging, and the
setting where pessimistic logging's localized recovery shines
(the telecommunications scenario of the introduction).
"""

from __future__ import annotations

from typing import Any

from repro.app.behavior import AppBehavior, AppContext
from repro.workloads.base import Workload, poisson_times

SERVER = 0


class ClientServerBehavior(AppBehavior):
    """Server: apply update, reply.  Client: forward rounds, then output."""

    def initial_state(self, pid: int, n: int) -> Any:
        if pid == SERVER:
            return {"role": "server", "applied": 0, "ledger": 0}
        return {"role": "client", "completed": 0}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        kind = payload.get("kind")
        if state["role"] == "server":
            if kind != "request":
                return state
            state["applied"] += 1
            state["ledger"] = (state["ledger"] * 131 + payload["value"]) % 1_000_033
            ctx.send(payload["client"], {
                "kind": "reply",
                "conversation": payload["conversation"],
                "rounds_left": payload["rounds_left"],
                "result": state["ledger"],
            })
            return state

        # Client side.
        if kind == "stimulus":
            ctx.send(SERVER, {
                "kind": "request",
                "client": ctx.pid,
                "conversation": payload["conversation"],
                "rounds_left": payload["rounds"] - 1,
                "value": payload["conversation"],
            })
        elif kind == "reply":
            if payload["rounds_left"] > 0:
                ctx.send(SERVER, {
                    "kind": "request",
                    "client": ctx.pid,
                    "conversation": payload["conversation"],
                    "rounds_left": payload["rounds_left"] - 1,
                    "value": payload["result"],
                })
            else:
                state["completed"] += 1
                ctx.output({
                    "conversation": payload["conversation"],
                    "result": payload["result"],
                })
        return state


class ClientServerWorkload(Workload):
    """Poisson conversation starts across the client population."""

    def __init__(self, rate: float = 0.5, rounds: int = 3):
        if rounds < 1:
            raise ValueError("conversations need at least one round")
        self.rate = rate
        self.rounds = rounds

    def behavior(self) -> AppBehavior:
        return ClientServerBehavior()

    def install(self, harness, until: float) -> None:
        n = harness.config.n
        if n < 2:
            raise ValueError("client-server workload needs at least 2 processes")
        rng = harness.rngs.stream("workload/client_server")
        for conversation, time in enumerate(poisson_times(rng, self.rate, until)):
            client = 1 + rng.randrange(n - 1)
            harness.inject_at(time, client, {
                "kind": "stimulus",
                "conversation": conversation,
                "rounds": self.rounds,
            })
