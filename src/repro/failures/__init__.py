"""Failure injection: crash, partition, heal, and loss-rate schedules."""

from repro.failures.injector import (
    CrashEvent,
    FailureSchedule,
    HealEvent,
    LossEvent,
    PartitionEvent,
)

__all__ = ["CrashEvent", "FailureSchedule", "HealEvent", "LossEvent",
           "PartitionEvent"]
