"""Failure injection: crash schedules."""

from repro.failures.injector import CrashEvent, FailureSchedule

__all__ = ["CrashEvent", "FailureSchedule"]
