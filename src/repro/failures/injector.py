"""Failure injection: a unified, deterministic event stream.

Historically the schedule carried only crash events.  It is now a single
time-ordered stream of *network and process* faults:

- :class:`CrashEvent` — fail-stop crash of one process (loses all volatile
  state, restarts after ``restart_delay``);
- :class:`PartitionEvent` — split the network into islands; traffic between
  different islands is dropped until the next :class:`HealEvent`;
- :class:`HealEvent` — dissolve the current partition;
- :class:`LossEvent` — change the network fault model's default loss /
  duplication / reorder rates from this time on;
- :class:`StorageFaultEvent` — arm a storage-device fault (torn write,
  lying fsync, transient EIO, stalling I/O, bit flip, fsync-boundary
  crash) beneath one process's stable-storage backend.

A crash is fail-stop: the process loses all volatile state, stays down for
``restart_delay`` time units, then runs the protocol's Restart routine.
Schedules are deterministic given the seed, so every protocol variant in a
comparison experiment faces the *same* failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class CrashEvent:
    """Crash process ``pid`` at virtual ``time``."""

    time: float
    pid: int


@dataclass(frozen=True)
class PartitionEvent:
    """Partition the network at ``time``.

    ``islands`` is a tuple of disjoint process groups.  Two processes can
    communicate iff they are in the same island, or neither is in any
    island (unlisted processes form the implicit "mainland").  Isolating
    P2 from everyone else is simply ``PartitionEvent(t, ((2,),))``.
    """

    time: float
    islands: Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class HealEvent:
    """Dissolve the active partition at ``time``."""

    time: float


@dataclass(frozen=True)
class LossEvent:
    """Change the default channel fault rates at ``time``.

    ``None`` leaves the corresponding rate unchanged.
    """

    time: float
    drop: Optional[float] = None
    duplicate: Optional[float] = None
    reorder: Optional[float] = None


@dataclass(frozen=True)
class StorageFaultEvent:
    """Arm a storage fault on ``pid``'s backend at virtual ``time``.

    ``kind`` is one of :data:`repro.storage.faults.FAULT_KINDS`; ``count``
    is how many times the fault fires (how many fsyncs lie, how many ops
    fail with EIO, after how many fsyncs the device dies); ``duration`` is
    the stall length for ``"stall"`` faults.  On the in-memory model
    backend the event is counted and ignored, so a schedule containing
    storage faults still replays against any backend.
    """

    time: float
    pid: int
    kind: str
    count: int = 1
    duration: float = 0.0


FailureEvent = Union[
    CrashEvent, PartitionEvent, HealEvent, LossEvent, StorageFaultEvent
]

#: Event classes that touch the network rather than a process.
NETWORK_EVENTS = (PartitionEvent, HealEvent, LossEvent)


class FailureSchedule:
    """A fixed, time-ordered list of failure events (crashes and network
    faults).  Iteration yields every event; :attr:`crashes` is the
    crash-only view that crash-oriented harnesses consume."""

    def __init__(self, events: Sequence[FailureEvent] = ()):
        self.events: List[FailureEvent] = sorted(events, key=lambda e: e.time)

    @classmethod
    def none(cls) -> "FailureSchedule":
        """The failure-free schedule."""
        return cls()

    @classmethod
    def single(cls, time: float, pid: int) -> "FailureSchedule":
        """One crash of ``pid`` at ``time`` — the paper's canonical scenario."""
        return cls([CrashEvent(time, pid)])

    @classmethod
    def random(
        cls,
        rng: random.Random,
        n: int,
        horizon: float,
        rate: float,
        start: float = 0.0,
    ) -> "FailureSchedule":
        """Poisson crash arrivals at ``rate`` per time unit over
        [start, horizon); each crash hits a uniformly random process."""
        if rate <= 0:
            return cls()
        events: List[FailureEvent] = []
        t = start
        while True:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            events.append(CrashEvent(t, rng.randrange(n)))
        return cls(events)

    @property
    def crashes(self) -> List[CrashEvent]:
        """The crash events only (what pre-network-fault code consumed)."""
        return [e for e in self.events if isinstance(e, CrashEvent)]

    def has_network_events(self) -> bool:
        """True when the schedule perturbs the network itself."""
        return any(isinstance(e, NETWORK_EVENTS) for e in self.events)

    def extended(self, extra: Sequence[FailureEvent]) -> "FailureSchedule":
        """A new schedule with ``extra`` events merged in."""
        return FailureSchedule([*self.events, *extra])

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
