"""Failure injection: scheduled and random crash events.

A crash is fail-stop: the process loses all volatile state, stays down for
``restart_delay`` time units, then runs the protocol's Restart routine.
Schedules are deterministic given the seed, so every protocol variant in a
comparison experiment faces the *same* failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CrashEvent:
    """Crash process ``pid`` at virtual ``time``."""

    time: float
    pid: int


class FailureSchedule:
    """A fixed list of crash events."""

    def __init__(self, events: Sequence[CrashEvent] = ()):
        self.events: List[CrashEvent] = sorted(events, key=lambda e: e.time)

    @classmethod
    def none(cls) -> "FailureSchedule":
        """The failure-free schedule."""
        return cls()

    @classmethod
    def single(cls, time: float, pid: int) -> "FailureSchedule":
        """One crash of ``pid`` at ``time`` — the paper's canonical scenario."""
        return cls([CrashEvent(time, pid)])

    @classmethod
    def random(
        cls,
        rng: random.Random,
        n: int,
        horizon: float,
        rate: float,
        start: float = 0.0,
    ) -> "FailureSchedule":
        """Poisson crash arrivals at ``rate`` per time unit over
        [start, horizon); each crash hits a uniformly random process."""
        if rate <= 0:
            return cls()
        events = []
        t = start
        while True:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            events.append(CrashEvent(t, rng.randrange(n)))
        return cls(events)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
