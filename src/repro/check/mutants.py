"""Deliberately broken protocol variants.

A checker that never fires proves nothing.  Each mutant here disables one
safety mechanism of :class:`~repro.core.protocol.KOptimisticProcess`; the
mutation smoke tests (and ``python -m repro check mutants``) assert that
exploration finds a violation against every one of them and that the
shrinker reduces it to a small replayable counterexample.

The probes are deliberately mutant-proof: orphan detection in the probe
layer re-evaluates the raw incarnation-end table
(``vector_known_orphan``) instead of trusting ``_is_orphan_message``, and
Theorem 3/4 are judged against the ground-truth oracle, so overriding a
protocol predicate cannot simultaneously hide the symptom.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.depvec import DependencyVector
from repro.core.effects import Effect
from repro.core.protocol import KOptimisticProcess
from repro.net.message import AppMessage
from repro.runtime.harness import ProtocolFactory, protocol_factory_for


class OrphanBlindProcess(KOptimisticProcess):
    """Never detects orphan messages (breaks Theorem 1's Check_orphan).

    Orphaned messages sail through delivery; the probe layer catches the
    first delivery whose dependencies the receiver's own incarnation-end
    table already invalidates.
    """

    def _is_orphan_message(self, msg: AppMessage) -> bool:
        return False


class UnboundedReleaseProcess(KOptimisticProcess):
    """Releases messages regardless of K (breaks Theorem 4).

    ``Check_send_buffer`` runs with the commit-dependency limit forced to
    N, so messages leave while more than K processes could still revoke
    them; the harness's oracle-backed release check fires.
    """

    def _check_send_buffer(self) -> List[Effect]:
        real_k = self.k
        self.k = self.n
        try:
            return super()._check_send_buffer()
        finally:
            self.k = real_k


class ForgetfulPiggybackProcess(KOptimisticProcess):
    """Drops one foreign entry from every piggybacked vector (breaks
    Theorem 3's "always carry non-stable dependencies").

    Receivers silently lose a transitive dependency, so their vectors no
    longer cover their causal past; the coverage probe fires.
    """

    def _piggyback_vector(self) -> DependencyVector:
        vector = super()._piggyback_vector()
        for pid, _entry in sorted(vector.items(), reverse=True):
            if pid != self.pid:
                vector.nullify(pid)
                break
        return vector


#: Registry used by the CLI, the exploration experiment, and the tests.
MUTANTS: Dict[str, type] = {
    "orphan_blind": OrphanBlindProcess,
    "unbounded_release": UnboundedReleaseProcess,
    "forgetful_piggyback": ForgetfulPiggybackProcess,
}


def mutant_factory(name: str) -> ProtocolFactory:
    """A :data:`ProtocolFactory` for the named mutant."""
    return protocol_factory_for(MUTANTS[name])
