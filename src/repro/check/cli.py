"""``python -m repro check`` — the exploration checker's entry point.

Modes:

- ``dfs``     — exhaustive depth-bounded DFS over same-time tie-breaks of
  one small deterministic scenario (2-3 processes);
- ``random``  — seeded random sampling of scenarios (3-6 processes,
  crashes and partitions included); a violation is shrunk and dumped;
- ``mutants`` — run the random explorer against deliberately broken
  protocol variants and *expect* violations (checker self-test);
- ``replay``  — re-execute a dumped counterexample file;
- ``storage`` — seeded storage-fault campaigns on the durable file-log
  backend (randomized crash+fault runs, or the crash-at-every-fsync
  boundary sweep).

Exit status is 0 when the world looks as expected (clean exploration,
every mutant caught, replay reproduces the violation) and 1 otherwise.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.check.explorer import (
    BoundedDFSExplorer,
    RandomExplorer,
    RandomScenarioSampler,
)
from repro.check.mutants import MUTANTS, mutant_factory
from repro.check.scenario import Injection, Scenario, run_scenario
from repro.check.shrinker import (
    dump_counterexample,
    load_counterexample,
    shrink,
)
from repro.check.storage_campaign import fault_campaign, fsync_sweep


def small_scenario(n: int = 2, k: Optional[int] = 1, tokens: int = 3,
                   horizon: float = 30.0,
                   crash: Optional[int] = None) -> Scenario:
    """The DFS workhorse: a tiny deterministic token scenario."""
    injections = [
        Injection(time=1.0 + 2.0 * i, dst=i % n, token=i, hops=2,
                  emit_output=(i == tokens - 1))
        for i in range(tokens)
    ]
    crashes = [] if crash is None else [(horizon / 2, crash)]
    return Scenario(n=n, k=k, seed=0, horizon=horizon,
                    injections=injections, crashes=crashes)


def _report_found(stats, out: Optional[str], shrunk=None) -> None:
    print(f"VIOLATION after {stats.runs} run(s):")
    for violation in stats.result.violations[:5]:
        print("  *", violation)
    if shrunk is not None:
        print(f"shrunk in {shrunk.runs} runs: "
              f"{len(shrunk.scenario.injections)} injection(s), "
              f"{len(shrunk.scenario.crashes)} crash(es), "
              f"{len(shrunk.scenario.partitions)} partition(s), "
              f"horizon {shrunk.scenario.horizon}, "
              f"trace {shrunk.trace_length} event(s)")
    if out:
        target = shrunk.scenario if shrunk is not None else stats.counterexample
        result = shrunk.result if shrunk is not None else stats.result
        dump_counterexample(out, target, result)
        print(f"counterexample written to {out} "
              f"(replay: python -m repro check replay {out})")


def cmd_dfs(args: argparse.Namespace) -> int:
    scenario = small_scenario(n=args.n, k=args.k, tokens=args.tokens,
                              horizon=args.horizon, crash=args.crash)
    explorer = BoundedDFSExplorer(scenario, max_depth=args.depth,
                                  max_runs=args.max_runs)
    stats = explorer.explore()
    if stats.found:
        shrunk = shrink(stats.counterexample)
        _report_found(stats, args.out, shrunk)
        return 1
    coverage = "exhausted" if stats.exhausted else "budget-capped"
    print(f"dfs clean: {stats.runs} schedule(s), depth<={args.depth} "
          f"({coverage}), max branching {stats.max_branching}, "
          f"max release revokers {stats.max_release_revokers}")
    return 0


def cmd_random(args: argparse.Namespace) -> int:
    sampler = RandomScenarioSampler(seed=args.seed)
    explorer = RandomExplorer(sampler, runs=args.runs)
    stats = explorer.explore()
    if stats.found:
        shrunk = shrink(stats.counterexample)
        _report_found(stats, args.out, shrunk)
        return 1
    print(f"random clean: {stats.runs} scenario(s) sampled from seed "
          f"{args.seed}, max branching {stats.max_branching}, "
          f"max release revokers {stats.max_release_revokers}")
    return 0


def cmd_mutants(args: argparse.Namespace) -> int:
    names = sorted(MUTANTS) if args.mutant == "all" else [args.mutant]
    all_caught = True
    for name in names:
        sampler = RandomScenarioSampler(seed=args.seed)
        explorer = RandomExplorer(sampler, runs=args.runs,
                                  protocol_factory=mutant_factory(name))
        stats = explorer.explore()
        if not stats.found:
            print(f"{name}: NOT CAUGHT in {stats.runs} scenario(s)")
            all_caught = False
            continue
        shrunk = shrink(stats.counterexample,
                        protocol_factory=mutant_factory(name))
        print(f"{name}: caught after {stats.runs} scenario(s); "
              f"shrunk to trace of {shrunk.trace_length} event(s)")
        if args.out_dir:
            path = f"{args.out_dir}/counterexample_{name}.json"
            dump_counterexample(path, shrunk.scenario, shrunk.result,
                                mutant=name)
            print(f"  written to {path}")
    return 0 if all_caught else 1


def cmd_replay(args: argparse.Namespace) -> int:
    scenario, mutant = load_counterexample(args.path)
    factory = mutant_factory(mutant) if mutant else None
    result = run_scenario(scenario, factory)
    against = f" against mutant {mutant}" if mutant else ""
    if result.violations:
        print(f"replayed {args.path}{against}: violation reproduced "
              f"({result.events_executed} events)")
        for violation in result.violations[:5]:
            print("  *", violation)
        return 0 if not args.expect_clean else 1
    print(f"replayed {args.path}{against}: no violation "
          f"({result.events_executed} events)")
    return 0 if args.expect_clean else 1


def cmd_storage(args: argparse.Namespace) -> int:
    if args.fault_mode == "sweep":
        result = fsync_sweep(seed=args.seed, n=args.n, k=args.k,
                             horizon=args.horizon,
                             max_points=args.max_points)
        print(f"storage sweep: {result.summary()}")
        for point in result.failures:
            print(f"  P{point.pid} crash after fsync #{point.fsync_index}:")
            for violation in point.violations[:3]:
                print("    *", violation)
        return 0 if result.clean else 1
    result = fault_campaign(runs=args.runs, seed=args.seed, n=args.n,
                            k=args.k, horizon=args.horizon)
    print(f"storage faults: {result.summary()}")
    for run in result.failures:
        print(f"  run {run.index} (seed {run.seed}; {run.description}):")
        for violation in run.violations[:3]:
            print("    *", violation)
    return 0 if result.clean else 1


def configure(parser: argparse.ArgumentParser) -> None:
    """Attach the check sub-commands to the ``repro check`` parser."""
    sub = parser.add_subparsers(dest="mode", required=True)

    dfs = sub.add_parser("dfs", help="bounded exhaustive schedule DFS")
    dfs.add_argument("--n", type=int, default=2)
    dfs.add_argument("--k", type=int, default=1)
    dfs.add_argument("--tokens", type=int, default=3)
    dfs.add_argument("--horizon", type=float, default=30.0)
    dfs.add_argument("--depth", type=int, default=10)
    dfs.add_argument("--max-runs", type=int, default=2000)
    dfs.add_argument("--crash", type=int, default=None, metavar="PID")
    dfs.add_argument("--out", default=None, help="counterexample path")
    dfs.set_defaults(func=cmd_dfs)

    rnd = sub.add_parser("random", help="seeded random scenario sampling")
    rnd.add_argument("--runs", type=int, default=1000)
    rnd.add_argument("--seed", type=int, default=0)
    rnd.add_argument("--out", default=None, help="counterexample path")
    rnd.set_defaults(func=cmd_random)

    mut = sub.add_parser("mutants",
                         help="verify the checker catches broken variants")
    mut.add_argument("--mutant", choices=sorted(MUTANTS) + ["all"],
                     default="all")
    mut.add_argument("--runs", type=int, default=60)
    mut.add_argument("--seed", type=int, default=0)
    mut.add_argument("--out-dir", default=None)
    mut.set_defaults(func=cmd_mutants)

    rep = sub.add_parser("replay", help="re-execute a counterexample file")
    rep.add_argument("path")
    rep.add_argument("--expect-clean", action="store_true",
                     help="succeed only if the replay shows no violation")
    rep.set_defaults(func=cmd_replay)

    sto = sub.add_parser(
        "storage", help="storage-fault campaigns on the file-log backend")
    sto.add_argument("--mode", dest="fault_mode",
                     choices=("faults", "sweep"), default="faults")
    sto.add_argument("--runs", type=int, default=10,
                     help="randomized runs (mode=faults)")
    sto.add_argument("--seed", type=int, default=0)
    sto.add_argument("--n", type=int, default=6)
    sto.add_argument("--k", type=int, default=2)
    sto.add_argument("--horizon", type=float, default=300.0)
    sto.add_argument("--max-points", type=int, default=24,
                     help="sampled fsync boundaries (mode=sweep)")
    sto.set_defaults(func=cmd_storage)
