"""Schedule and fault exploration drivers.

Two strategies over :class:`~repro.check.scenario.Scenario` runs:

- :class:`BoundedDFSExplorer` — *exhaustive* depth-bounded DFS over the
  same-time tie-break choices of one fixed scenario.  Each run replays a
  forced choice prefix and defaults beyond it; the recorded candidate
  counts tell the explorer where the schedule tree branches, and every
  untried alternative at or beyond the prefix becomes a new prefix.
  Tractable for tiny configs (2-3 processes, a handful of tokens).
- :class:`RandomExplorer` — seeded random sampling for 3-6 process
  configs: each index deterministically derives a scenario (injections,
  crash points, partition placements, tie-break seed) from the sampler
  seed, so a violating sample is reproducible from ``(seed, index)``
  alone — and, being a plain scenario, shrinkable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.check.scenario import (
    CheckResult,
    Injection,
    Partition,
    Scenario,
    run_scenario,
)
from repro.runtime.harness import ProtocolFactory


@dataclass
class ExplorationStats:
    """Outcome of one exploration campaign."""

    runs: int = 0
    #: The violating scenario (exact choices pinned), or ``None``.
    counterexample: Optional[Scenario] = None
    result: Optional[CheckResult] = None
    #: DFS only: the bounded tree was explored completely.
    exhausted: bool = False
    #: Largest same-time candidate set seen anywhere (schedule freedom).
    max_branching: int = 0
    max_release_revokers: int = 0

    @property
    def found(self) -> bool:
        return self.counterexample is not None


class BoundedDFSExplorer:
    """Depth-bounded exhaustive DFS over tie-break choices."""

    def __init__(
        self,
        scenario: Scenario,
        max_depth: int = 10,
        max_runs: int = 2000,
        protocol_factory: Optional[ProtocolFactory] = None,
    ):
        if scenario.choice_seed is not None:
            raise ValueError("DFS needs deterministic fallback choices; "
                             "use a scenario without choice_seed")
        self.scenario = scenario
        self.max_depth = max_depth
        self.max_runs = max_runs
        self.protocol_factory = protocol_factory

    def explore(self) -> ExplorationStats:
        stats = ExplorationStats()
        root = list(self.scenario.choices)
        stack: List[List[int]] = [root]
        while stack:
            if stats.runs >= self.max_runs:
                return stats  # budget exhausted, tree not fully covered
            prefix = stack.pop()
            candidate = self.scenario.with_choices(prefix)
            result = run_scenario(candidate, self.protocol_factory)
            stats.runs += 1
            if result.counts:
                stats.max_branching = max(stats.max_branching,
                                          max(result.counts))
            stats.max_release_revokers = max(stats.max_release_revokers,
                                             result.max_release_revokers)
            if result.violations:
                stats.counterexample = candidate.with_choices(result.choices)
                stats.result = result
                return stats
            # Branch at every decision point at or beyond this prefix (the
            # points before it were branched when the parent ran).  LIFO
            # push order keeps the traversal depth-first.
            limit = min(len(result.counts), self.max_depth)
            for i in range(limit - 1, len(prefix) - 1, -1):
                for alternative in range(result.counts[i] - 1, 0, -1):
                    stack.append(result.choices[:i] + [alternative])
        stats.exhausted = True
        return stats


@dataclass
class RandomScenarioSampler:
    """Deterministically derives the ``index``-th random scenario."""

    seed: int = 0
    n_choices: Tuple[int, ...] = (3, 4, 5, 6)
    #: Degrees of optimism to sample (``None`` = K=N, fully optimistic).
    k_choices: Tuple[Optional[int], ...] = (0, 1, 2, None)
    horizon: float = 40.0
    min_tokens: int = 3
    max_tokens: int = 8
    max_hops: int = 4
    output_fraction: float = 0.4
    crash_probability: float = 0.7
    max_crashes: int = 2
    partition_probability: float = 0.25

    def sample(self, index: int) -> Scenario:
        rng = random.Random(f"repro-check/{self.seed}/{index}")
        n = rng.choice(self.n_choices)
        k = rng.choice(self.k_choices)
        injections = []
        for token in range(rng.randint(self.min_tokens, self.max_tokens)):
            injections.append(Injection(
                time=round(rng.uniform(1.0, self.horizon * 0.6), 1),
                dst=rng.randrange(n),
                token=token,
                hops=rng.randint(1, self.max_hops),
                emit_output=rng.random() < self.output_fraction,
            ))
        injections.sort(key=lambda i: i.time)
        crashes = []
        if rng.random() < self.crash_probability:
            for _ in range(rng.randint(1, self.max_crashes)):
                crashes.append((
                    round(rng.uniform(self.horizon * 0.2,
                                      self.horizon * 0.8), 1),
                    rng.randrange(n),
                ))
            crashes.sort()
        partitions = []
        if rng.random() < self.partition_probability:
            start = round(rng.uniform(self.horizon * 0.1,
                                      self.horizon * 0.6), 1)
            length = round(rng.uniform(4.0, 12.0), 1)
            isolated = rng.randrange(n)
            partitions.append(Partition(
                start=start, end=min(start + length, self.horizon * 0.9),
                islands=((isolated,),),
            ))
        return Scenario(
            n=n, k=k, seed=index, horizon=self.horizon,
            injections=injections, crashes=crashes, partitions=partitions,
            choices=[], choice_seed=rng.randrange(2 ** 32),
        )


class RandomExplorer:
    """Seeded random sampling of scenarios; stops at the first violation."""

    def __init__(
        self,
        sampler: RandomScenarioSampler,
        runs: int = 1000,
        protocol_factory: Optional[ProtocolFactory] = None,
    ):
        self.sampler = sampler
        self.runs = runs
        self.protocol_factory = protocol_factory

    def explore(self) -> ExplorationStats:
        stats = ExplorationStats()
        for index in range(self.runs):
            scenario = self.sampler.sample(index)
            result = run_scenario(scenario, self.protocol_factory)
            stats.runs += 1
            if result.counts:
                stats.max_branching = max(stats.max_branching,
                                          max(result.counts))
            stats.max_release_revokers = max(stats.max_release_revokers,
                                             result.max_release_revokers)
            if result.violations:
                stats.counterexample = scenario
                stats.result = result
                return stats
        stats.exhausted = True
        return stats
