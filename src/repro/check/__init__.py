"""Systematic schedule/fault exploration checker.

This package drives the deterministic simulation through *controlled*
schedules and checks protocol invariants after every step:

- :mod:`repro.check.scenario` — a JSON-serializable :class:`Scenario`
  (topology, workload injections, crash/partition placements, and the
  same-time tie-break choices) plus :func:`run_scenario` to execute one;
- :mod:`repro.check.probes` — the invariant probe layer (no known orphan
  is ever delivered, live chains stay structurally sound, dependency
  vectors cover every non-stable causal dependency, Theorem 4's release
  bound via the harness);
- :mod:`repro.check.explorer` — bounded DFS over tie-break choices for
  tiny configs and seeded random sampling for 3-6 process configs;
- :mod:`repro.check.shrinker` — delta debugging that minimizes a
  violating scenario to a short replayable counterexample;
- :mod:`repro.check.mutants` — deliberately broken protocol variants
  used to prove the checker can actually detect violations;
- :mod:`repro.check.cli` — the ``python -m repro check`` entry point.
"""

from repro.check.explorer import (
    BoundedDFSExplorer,
    ExplorationStats,
    RandomExplorer,
    RandomScenarioSampler,
)
from repro.check.mutants import MUTANTS, mutant_factory
from repro.check.probes import ProbeSet
from repro.check.scenario import (
    CheckResult,
    ChoiceRecorder,
    Injection,
    Partition,
    Scenario,
    run_scenario,
)
from repro.check.shrinker import (
    ShrinkResult,
    dump_counterexample,
    load_counterexample,
    shrink,
)

__all__ = [
    "BoundedDFSExplorer",
    "CheckResult",
    "ChoiceRecorder",
    "ExplorationStats",
    "Injection",
    "MUTANTS",
    "Partition",
    "ProbeSet",
    "RandomExplorer",
    "RandomScenarioSampler",
    "Scenario",
    "ShrinkResult",
    "dump_counterexample",
    "load_counterexample",
    "mutant_factory",
    "run_scenario",
    "shrink",
]
