"""The invariant probe layer.

A :class:`ProbeSet` hangs checks off the harness's effect and step hooks
and accumulates violations.  Together with the checks the harness already
performs when ``check_invariants`` is on, every scenario run evaluates:

- **Theorem 1 (step form)** — no *known* orphan is ever delivered to the
  application: at delivery time the receiver's own incarnation-end table
  must not invalidate any piggybacked dependency.  (Transient *unknown*
  orphans are legitimate in optimistic logging — they are created while a
  failure announcement is still in flight and rolled back when it lands —
  so full orphan-freedom is only a quiescent property, checked by
  ``DependencyOracle.check_consistency`` at settle time.)  The probe
  evaluates the raw table via ``vector_known_orphan`` rather than the
  protocol's own ``_is_orphan_message`` so a variant that breaks its
  orphan check cannot also blind the checker.
- **Theorem 3 (coverage)** — after every step, each live process's
  dependency vector still covers every non-stable interval of *other*
  processes in its causal past.  The protocol nullifies an entry only
  when its log table proves stability, and protocol stability knowledge
  is a subset of the oracle's, so on a correct protocol this never fires;
  a variant that forgets piggybacked entries trips it.
- **chain integrity** — a live chain never contains a rolled-back
  interval (``DependencyOracle.chain_integrity_violations``), the
  structural subset of consistency that must hold after *every* step.
- **Theorem 4** — the harness itself checks the release bound (at most K
  potential revokers per released message) on every ``ReleaseMessage``
  effect, and the empty-revoker rule on every output commit.
- **per-message K discipline** — a released message that carries its own
  bound (Section 4.2) must satisfy it structurally: its piggybacked
  vector holds at most ``k_limit`` non-null entries, and under an
  adaptive-K run the stamped bound never exceeds the controller ceiling
  ``resolved_k_max()`` (the effective-K-stays-bounded invariant).

Each distinct violation is reported once (running on after a violation
would repeat it every step).
"""

from __future__ import annotations

from typing import List, Set

from repro.core.effects import Effect, MessageDelivered, ReleaseMessage
from repro.core.entry import Entry
from repro.runtime.harness import ProcessHost, SimulationHarness


class ProbeSet:
    """Step- and effect-level invariant checks for one harness run."""

    def __init__(self) -> None:
        self.violations: List[str] = []
        self._seen: Set[str] = set()

    def install(self, harness: SimulationHarness) -> None:
        harness.add_effect_probe(self._on_effect)
        harness.add_step_probe(self._on_step)

    # -- reporting ---------------------------------------------------------

    def _report(self, text: str) -> None:
        if text not in self._seen:
            self._seen.add(text)
            self.violations.append(text)

    # -- effect-level checks -----------------------------------------------

    def _on_effect(self, host: ProcessHost, effect: Effect) -> None:
        if isinstance(effect, ReleaseMessage):
            self._check_release_k(host, effect)
            return
        if not isinstance(effect, MessageDelivered) or effect.replay:
            return
        msg = effect.message
        if msg.src < 0:
            return  # environment messages carry no dependencies
        if host.protocol.vector_known_orphan(msg.tdv):
            self._report(
                f"known orphan {msg.msg_id} delivered to the application "
                f"at P{host.pid} (its incarnation-end table already "
                f"invalidates a piggybacked dependency)"
            )

    def _check_release_k(self, host: ProcessHost, effect: ReleaseMessage) -> None:
        """Per-message K discipline (messages carrying their own bound)."""
        msg = effect.message
        if msg.src < 0 or msg.k_limit is None:
            return
        config = host.harness.config
        if config.adaptive_k and msg.k_limit > config.resolved_k_max():
            self._report(
                f"adaptive-K bound escaped: {msg.msg_id} released by "
                f"P{host.pid} stamped k={msg.k_limit} above the controller "
                f"ceiling k_max={config.resolved_k_max()}"
            )
        non_null = msg.tdv.non_null_count()
        if non_null > msg.k_limit:
            self._report(
                f"per-message K violated: {msg.msg_id} released by "
                f"P{host.pid} with {non_null} non-null dependencies > "
                f"its own bound k={msg.k_limit}"
            )

    # -- step-level checks ---------------------------------------------------

    def _on_step(self, harness: SimulationHarness) -> None:
        for text in harness.oracle.chain_integrity_violations():
            self._report(text)
        self._check_vector_coverage(harness)

    def _check_vector_coverage(self, harness: SimulationHarness) -> None:
        """Theorem 3: non-stable causal dependencies stay in the vector.

        Own-process entries are exempt: a process's entry for itself is
        nullified by its own flush (Theorem 2 / Corollary 2), which is
        exactly the event that makes the corresponding intervals stable,
        and the residual race is within a single event callback.
        """
        oracle = harness.oracle
        for host in harness.hosts:
            if host.down or getattr(host.protocol, "failed", False):
                continue
            live = oracle.live_interval(host.pid)
            if live is None:
                continue
            carried = dict(host.protocol.tdv_entries())
            for iid in oracle.causal_past(live):
                qid, inc, sii = iid
                if qid == host.pid:
                    continue
                node = oracle.node(iid)
                if node.stable or node.rolled_back:
                    continue
                entry = carried.get(qid)
                if entry is None or entry < Entry(inc, sii):
                    self._report(
                        f"Theorem 3 violated: P{host.pid} causally depends "
                        f"on non-stable interval {iid} but its dependency "
                        f"vector carries {entry} for P{qid}"
                    )
