"""Delta-debugging shrinker and counterexample persistence.

Given a violating scenario, :func:`shrink` minimizes it with classic
ddmin passes over each scenario component — injections, crashes,
partitions, the tie-break choice list — plus horizon reduction, iterated
to a fixpoint under a run budget.  The reduction predicate is simply
"re-running the candidate still violates *some* invariant": any smaller
failing scenario is a better counterexample.

:func:`dump_counterexample` writes the shrunk scenario together with the
violations, the exact decision path, and a filtered protocol-level trace
as one JSON file; :func:`load_counterexample` restores the scenario so
``python -m repro check replay`` (or a test) can re-execute it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.check.scenario import CheckResult, Scenario, run_scenario
from repro.runtime.harness import ProtocolFactory

T = TypeVar("T")

COUNTEREXAMPLE_FORMAT = "repro-check-counterexample-v1"


@dataclass
class ShrinkResult:
    """A minimized counterexample."""

    scenario: Scenario
    result: CheckResult
    runs: int

    @property
    def trace_length(self) -> int:
        return len(self.result.trace)


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _ddmin(items: List[T], still_fails: Callable[[List[T]], bool],
           budget: _Budget) -> List[T]:
    """Classic ddmin: greedily remove chunks while the test still fails."""
    chunks = 2
    while len(items) >= 2:
        size = max(1, len(items) // chunks)
        reduced = False
        for start in range(0, len(items), size):
            complement = items[:start] + items[start + size:]
            if not budget.take():
                return items
            if still_fails(complement):
                items = complement
                chunks = max(2, chunks - 1)
                reduced = True
                break
        if not reduced:
            if size == 1:
                break
            chunks = min(len(items), chunks * 2)
    if len(items) == 1:
        if budget.take() and still_fails([]):
            return []
    return items


def shrink(
    scenario: Scenario,
    protocol_factory: Optional[ProtocolFactory] = None,
    max_runs: int = 400,
) -> ShrinkResult:
    """Minimize a violating ``scenario``; raises if it does not violate."""
    budget = _Budget(max_runs)
    last_failing: List[CheckResult] = []

    def fails(candidate: Scenario) -> bool:
        result = run_scenario(candidate, protocol_factory)
        if result.violations:
            last_failing.append(result)
            del last_failing[:-1]
        return bool(result.violations)

    if not budget.take() or not fails(scenario):
        raise ValueError("scenario does not violate any invariant; "
                         "nothing to shrink")
    current = scenario

    def attempt(candidate: Scenario) -> bool:
        nonlocal current
        if budget.take() and fails(candidate):
            current = candidate
            return True
        return False

    changed = True
    while changed and budget.used < budget.limit:
        changed = False
        before = current

        injections = _ddmin(
            list(current.injections),
            lambda items: fails(replace(current, injections=items)),
            budget,
        )
        if len(injections) < len(current.injections):
            current = replace(current, injections=injections)

        crashes = _ddmin(
            list(current.crashes),
            lambda items: fails(replace(current, crashes=items)),
            budget,
        )
        if len(crashes) < len(current.crashes):
            current = replace(current, crashes=crashes)

        partitions = _ddmin(
            list(current.partitions),
            lambda items: fails(replace(current, partitions=items)),
            budget,
        )
        if len(partitions) < len(current.partitions):
            current = replace(current, partitions=partitions)

        # Choice-list reduction: positions are meaningful, so only try
        # suffix truncation and zeroing individual picks (a zero is the
        # engine's default order — the "simplest" choice).
        while current.choices:
            half = list(current.choices[:len(current.choices) // 2])
            if not attempt(replace(current, choices=half)):
                break
        for i, pick in enumerate(current.choices):
            if pick != 0:
                zeroed = list(current.choices)
                zeroed[i] = 0
                attempt(replace(current, choices=zeroed))

        # Horizon reduction: half it, or cut just past the last event.
        last_event = max(
            [i.time for i in current.injections]
            + [t for t, _ in current.crashes]
            + [p.end for p in current.partitions]
            + [0.0]
        )
        for horizon in sorted({round(current.horizon / 2, 1),
                               round(last_event + 5.0, 1)}):
            if horizon < current.horizon:
                attempt(replace(current, horizon=horizon))

        changed = current != before

    final = last_failing[0] if last_failing else run_scenario(
        current, protocol_factory)
    return ShrinkResult(scenario=current, result=final, runs=budget.used)


# -- persistence -------------------------------------------------------------


def dump_counterexample(path: str, scenario: Scenario, result: CheckResult,
                        mutant: Optional[str] = None) -> None:
    """Write a replayable counterexample file.

    ``mutant`` names the broken protocol variant the violation was found
    against (``None`` for the real protocol) so replay can rebuild the
    same protocol factory.
    """
    payload = {
        "format": COUNTEREXAMPLE_FORMAT,
        "mutant": mutant,
        "scenario": scenario.to_dict(),
        "violations": result.violations,
        "choices_taken": result.choices,
        "choice_counts": result.counts,
        "events_executed": result.events_executed,
        "trace": [
            {"time": event.time, "category": event.category,
             "process": event.process,
             "data": {k: str(v) for k, v in event.data.items()}}
            for event in result.trace
        ],
    }
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def load_counterexample(path: str) -> Tuple[Scenario, Optional[str]]:
    """Restore ``(scenario, mutant_name)`` from a counterexample file."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != COUNTEREXAMPLE_FORMAT:
        raise ValueError(f"{path} is not a {COUNTEREXAMPLE_FORMAT} file")
    return Scenario.from_dict(payload["scenario"]), payload.get("mutant")
