"""Replayable check scenarios.

A :class:`Scenario` is a complete JSON-serializable description of one
controlled run: topology (n, K, seed), token-workload injections,
crash/partition placements, the horizon, and the schedule *choices* — the
indices an external tie-breaker picks among same-time engine events.
``run_scenario`` executes one scenario with the invariant probe layer
installed and returns a :class:`CheckResult`.

Scenarios use a **lockstep** network (fixed unit latency, no jitter, no
per-entry cost) so that independently sent messages arrive at the same
virtual time: same-time ties are exactly the schedule freedom the real
system has, and the explorer enumerates or samples them through the
engine's tie-breaker hook.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.failures.injector import (
    CrashEvent,
    FailureEvent,
    FailureSchedule,
    HealEvent,
    PartitionEvent,
)
from repro.runtime.config import SimConfig
from repro.runtime.harness import ProtocolFactory, SimulationHarness
from repro.sim.engine import EventHandle
from repro.sim.trace import TraceEvent
from repro.workloads.random_peers import TokenBehavior


@dataclass(frozen=True)
class Injection:
    """One outside-world token handed to ``dst`` at ``time``."""

    time: float
    dst: int
    token: int = 0
    hops: int = 2
    emit_output: bool = False

    def payload(self) -> dict:
        return {"token": self.token, "hops": self.hops,
                "emit_output": self.emit_output}


@dataclass(frozen=True)
class Partition:
    """Split the network into ``islands`` during [start, end)."""

    start: float
    end: float
    islands: Tuple[Tuple[int, ...], ...]


class ChoiceRecorder:
    """Engine tie-breaker that replays a forced choice prefix and records
    every decision it makes.

    Beyond the prefix it falls back to index 0 (the engine's default
    order) or, when ``seed`` is given, to a seeded uniform pick — the
    random explorer's schedule perturbation.  ``taken``/``counts`` hold
    the full decision path, which the DFS explorer uses to branch and the
    counterexample dump stores for replay.
    """

    def __init__(self, prefix: Sequence[int] = (), seed: Optional[int] = None):
        self.prefix = list(prefix)
        self._rng = random.Random(seed) if seed is not None else None
        self.taken: List[int] = []
        self.counts: List[int] = []

    def __call__(self, candidates: List[EventHandle]) -> int:
        position = len(self.taken)
        if position < len(self.prefix):
            # A shrunk scenario can drift (fewer same-time events than the
            # original run); clamp rather than abort the replay.
            index = min(self.prefix[position], len(candidates) - 1)
        elif self._rng is not None:
            index = self._rng.randrange(len(candidates))
        else:
            index = 0
        self.taken.append(index)
        self.counts.append(len(candidates))
        return index


@dataclass
class CheckResult:
    """Outcome of one scenario run."""

    violations: List[str]
    #: Full tie-break decision path actually taken (prefix + fallbacks).
    choices: List[int]
    #: Number of same-time candidates at each decision point.
    counts: List[int]
    events_executed: int
    outputs_committed: int
    max_release_revokers: int
    trace: List[TraceEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


#: Trace categories worth keeping in a counterexample dump — the protocol
#: story, without per-transmission noise.
TRACE_KEEP = (
    "msg.deliver", "msg.release", "msg.discard", "msg.duplicate",
    "output.", "recovery.", "failure.", "ann.broadcast",
    "net.partition", "net.heal", "net.drop",
)


@dataclass
class Scenario:
    """One fully determined checkable run."""

    n: int = 3
    k: Optional[int] = 1
    seed: int = 0
    horizon: float = 40.0
    injections: List[Injection] = field(default_factory=list)
    crashes: List[Tuple[float, int]] = field(default_factory=list)
    partitions: List[Partition] = field(default_factory=list)
    #: Forced tie-break prefix (DFS exploration / replay).
    choices: List[int] = field(default_factory=list)
    #: Seeded random tie-breaking beyond the prefix (random exploration);
    #: ``None`` falls back to the engine's default order.
    choice_seed: Optional[int] = None
    # Timers are tightened versus SimConfig defaults so stability (and
    # therefore nullification/release) happens inside short horizons.
    flush_interval: float = 10.0
    checkpoint_interval: float = 40.0
    notify_interval: float = 5.0
    restart_delay: float = 5.0

    # -- construction ------------------------------------------------------

    def config(self) -> SimConfig:
        return SimConfig(
            n=self.n,
            k=self.k,
            seed=self.seed,
            flush_interval=self.flush_interval,
            checkpoint_interval=self.checkpoint_interval,
            notify_interval=self.notify_interval,
            restart_delay=self.restart_delay,
            # Lockstep network: maximal same-time ties for the explorer.
            msg_latency_base=1.0,
            msg_latency_jitter=0.0,
            per_entry_latency=0.0,
            control_latency=1.0,
        )

    def failure_schedule(self) -> FailureSchedule:
        events: List[FailureEvent] = [
            CrashEvent(time, pid) for time, pid in self.crashes
        ]
        for part in self.partitions:
            events.append(PartitionEvent(part.start, part.islands))
            events.append(HealEvent(part.end))
        return FailureSchedule(events)

    def with_choices(self, choices: Sequence[int],
                     choice_seed: Optional[int] = None) -> "Scenario":
        return replace(self, choices=list(choices), choice_seed=choice_seed)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["injections"] = [asdict(i) for i in self.injections]
        data["partitions"] = [
            {"start": p.start, "end": p.end,
             "islands": [list(group) for group in p.islands]}
            for p in self.partitions
        ]
        data["crashes"] = [[t, pid] for t, pid in self.crashes]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            n=data["n"],
            k=data.get("k"),
            seed=data.get("seed", 0),
            horizon=data.get("horizon", 40.0),
            injections=[Injection(**i) for i in data.get("injections", [])],
            crashes=[(t, pid) for t, pid in data.get("crashes", [])],
            partitions=[
                Partition(p["start"], p["end"],
                          tuple(tuple(g) for g in p["islands"]))
                for p in data.get("partitions", [])
            ],
            choices=list(data.get("choices", [])),
            choice_seed=data.get("choice_seed"),
            flush_interval=data.get("flush_interval", 10.0),
            checkpoint_interval=data.get("checkpoint_interval", 40.0),
            notify_interval=data.get("notify_interval", 5.0),
            restart_delay=data.get("restart_delay", 5.0),
        )

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def load(cls, path: str) -> "Scenario":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def run_scenario(
    scenario: Scenario,
    protocol_factory: Optional[ProtocolFactory] = None,
) -> CheckResult:
    """Execute ``scenario`` under the probe layer and report the outcome.

    The run is fully deterministic given the scenario (including its
    ``choice_seed``), so any violation found here can be replayed from the
    serialized form alone.
    """
    from repro.check.probes import ProbeSet  # circular-at-import otherwise

    kwargs = {}
    if protocol_factory is not None:
        kwargs["protocol_factory"] = protocol_factory
    harness = SimulationHarness(
        scenario.config(), TokenBehavior(),
        failures=scenario.failure_schedule(), **kwargs,
    )
    probes = ProbeSet()
    probes.install(harness)
    recorder = ChoiceRecorder(scenario.choices, seed=scenario.choice_seed)
    harness.engine.set_tie_breaker(recorder)
    for injection in scenario.injections:
        harness.inject_at(injection.time, injection.dst, injection.payload())
    harness.run(scenario.horizon)
    violations = list(harness.violations) + list(probes.violations)
    return CheckResult(
        violations=violations,
        choices=list(recorder.taken),
        counts=list(recorder.counts),
        events_executed=harness.engine.events_executed,
        outputs_committed=len(harness.committed_outputs),
        max_release_revokers=harness.max_release_revokers,
        trace=[e for e in harness.tracer.events
               if e.category.startswith(TRACE_KEEP)],
    )
