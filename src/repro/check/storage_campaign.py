"""Seeded storage-fault campaigns for the durable file-log backend.

Two campaign styles, both deterministic given their seed:

- :func:`fault_campaign` — randomized runs on the ``filelog`` backend with
  crashes plus paired storage faults (a torn final write at the crash,
  fsync lies *covered* by a later honest group commit, transient EIO
  bursts, I/O stalls).  Every run must finish with zero invariant
  violations and zero durability violations.
- :func:`fsync_sweep` — crash one process at *every* fsync boundary of a
  baseline run (``crash_after_fsyncs`` faults), i.e. the classic
  crash-consistency sweep: whatever prefix of the journal survives, the
  REDO-only restart must rebuild a state that loses no committed output
  and re-commits no duplicate.

The extra check both campaigns add on top of the harness invariants and
the :class:`~repro.check.probes.ProbeSet` is :func:`durability_violations`:
after the run settles, every output that was committed to the outside
world must (a) be unique, (b) originate from an interval the oracle still
considers valid (never rolled back, not an orphan), and (c) still be
recorded as committed in its process's stable storage — the at-most-once
guard that survives REDO replay.

Schedule-design note: a lying fsync whose bytes are *never* covered by a
later honest fsync before the device crashes is genuinely unrecoverable —
announced-stable intervals are silently lost, which no local protocol can
detect (reading the file back returns the cached bytes).  The campaign
therefore arms ``fsync_lie`` faults several flush intervals before the
victim's crash, so the per-flush group commit covers the lie first; the
uncovered case is exercised (and its belief/truth counter divergence
asserted) by the unit tests instead.  ``bit_flip`` faults are likewise
covered by unit tests: a flip inside already-announced-stable journal
bytes is indistinguishable from media loss and needs replication, not
logging, to survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.check.probes import ProbeSet
from repro.failures.injector import (
    CrashEvent,
    FailureSchedule,
    StorageFaultEvent,
)
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.random_peers import RandomPeersWorkload


def durability_violations(harness: SimulationHarness) -> List[str]:
    """Post-settle durability checks over the committed-output ledger."""
    violations: List[str] = []
    seen = set()
    for _, record in harness.committed_outputs:
        oid = record.output_id
        if oid in seen:
            violations.append(f"output {oid} committed more than once")
            continue
        seen.add(oid)
        interval = (record.process, record.send_interval.inc,
                    record.send_interval.sii)
        if not harness.oracle.exists(interval):
            violations.append(
                f"output {oid} committed from unknown interval {interval}")
            continue
        node = harness.oracle.node(interval)
        if node.rolled_back:
            violations.append(
                f"output {oid} committed from rolled-back interval "
                f"{interval} (committed output was revoked)")
        elif harness.oracle.is_orphan(interval):
            violations.append(
                f"output {oid} committed from orphan interval {interval}")
        storage = harness.hosts[record.process].protocol.storage
        if not storage.output_committed(oid):
            violations.append(
                f"output {oid} no longer recorded as committed in P"
                f"{record.process}'s stable storage (REDO lost the "
                f"at-most-once guard)")
    return violations


@dataclass
class CampaignRun:
    """One campaign run's identity and outcome."""

    index: int
    seed: int
    description: str
    violations: List[str] = field(default_factory=list)
    outputs_committed: int = 0
    recoveries: int = 0
    fsync_lies: int = 0
    torn_dropped: int = 0
    io_retries: int = 0
    storage_deaths: int = 0


@dataclass
class CampaignResult:
    """Aggregate outcome of a campaign."""

    runs: List[CampaignRun] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(not r.violations for r in self.runs)

    @property
    def failures(self) -> List[CampaignRun]:
        return [r for r in self.runs if r.violations]

    def summary(self) -> str:
        total = len(self.runs)
        outputs = sum(r.outputs_committed for r in self.runs)
        recoveries = sum(r.recoveries for r in self.runs)
        lies = sum(r.fsync_lies for r in self.runs)
        torn = sum(r.torn_dropped for r in self.runs)
        retries = sum(r.io_retries for r in self.runs)
        deaths = sum(r.storage_deaths for r in self.runs)
        status = "clean" if self.clean else f"{len(self.failures)} FAILED"
        return (f"{total} run(s) {status}: {outputs} outputs committed, "
                f"{recoveries} REDO recoveries, {lies} fsync lies, "
                f"{torn} torn records dropped, {retries} I/O retries, "
                f"{deaths} dead-storage crashes")


def _run_one(config: SimConfig, schedule: FailureSchedule,
             horizon: float, rate: float = 1.0) -> Tuple[List[str], object]:
    """Run one seeded scenario; return (violations, metrics)."""
    workload = RandomPeersWorkload(rate=rate)
    harness = SimulationHarness(config, workload.behavior(),
                                failures=schedule)
    probes = ProbeSet()
    probes.install(harness)
    workload.install(harness, until=horizon - 100.0)
    try:
        harness.run(horizon)
        metrics = harness.metrics()
        violations = list(metrics.violations)
        violations.extend(probes.violations)
        violations.extend(durability_violations(harness))
    finally:
        harness.close()
    return violations, metrics


# With flush_interval = _FLUSH, a lie armed at t is consumed within one
# flush period and covered by the next honest per-flush group commit, so
# any crash >= 3 periods after the arm sees fully durable announced state.
_FLUSH = 20.0
_LIE_COVER_MARGIN = 3 * _FLUSH


def _campaign_schedule(rng: random.Random, n: int,
                       horizon: float) -> Tuple[FailureSchedule, str]:
    """One randomized crash + storage-fault schedule (lies always covered)."""
    events: List[object] = []
    parts: List[str] = []

    crash_times = sorted(
        rng.uniform(80.0, horizon - 80.0)
        for _ in range(rng.randint(1, 3))
    )
    crash_pids = [rng.randrange(n) for _ in crash_times]
    for t, pid in zip(crash_times, crash_pids):
        events.append(CrashEvent(t, pid))
    parts.append("crash " + ",".join(
        f"P{p}@{t:.0f}" for t, p in zip(crash_times, crash_pids)))

    # Torn final write: armed on a crashing process a bit more than one
    # flush period before its crash, so at least one flush batch is held
    # in flight (an armed tear suppresses tolerant commits — the write
    # the crash interrupts never reaches its fsync) and the truncation at
    # restart really does drop a half-written record tail.
    torn_idx = rng.randrange(len(crash_times))
    events.append(StorageFaultEvent(
        max(1.0, crash_times[torn_idx] - 1.2 * _FLUSH),
        crash_pids[torn_idx], "torn_write"))
    parts.append(f"torn P{crash_pids[torn_idx]}")

    # Covered fsync lie: arm it >= _LIE_COVER_MARGIN before the victim's
    # crash so an honest per-flush commit persists the lied bytes first.
    lie_idx = rng.randrange(len(crash_times))
    lie_t = crash_times[lie_idx] - _LIE_COVER_MARGIN - rng.uniform(0.0, 20.0)
    if lie_t > 5.0:
        events.append(StorageFaultEvent(
            lie_t, crash_pids[lie_idx], "fsync_lie",
            count=rng.randint(1, 2)))
        parts.append(f"lie P{crash_pids[lie_idx]}@{lie_t:.0f}")

    # Transient EIO burst and an I/O stall anywhere: both are absorbed
    # (retries with capped backoff; stalls are recorded, not slept).
    events.append(StorageFaultEvent(
        rng.uniform(20.0, horizon - 50.0), rng.randrange(n), "eio",
        count=rng.randint(1, 3)))
    events.append(StorageFaultEvent(
        rng.uniform(20.0, horizon - 50.0), rng.randrange(n), "stall",
        duration=rng.uniform(0.1, 1.0)))

    return FailureSchedule(events), "; ".join(parts)


def fault_campaign(runs: int = 10, seed: int = 0, n: int = 6,
                   k: Optional[int] = 2,
                   horizon: float = 300.0) -> CampaignResult:
    """Randomized crash + storage-fault campaign on the filelog backend."""
    result = CampaignResult()
    for index in range(runs):
        rng = random.Random((seed << 20) ^ (index * 0x9E3779B1))
        config = SimConfig(
            n=n, k=k, seed=rng.randrange(1 << 30),
            flush_interval=_FLUSH,
            checkpoint_interval=4 * _FLUSH,
            storage_backend="filelog",
            fsync_policy=rng.choice(("group", "group", "strict")),
            group_commit_records=rng.choice((4, 8)),
        )
        schedule, description = _campaign_schedule(rng, n, horizon)
        violations, metrics = _run_one(config, schedule, horizon)
        result.runs.append(CampaignRun(
            index=index, seed=config.seed,
            description=f"{config.fsync_policy}; {description}",
            violations=violations,
            outputs_committed=metrics.outputs_committed,
            recoveries=metrics.storage_recoveries,
            fsync_lies=metrics.storage_fsync_lies,
            torn_dropped=metrics.storage_torn_dropped,
            io_retries=metrics.storage_io_retries,
            storage_deaths=metrics.storage_deaths,
        ))
    return result


@dataclass
class SweepPoint:
    """One crash-at-fsync-boundary run."""

    pid: int
    fsync_index: int
    violations: List[str] = field(default_factory=list)
    outputs_committed: int = 0
    recoveries: int = 0


@dataclass
class SweepResult:
    """Aggregate outcome of an fsync-boundary sweep."""

    baseline_fsyncs: List[int] = field(default_factory=list)
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(not p.violations for p in self.points)

    @property
    def failures(self) -> List[SweepPoint]:
        return [p for p in self.points if p.violations]

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.failures)} FAILED"
        recoveries = sum(p.recoveries for p in self.points)
        return (f"{len(self.points)} boundary crash(es) {status} "
                f"(baseline fsyncs per process: {self.baseline_fsyncs}; "
                f"{recoveries} REDO recoveries)")


def _sweep_config(seed: int, n: int, k: Optional[int]) -> SimConfig:
    return SimConfig(
        n=n, k=k, seed=seed,
        flush_interval=_FLUSH,
        checkpoint_interval=4 * _FLUSH,
        storage_backend="filelog",
    )


def fsync_sweep(seed: int = 0, n: int = 4, k: Optional[int] = 2,
                horizon: float = 200.0,
                max_points: int = 24) -> SweepResult:
    """Crash one process after its i-th fsync, for i sweeping the run.

    A baseline (fault-free) run counts each process's fsyncs; the sweep
    then re-runs the identical scenario with a ``crash_after_fsyncs``
    fault pinned to each sampled boundary.  The device dies immediately
    after that fsync reports success, the runtime converts it into a
    fail-stop crash, and the REDO-only restart must come back without
    losing a committed output or re-committing a duplicate.
    """
    result = SweepResult()

    # Baseline: how many fsync boundaries does each process cross?
    workload = RandomPeersWorkload(rate=1.0)
    harness = SimulationHarness(_sweep_config(seed, n, k),
                                workload.behavior(),
                                failures=FailureSchedule.none())
    workload.install(harness, until=horizon - 80.0)
    try:
        harness.run(horizon)
        result.baseline_fsyncs = [
            host.protocol.storage.fsyncs for host in harness.hosts
        ]
    finally:
        harness.close()

    per_pid = max(1, max_points // max(1, n))
    for pid, total in enumerate(result.baseline_fsyncs):
        if total <= 0:
            continue
        stride = max(1, total // per_pid)
        boundaries = list(range(1, total + 1, stride))
        for index in boundaries:
            schedule = FailureSchedule([
                StorageFaultEvent(0.0, pid, "crash_after_fsyncs",
                                  count=index)
            ])
            violations, metrics = _run_one(
                _sweep_config(seed, n, k), schedule, horizon)
            result.points.append(SweepPoint(
                pid=pid, fsync_index=index,
                violations=violations,
                outputs_committed=metrics.outputs_committed,
                recoveries=metrics.storage_recoveries,
            ))
    return result
