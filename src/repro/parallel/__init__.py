"""Epoch-barrier parallel execution of the simulation on real OS cores.

- :mod:`repro.parallel.runner` — the coordinator (:class:`ParallelHarness`);
- :mod:`repro.parallel.worker` — the per-core worker harness and loop;
- :mod:`repro.parallel.shm` — shared-memory staging of snapshot columns;
- :mod:`repro.parallel.trace` — canonical ``dep.*`` trace ordering used by
  the serial/parallel differential suite and post-hoc certification.
"""

from repro.parallel.runner import ParallelHarness, lookahead, merge_metrics
from repro.parallel.trace import canonical_dep_events, dump_canonical, render_jsonl

__all__ = [
    "ParallelHarness",
    "lookahead",
    "merge_metrics",
    "canonical_dep_events",
    "dump_canonical",
    "render_jsonl",
]
