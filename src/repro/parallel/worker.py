"""The worker side of epoch-parallel execution.

Each worker OS process runs a :class:`_WorkerHarness` — a full
:class:`~repro.runtime.harness.SimulationHarness` over all ``n`` protocol
instances, of which only the *local* slice (``pid % workers == worker_id``,
matching :class:`~repro.sim.shard.ShardedEngine` placement) ever executes:
only local pids get timers, workload injections, and failure events, and
the :class:`WorkerNetwork` exports any transmission addressed to a remote
pid into the epoch outbox instead of scheduling it locally.

Determinism contract (what makes the merged run bit-identical to serial
sharded execution):

- all named rng streams are derived from the root seed, and every stream
  is drawn *only* on the worker that owns its process or channel —
  workload installation runs identically in every worker (consuming the
  same draws), channel latencies are drawn at the sender's worker, and
  notify-fanout peers at the notifying pid's worker;
- workload injections consume the global injection-sequence counter in
  install order in every worker, so message ids match the serial run even
  though each worker schedules only its local subset;
- within a worker, events are fired in ``(time, priority, seq)`` order
  exactly as the serial engine would fire the same subsequence.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.failures.injector import (
    CrashEvent,
    FailureSchedule,
    StorageFaultEvent,
)
from repro.net.message import LogProgressNotification
from repro.net.network import Network
from repro.parallel import shm as shm_mod
from repro.parallel.shm import ArenaMap, ShmSnapshotRef, SnapshotArena
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness

#: One cross-worker delivery: ``(arrival, priority, gen_time, src,
#: counter, dst, payload, label)``.  The first five fields are the
#: canonical barrier-merge sort key; ``counter`` is a per-worker tiebreak
#: that preserves each sender's generation order.
OutboxEntry = Tuple[float, int, float, int, int, int, Any, Optional[str]]

#: Engine-step safety net per epoch (mirrors the serial harness budget).
MAX_EPOCH_EVENTS = 20_000_000

#: Sentinel distinguishing "not yet staged" from "staging declined".
_UNSTAGED = object()


def worker_config(config: SimConfig) -> SimConfig:
    """The per-worker view of a parallel run's config: in-process serial
    execution, no inline oracle (certification is post-hoc from ``dep.*``
    traces), single-heap engine (worker-local order equals the sharded
    engine's per-shard order)."""
    return replace(
        config,
        shards=1,
        parallel_workers=0,
        oracle_enabled=False,
        check_invariants=False,
    )


class WorkerNetwork(Network):
    """Network that exports remote-destination deliveries to the outbox."""

    def __init__(self, *args: Any, worker_id: int, workers: int,
                 **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._worker_id = worker_id
        self._workers = workers
        self.outbox: List[OutboxEntry] = []
        self._outbox_counter = itertools.count()

    def _deliver_at(self, arrival: float, src: int, dst: int, payload: Any,
                    label: Optional[str] = None) -> None:
        if dst % self._workers == self._worker_id:
            super()._deliver_at(arrival, src, dst, payload, label=label)
            return
        self.outbox.append((arrival, 0, self.engine.now, src,
                            next(self._outbox_counter), dst, payload, label))


class _WorkerHarness(SimulationHarness):
    """One worker's shard of the deployment (all hosts built, local slice
    driven)."""

    def __init__(self, config: SimConfig, behavior: Any,
                 failures: Optional[FailureSchedule], worker_id: int,
                 workers: int, protocol_factory: Any = None):
        self._worker_id = worker_id
        self._workers = workers
        local_failures = FailureSchedule([
            event for event in (failures or FailureSchedule.none())
            if isinstance(event, (CrashEvent, StorageFaultEvent))
            and event.pid % workers == worker_id
        ])
        kwargs = {}
        if protocol_factory is not None:
            kwargs["protocol_factory"] = protocol_factory
        super().__init__(worker_config(config), behavior,
                         failures=local_failures, **kwargs)
        self.arena: Optional[SnapshotArena] = None
        self.arenas: Optional[ArenaMap] = None
        if shm_mod._np is not None:
            self.arena = SnapshotArena()

    # -- construction overrides ------------------------------------------------

    def _build_network(self, config, faults, reliable_config):
        base = super()._build_network(config, faults, reliable_config)
        return WorkerNetwork(
            n=config.n,
            engine=self.engine,
            rngs=self.rngs,
            latency=base._latency,
            control_latency=base._control_latency,
            fifo=config.fifo,
            tracer=self.tracer,
            faults=faults,
            reliable_config=reliable_config,
            worker_id=self._worker_id,
            workers=self._workers,
        )

    def is_local(self, pid: int) -> bool:
        return pid % self._workers == self._worker_id

    def local_hosts(self):
        return [host for host in self.hosts if self.is_local(host.pid)]

    def _start_timers(self) -> None:
        config = self.config
        for host in self.hosts:
            if not self.is_local(host.pid):
                continue
            phase = (host.pid + 1) / (config.n + 1)
            self._periodic(config.flush_interval, phase, host.flush)
            self._periodic(config.checkpoint_interval, phase, host.checkpoint)
            self._periodic(config.notify_interval, phase, host.notify)
            if host.controller is not None:
                self._periodic(config.control_interval, phase,
                               host.control_tick)

    def inject_at(self, time: float, dst: int, payload: Any) -> None:
        # Consume the global sequence counter for *every* injection (all
        # workers run the same install calls), schedule only local ones.
        seq = next(self._inject_seq)
        if not self.is_local(dst):
            return
        self.engine.schedule_at(time, lambda: self.inject_now(dst, payload, seq),
                                label=f"inject->{dst}", shard=dst)

    # -- epoch protocol --------------------------------------------------------

    def attach_arenas(self, names: Dict[int, str]) -> None:
        self.arenas = ArenaMap(names, self._worker_id, self.arena)

    def begin(self, duration: float) -> None:
        """The pre-loop of :meth:`SimulationHarness.run`: fix the horizon,
        cancel beyond-horizon failures, start the local periodic timers."""
        # CPU accounting starts here so the reported figure covers the
        # run phase only — construction/install happen before the timed
        # region of a bench run (see perf.bench.run_scenario).
        self._cpu_mark = time.process_time()
        self._horizon = duration
        for event, handle in self._failure_handles:
            if event.time > duration:
                handle.cancel()
        self._start_timers()

    def run_epoch(self, bound: Optional[float]) -> None:
        """Fire every pending event with time strictly below ``bound``
        (or all of them when ``bound`` is None — the drain phases)."""
        if self.arena is not None:
            # Fence: the runner's two-phase barrier guarantees every
            # receiver materialized last epoch's staged snapshots before
            # any worker enters this epoch, so recycling is safe.
            self.arena.reset()
        engine = self.engine
        fired = 0
        while True:
            next_time = engine._peek_time()
            if next_time is None or (bound is not None and next_time >= bound):
                return
            engine.step()
            fired += 1
            if fired > MAX_EPOCH_EVENTS:
                raise RuntimeError(
                    f"exceeded {MAX_EPOCH_EVENTS} events in one epoch; "
                    "possible livelock")

    def take_outbox(self) -> List[OutboxEntry]:
        """Drain the cross-worker outbox, staging large dense snapshot
        payloads into this worker's shared-memory arena."""
        outbox, self.network.outbox = self.network.outbox, []
        if self.arena is None:
            return outbox
        staged: List[OutboxEntry] = []
        # One notify() fans a single snapshot out to many destinations;
        # stage the shared columns once and reuse the descriptor.
        seen: Dict[int, Optional[ShmSnapshotRef]] = {}
        for entry in outbox:
            payload = entry[6]
            if isinstance(payload, LogProgressNotification):
                key = id(payload.table)
                ref = seen.get(key, _UNSTAGED)
                if ref is _UNSTAGED:
                    ref = shm_mod.stage_snapshot(self.arena, self._worker_id,
                                                 payload.table)
                    seen[key] = ref
                if ref is not None:
                    payload = LogProgressNotification(payload.origin, ref)
                    entry = entry[:6] + (payload, entry[7])
            staged.append(entry)
        return staged

    def insert_arrivals(self, entries: List[OutboxEntry]) -> None:
        """Insert barrier-merged cross-worker arrivals, in the canonical
        order the coordinator sorted them into."""
        # Refs to the same staged block share one materialized snapshot —
        # mirroring the serial run, where every destination of one
        # notify() fanout receives the same (read-only) snapshot object.
        cache: Dict[ShmSnapshotRef, Any] = {}
        for arrival, priority, _gen, _src, _counter, dst, payload, label in entries:
            payload = self._materialize(payload, cache)
            self.engine.schedule_at_raw(
                arrival, self.network._arrive, (dst, payload),
                priority=priority, label=label, shard=dst,
            )

    def _materialize(self, payload: Any, cache: Dict[ShmSnapshotRef, Any]) -> Any:
        if (isinstance(payload, LogProgressNotification)
                and isinstance(payload.table, ShmSnapshotRef)):
            if self.arenas is None:
                raise RuntimeError("shm ref received before attach_arenas")
            ref = payload.table
            snap = cache.get(ref)
            if snap is None:
                snap = self.arenas.materialize(ref)
                cache[ref] = snap
            return LogProgressNotification(payload.origin, snap)
        return payload

    def peek(self) -> Optional[float]:
        return self.engine._peek_time()

    # -- settle helpers --------------------------------------------------------

    def restart_down(self) -> None:
        for host in self.local_hosts():
            if host.down:
                host.restart()

    def flush_local(self) -> None:
        for host in self.local_hosts():
            host.flush()

    def notify_local(self) -> None:
        for host in self.local_hosts():
            host.notify()

    def local_quiescent(self) -> bool:
        for host in self.local_hosts():
            if host.down:
                return False
            protocol = host.protocol
            if (protocol.send_buffer or protocol.receive_buffer
                    or len(protocol.output_buffer)):
                return False
        return True

    # -- results ---------------------------------------------------------------

    def collect_results(self) -> Dict[str, Any]:
        """Everything the coordinator needs: a local-slice metrics partial
        plus the raw totals mean/percentile fields must be recomputed
        from, the local ``dep.*`` trace, and the committed outputs."""
        local = self.local_hosts()
        saved_hosts = self.hosts
        self.hosts = local
        try:
            partial = self.metrics()
        finally:
            self.hosts = saved_hosts
        controllers = [h.controller for h in local if h.controller is not None]
        extras = {
            "send_hold_total": sum(
                h.protocol.stats.send_hold_time_total for h in local),
            "delivery_wait_total": sum(
                h.protocol.stats.delivery_wait_total for h in local),
            "delivered_count": sum(
                h.protocol.stats.deliveries - h.protocol.stats.replayed_deliveries
                for h in local),
            "output_wait_total": sum(
                h.protocol.stats.output_wait_total for h in local),
            "piggyback_total": self.network.piggyback_entries_total,
            "app_messages_sent": self.network.app_messages_sent,
            "output_latency_samples": list(self.output_latency_samples),
            "crash_events": list(self.crash_events),
            "rollback_events": list(self.rollback_events),
            "k_history": [k for c in controllers for _, k in c.history],
            "k_final": [float(c.k) for c in controllers],
            "k_decisions": sum(len(c.decisions) - 1 for c in controllers),
        }
        # Remote hosts run initialize() in every worker; keep only the
        # owning worker's copy of each process's dep events.
        dep_events = [
            (e.time, e.category, e.process, e.data)
            for e in self.tracer.events
            if e.category.startswith("dep.")
            and e.process is not None and self.is_local(e.process)
        ]
        committed = [
            (now, record.process, record.output_id)
            for now, record in self.committed_outputs
        ]
        return {
            "worker": self._worker_id,
            "metrics": partial,
            "extras": extras,
            "dep_events": dep_events,
            "committed": committed,
            "events_executed": self.engine.events_executed,
            "now": self.engine.now,
            "cpu_s": time.process_time() - getattr(self, "_cpu_mark", 0.0),
        }

    def close(self) -> None:
        super().close()
        if self.arenas is not None:
            self.arenas.close()
            self.arenas = None
        if self.arena is not None:
            self.arena.close()
            self.arena = None


def worker_main(conn: Any, worker_id: int, workers: int, config: SimConfig,
                behavior: Any, failures: Optional[FailureSchedule],
                workload: Any, install_until: float,
                protocol_factory: Any = None) -> None:
    """Command loop driven by :class:`repro.parallel.runner.ParallelHarness`.

    Runs in a forked child; every command is answered exactly once, and
    ``finish`` replies with the result payload and exits the loop.
    """
    harness = _WorkerHarness(config, behavior, failures, worker_id, workers,
                             protocol_factory=protocol_factory)
    try:
        if workload is not None:
            workload.install(harness, until=install_until)
        arena_name = harness.arena.name if harness.arena is not None else None
        conn.send(("ready", arena_name))
        while True:
            cmd, arg = conn.recv()
            if cmd == "start":
                duration, arena_names = arg
                if arena_names:
                    harness.attach_arenas(arena_names)
                harness.begin(duration)
                conn.send(("ok", harness.peek()))
            elif cmd == "insert":
                harness.insert_arrivals(arg)
                conn.send(("ok", harness.peek()))
            elif cmd == "run":
                harness.run_epoch(arg)
                conn.send(("done", (harness.take_outbox(), harness.peek(),
                                    harness.engine.now)))
            elif cmd == "advance":
                harness.engine.advance_to(arg)
                conn.send(("ok", None))
            elif cmd == "restart_down":
                harness.restart_down()
                conn.send(("done", (harness.take_outbox(), harness.peek(),
                                    harness.engine.now)))
            elif cmd == "quiescent":
                conn.send(("ok", harness.local_quiescent()))
            elif cmd == "flush":
                harness.flush_local()
                conn.send(("done", (harness.take_outbox(), harness.peek(),
                                    harness.engine.now)))
            elif cmd == "notify":
                harness.notify_local()
                conn.send(("done", (harness.take_outbox(), harness.peek(),
                                    harness.engine.now)))
            elif cmd == "finish":
                conn.send(("result", harness.collect_results()))
                return
            else:
                raise RuntimeError(f"unknown command {cmd!r}")
    except BaseException as exc:  # surface worker failures to the runner
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
    finally:
        harness.close()
