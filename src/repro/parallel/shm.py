"""Shared-memory staging for cross-worker snapshot columns.

Log-progress notifications dominate cross-worker traffic, and their dense
payload — the flat int64 ``pid*stride+inc`` columns of a
:class:`~repro.core.tables.TableSnapshot` — is exactly the columnar layout
:mod:`repro.core.columnar` already mandates.  Instead of pickling those
arrays through the coordinator pipe, each worker owns one
:class:`multiprocessing.shared_memory.SharedMemory` arena; a snapshot
crossing a worker boundary is staged into the sender's arena (one memcpy)
and travels as a tiny :class:`ShmSnapshotRef` descriptor.  The receiver
maps the peer arena and copies the columns back out when the arrival is
inserted at the epoch barrier.

Lifetime is fenced by the runner's two-phase barrier: arrivals of epoch
``e`` are materialized by every receiver *before* any worker starts epoch
``e + 1`` (insert is acknowledged before the next run command is issued),
so the sender may reset its arena at the start of each run phase without
a per-block reference count.

Everything degrades gracefully: without numpy, with list-backed columns,
with :class:`~repro.core.tables.SparseSnapshot` payloads, or when an
arena fills up mid-epoch, snapshots simply travel pickled through the
pipe instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

from repro.core import columnar
from repro.core.tables import TableSnapshot

_np = columnar.NUMPY

#: Stage a snapshot through shared memory only past this many column
#: entries; below it the pickle path is cheaper than the descriptor dance.
SHM_MIN_ENTRIES = 256

#: Default arena capacity per worker (int64 entries; 16 MiB).  Sized so a
#: full epoch of n=1024 fanout-gossip snapshots stages without overflow;
#: overflow falls back to pickling, so the cap trades speed for memory,
#: never correctness.
DEFAULT_CAPACITY = 1 << 21


@dataclass(frozen=True)
class ShmSnapshotRef:
    """Descriptor of a dense snapshot staged in a worker's arena."""

    worker: int
    offset: int          # int64-entry offset into the arena
    count: int           # number of int64 entries
    n: int
    stride: int


class SnapshotArena:
    """One worker's bump-allocated shared-memory staging block."""

    def __init__(self, capacity_entries: int = DEFAULT_CAPACITY,
                 name: Optional[str] = None):
        self.capacity = capacity_entries
        create = name is None
        if create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=capacity_entries * 8)
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            # Attaching registers the segment with this process's resource
            # tracker, which would try (and fail) to clean up the owner's
            # segment at interpreter exit; only the owner may track it.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        self.name = self._shm.name
        self._owner = create
        self._top = 0
        self._array = (_np.frombuffer(self._shm.buf, dtype=_np.int64)
                       if _np is not None else None)

    def reset(self) -> None:
        """Start a fresh epoch: all previously staged blocks are dead."""
        self._top = 0

    def put(self, cols) -> Optional[Tuple[int, int]]:
        """Stage an int64 ndarray; returns ``(offset, count)`` or ``None``
        when staging is unavailable (no numpy, wrong dtype, arena full)."""
        if self._array is None or not isinstance(cols, _np.ndarray):
            return None
        if cols.dtype != _np.int64:
            return None
        count = int(cols.size)
        if self._top + count > self.capacity:
            return None
        offset = self._top
        self._array[offset:offset + count] = cols
        self._top = offset + count
        return offset, count

    def view(self, offset: int, count: int):
        """Zero-copy ndarray view of a staged block (copy before keeping:
        the block dies at the sender's next epoch)."""
        if self._array is None:
            raise RuntimeError("numpy unavailable: arena views unsupported")
        return self._array[offset:offset + count]

    def close(self) -> None:
        self._array = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass


class ArenaMap:
    """Lazy attach-by-name view of every worker's arena."""

    def __init__(self, names: Dict[int, str], own_id: int,
                 own_arena: Optional[SnapshotArena]):
        self._names = names
        self._own_id = own_id
        self._own = own_arena
        self._attached: Dict[int, SnapshotArena] = {}

    def arena(self, worker: int) -> SnapshotArena:
        if worker == self._own_id and self._own is not None:
            return self._own
        arena = self._attached.get(worker)
        if arena is None:
            arena = SnapshotArena(name=self._names[worker])
            self._attached[worker] = arena
        return arena

    def materialize(self, ref: ShmSnapshotRef) -> TableSnapshot:
        """Rebuild a :class:`TableSnapshot` from a staged block (copies —
        the staged block is recycled next epoch)."""
        view = self.arena(ref.worker).view(ref.offset, ref.count)
        return TableSnapshot(ref.n, ref.stride, _np.array(view))

    def close(self) -> None:
        for arena in self._attached.values():
            arena.close()
        self._attached.clear()


def stage_snapshot(arena: Optional[SnapshotArena], worker: int,
                   snap) -> Optional[ShmSnapshotRef]:
    """Stage ``snap`` (a TableSnapshot) if profitable; ``None`` otherwise."""
    if arena is None or _np is None or not isinstance(snap, TableSnapshot):
        return None
    cols = snap.cols
    if not isinstance(cols, _np.ndarray) or cols.size < SHM_MIN_ENTRIES:
        return None
    placed = arena.put(cols)
    if placed is None:
        return None
    offset, count = placed
    return ShmSnapshotRef(worker, offset, count, snap.n, snap.stride)
