"""Epoch-barrier parallel runner: W shard heaps on W real OS processes.

The serial :class:`~repro.sim.shard.ShardedEngine` already partitions the
event queue into per-shard heaps but drains them on one core.  This
runner puts each shard group on its own forked worker and exploits the
network's minimum latency as conservative PDES lookahead:

    L = min(msg_latency_base - msg_latency_jitter, control_latency) > 0

Every cross-process message generated at time ``t`` arrives no earlier
than ``t + L``.  Each epoch the coordinator computes the global minimum
pending event time ``h`` (after inserting the previous epoch's
cross-worker arrivals) and lets every worker drain its heap through the
window ``[h, h + L)`` independently — no event fired in the window can
produce an arrival inside it.  At the barrier the workers' outboxes are
exchanged, canonically ordered, and inserted; the certified ``dep.*``
trace of the merged run is bit-identical to the serial sharded engine's.

The barrier is two-phase — *insert* is acknowledged by every receiver
before any *run* command is issued — which doubles as the lifetime fence
for the shared-memory snapshot arenas (:mod:`repro.parallel.shm`).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from typing import Any, Dict, List, Optional, Tuple

from repro.app.behavior import AppBehavior
from repro.failures.injector import (
    CrashEvent,
    FailureSchedule,
    StorageFaultEvent,
)
from repro.parallel.trace import DepEvent, canonical_dep_events, dump_canonical
from repro.parallel.worker import OutboxEntry, worker_main
from repro.runtime.config import SimConfig
from repro.runtime.metrics import RunMetrics, sample_mean, sample_percentile


def lookahead(config: SimConfig) -> float:
    """The conservative lookahead window (positive by config validation)."""
    return min(config.msg_latency_base - config.msg_latency_jitter,
               config.control_latency)


#: Canonical barrier-merge order for cross-worker arrivals.  ``src``
#: identifies the generating worker and ``counter`` preserves that
#: worker's generation order, so the sort is a deterministic function of
#: the run, independent of which worker's outbox drained first.
def _merge_key(entry: OutboxEntry):
    arrival, priority, gen_time, src, counter = entry[:5]
    return (arrival, priority, gen_time, src, counter)


class _EngineView:
    """Duck-typed stand-in for :attr:`SimulationHarness.engine` so bench
    code can read ``harness.engine.events_executed`` unchanged."""

    def __init__(self) -> None:
        self.events_executed = 0
        self.now = 0.0


# Fields whose merge is not a plain sum over worker partials.
_SET_FIELDS = frozenset({"n", "k", "duration", "slo_target"})
_MAX_FIELDS = frozenset({"max_send_hold", "max_piggyback_entries",
                         "max_release_revokers"})
_SPECIAL_FIELDS = frozenset({
    "mean_send_hold", "mean_delivery_wait", "mean_piggyback_entries",
    "mean_output_latency", "mean_ack_rtt", "mean_recovery_span",
    "output_latency_p50", "output_latency_p95", "output_latency_p99",
    "output_latency_count", "slo_attained",
    "adaptive_k", "k_mean", "k_final_mean",
    "violations",
})


def merge_metrics(partials: List[RunMetrics], extras: List[Dict[str, Any]],
                  duration: float) -> RunMetrics:
    """Combine per-worker :class:`RunMetrics` partials into the metrics
    the equivalent serial run would report.

    Counters sum (workers own disjoint process sets, and network counters
    are sender-local); maxima take the max; every mean/percentile field is
    recomputed from the raw totals and concatenated sample lists in
    ``extras`` — averaging per-worker means would weight workers, not
    events.
    """
    merged = RunMetrics(n=partials[0].n, k=partials[0].k, duration=duration)
    merged.slo_target = partials[0].slo_target
    for f in dataclasses.fields(RunMetrics):
        name = f.name
        if name in _SET_FIELDS or name in _SPECIAL_FIELDS:
            continue
        if name in _MAX_FIELDS:
            setattr(merged, name, max(getattr(p, name) for p in partials))
        else:
            setattr(merged, name, sum(getattr(p, name) for p in partials))

    released = merged.messages_released
    merged.mean_send_hold = (
        sum(e["send_hold_total"] for e in extras) / released if released else 0.0)
    delivered = sum(e["delivered_count"] for e in extras)
    merged.mean_delivery_wait = (
        sum(e["delivery_wait_total"] for e in extras) / delivered
        if delivered else 0.0)
    app_sent = sum(e["app_messages_sent"] for e in extras)
    merged.mean_piggyback_entries = (
        sum(e["piggyback_total"] for e in extras) / app_sent if app_sent else 0.0)
    committed = merged.outputs_committed
    merged.mean_output_latency = (
        sum(e["output_wait_total"] for e in extras) / committed
        if committed else 0.0)
    acked = merged.ctl_acked
    merged.mean_ack_rtt = (
        sum(p.mean_ack_rtt * p.ctl_acked for p in partials) / acked
        if acked else 0.0)

    samples: List[float] = []
    for e in extras:
        samples.extend(e["output_latency_samples"])
    merged.output_latency_count = len(samples)
    merged.output_latency_p50 = sample_percentile(samples, 50.0)
    merged.output_latency_p95 = sample_percentile(samples, 95.0)
    merged.output_latency_p99 = sample_percentile(samples, 99.0)
    if merged.slo_target > 0 and samples:
        within = sum(1 for s in samples if s <= merged.slo_target)
        merged.slo_attained = within / len(samples)

    merged.adaptive_k = any(p.adaptive_k for p in partials)
    if merged.adaptive_k:
        history = [k for e in extras for k in e["k_history"]]
        final = [k for e in extras for k in e["k_final"]]
        merged.k_mean = sample_mean(history if history else final)
        merged.k_final_mean = sample_mean(final)

    crash_events = sorted(t for e in extras for t, _pid in e["crash_events"])
    rollback_events = sorted(
        (t, pid) for e in extras for t, pid in e["rollback_events"])
    if crash_events and rollback_events:
        # Same crash-window attribution as SimulationHarness.metrics().
        crash_times = sorted(set(crash_events))
        spans = []
        for i, crash_time in enumerate(crash_times):
            window_end = (crash_times[i + 1] if i + 1 < len(crash_times)
                          else float("inf"))
            window = [t for t, _p in rollback_events
                      if crash_time <= t < window_end]
            if window:
                spans.append(max(window) - crash_time)
        if spans:
            merged.mean_recovery_span = sum(spans) / len(spans)

    merged.violations = [v for p in partials for v in p.violations]
    return merged


class ParallelHarness:
    """Drop-in bench/experiment harness running ``config.parallel_workers``
    worker processes.

    Duck-compatible with :class:`SimulationHarness` where the perf suite
    needs it: ``run(duration)``, ``metrics()``, ``engine.events_executed``,
    ``close()``.  The run is single-shot — ``run`` tears the workers down
    after collecting results.
    """

    def __init__(
        self,
        config: SimConfig,
        behavior: AppBehavior,
        failures: Optional[FailureSchedule] = None,
        workload: Any = None,
        install_until: float = 0.0,
        protocol_factory: Any = None,
    ):
        config.validate()
        if config.parallel_workers < 2:
            raise ValueError(
                "ParallelHarness needs parallel_workers >= 2; "
                "use SimulationHarness for serial runs")
        schedule = failures or FailureSchedule.none()
        for event in schedule:
            if not isinstance(event, (CrashEvent, StorageFaultEvent)):
                raise ValueError(
                    f"parallel execution supports only crash and storage "
                    f"fault events, got {type(event).__name__} (network "
                    f"perturbations require the serial harness)")
        self.config = config
        self.workers = config.parallel_workers
        self._lookahead = lookahead(config)
        self.engine = _EngineView()
        self._duration = 0.0
        self._finished = False
        self._partials: List[RunMetrics] = []
        self._extras: List[Dict[str, Any]] = []
        self._dep_events: List[DepEvent] = []
        self.committed_outputs: List[Tuple[float, int, Any]] = []
        self.violations: List[str] = []

        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for worker_id in range(self.workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child, worker_id, self.workers, config, behavior,
                      schedule, workload, install_until, protocol_factory),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._arena_names: Dict[int, str] = {}
        for worker_id, name in enumerate(self._collect()):
            if name is not None:
                self._arena_names[worker_id] = name
        self._peeks: List[Optional[float]] = [None] * self.workers
        self._nows: List[float] = [0.0] * self.workers
        #: Barrier statistics (exposed for perf analysis and tests).
        self.epochs = 0
        self.cross_messages = 0

    # -- worker plumbing -------------------------------------------------------

    def _collect(self) -> List[Any]:
        replies = []
        for worker_id, conn in enumerate(self._conns):
            try:
                tag, value = conn.recv()
            except EOFError:
                raise RuntimeError(f"worker {worker_id} died") from None
            if tag == "error":
                raise RuntimeError(f"worker {worker_id} failed: {value}")
            replies.append(value)
        return replies

    def _command_all(self, command: Tuple[str, Any]) -> List[Any]:
        for conn in self._conns:
            conn.send(command)
        return self._collect()

    def _note_run_replies(self, replies: List[Any]) -> List[List[OutboxEntry]]:
        outboxes = []
        for worker_id, (outbox, peek, now) in enumerate(replies):
            self._peeks[worker_id] = peek
            self._nows[worker_id] = now
            outboxes.append(outbox)
        return outboxes

    def _route(self, outboxes: List[List[OutboxEntry]]) -> None:
        """Exchange phase: group arrivals by destination worker, order
        them canonically, and insert before anyone runs again."""
        groups: List[List[OutboxEntry]] = [[] for _ in range(self.workers)]
        for outbox in outboxes:
            self.cross_messages += len(outbox)
            for entry in outbox:
                groups[entry[5] % self.workers].append(entry)
        pending = []
        for worker_id, group in enumerate(groups):
            if not group:
                continue
            group.sort(key=_merge_key)
            self._conns[worker_id].send(("insert", group))
            pending.append(worker_id)
        for worker_id in pending:
            tag, peek = self._conns[worker_id].recv()
            if tag == "error":
                raise RuntimeError(f"worker {worker_id} failed: {peek}")
            self._peeks[worker_id] = peek

    def _drain(self) -> None:
        """Epoch loop: run windows of width L until every queue is empty
        and no cross-worker arrival is in flight."""
        while True:
            times = [p for p in self._peeks if p is not None]
            if not times:
                return
            bound = min(times) + self._lookahead
            self.epochs += 1
            replies = self._command_all(("run", bound))
            self._route(self._note_run_replies(replies))

    def _align(self) -> None:
        """Advance every (drained) worker clock to the global frontier, so
        barrier-driven actions (restart, flush, notify) happen at the same
        virtual time the serial run would use."""
        target = max(self._nows + [self._duration])
        self._command_all(("advance", target))
        self._nows = [target] * self.workers
        self.engine.now = target

    def _barrier_action(self, command: str) -> None:
        replies = self._command_all((command, None))
        self._route(self._note_run_replies(replies))
        self._drain()

    # -- main loop -------------------------------------------------------------

    def run(self, duration: float, settle: bool = True) -> None:
        if self._finished:
            raise RuntimeError("ParallelHarness.run is single-shot")
        self._duration = duration
        self._peeks = self._command_all(("start", (duration, self._arena_names)))
        self._drain()
        if settle:
            self._settle()
        self._finish()

    def _settle(self, rounds: int = 4) -> None:
        """Mirror :meth:`SimulationHarness.settle` across the barrier."""
        self._align()
        self._barrier_action("restart_down")
        for _ in range(rounds):
            if all(self._command_all(("quiescent", None))):
                break
            self._align()
            self._barrier_action("flush")
            self._align()
            self._barrier_action("notify")

    def _finish(self) -> None:
        results = self._command_all(("finish", None))
        self._finished = True
        for proc in self._procs:
            proc.join(timeout=30)
        total_events = 0
        final_now = self.engine.now
        self.worker_cpu_s = [result.get("cpu_s", 0.0) for result in results]
        for result in results:
            self._partials.append(result["metrics"])
            self._extras.append(result["extras"])
            self._dep_events.extend(result["dep_events"])
            self.committed_outputs.extend(result["committed"])
            total_events += result["events_executed"]
            final_now = max(final_now, result["now"])
        self.engine.events_executed = total_events
        self.engine.now = final_now
        self.committed_outputs.sort(key=lambda rec: (rec[0], rec[1]))

    # -- results ---------------------------------------------------------------

    def metrics(self) -> RunMetrics:
        if not self._finished:
            raise RuntimeError("metrics() before run() completed")
        merged = merge_metrics(self._partials, self._extras, self._duration)
        self.violations = merged.violations
        return merged

    def dep_events(self) -> List[DepEvent]:
        """The merged ``dep.*`` trace in canonical order (see
        :mod:`repro.parallel.trace`)."""
        return canonical_dep_events(self._dep_events)

    def dump_dep_trace(self, path: str) -> int:
        return dump_canonical(self._dep_events, path)

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        self._conns = []
        self._procs = []
