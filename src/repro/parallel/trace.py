"""Canonical ordering and dumping of ``dep.*`` certification traces.

A parallel run produces one per-worker trace per worker process; a serial
run produces a single interleaved trace.  The interleaving of *different*
processes' same-time events is scheduler detail, not protocol behaviour —
each process's own event order is what the certifier's happened-before
reconstruction consumes.  The canonical form therefore stable-sorts
events by ``(time, process)``: per-process order is preserved exactly
(every process lives on exactly one worker), and cross-process same-time
order is normalized.  Serial and parallel runs of the same scenario must
produce byte-identical canonical dumps — the differential suite asserts
exactly that.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.sim.trace import TraceEvent

#: One canonical event: (time, category, process, data).
DepEvent = Tuple[float, str, int, Dict[str, Any]]


def as_dep_tuple(event: Any) -> DepEvent:
    """Normalize a :class:`TraceEvent` (or an equivalent tuple) to the
    canonical tuple shape."""
    if isinstance(event, TraceEvent):
        proc = -1 if event.process is None else event.process
        return (event.time, event.category, proc, dict(event.data))
    time, category, process, data = event
    return (float(time), category, -1 if process is None else process,
            dict(data))


def canonical_dep_events(events: Iterable[Any]) -> List[DepEvent]:
    """``dep.*`` events in canonical order.

    Stable sort by ``(time, process)``: per-process relative order (the
    semantic content) survives; cross-process same-time interleaving (the
    scheduler accident) is normalized away.
    """
    deps = []
    for event in events:
        normalized = as_dep_tuple(event)
        if normalized[1].startswith("dep."):
            deps.append(normalized)
    deps.sort(key=lambda e: (e[0], e[2]))
    return deps


def render_jsonl(events: Iterable[DepEvent]) -> str:
    """The canonical JSONL text (exact bytes the differential suite
    compares, and the format :mod:`repro.oracle.ingest` loads)."""
    lines = []
    for time, category, process, data in events:
        lines.append(json.dumps(
            {"time": time, "category": category, "process": process,
             "data": data},
            sort_keys=True,
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def dump_canonical(events: Iterable[Any], path: str) -> int:
    """Write the canonical ``dep.*`` dump; returns the event count."""
    deps = canonical_dep_events(events)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_jsonl(deps))
    return len(deps)
