"""Per-process stable storage model.

Stable storage survives crashes; volatile state does not.  This module
models exactly what the paper's recovery layer persists:

- **checkpoints** — application state plus the recovery-layer context
  (current interval, dependency vector, receive-dedup set) at the moment of
  the checkpoint;
- **the message log** — delivered messages together with the state-interval
  index their delivery started (the "processing order");
- **synchronously logged failure announcements** (Receive_failure_ann);
- **committed output ids** — so deterministic replay never re-commits an
  output to the outside world.

Every write is accounted as either a synchronous operation (the caller
blocks: pessimistic logging, checkpoints, announcement logging) or an
asynchronous one (background flush: optimistic logging), so experiments can
charge realistic, configurable costs to each.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Set, Tuple

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import AppMessage, FailureAnnouncement
from repro.types import IntervalIndex, MessageId, OutputId


@dataclass
class Checkpoint:
    """A recovery point: everything needed to resume execution.

    ``entry`` is the state interval at which the checkpoint was taken;
    ``tdv`` the dependency vector at that moment (used by Rollback's
    condition (I) to decide whether the checkpoint itself is orphaned).
    """

    entry: Entry
    app_state: Any
    tdv: DependencyVector
    received_ids: FrozenSet[MessageId]
    time_taken: float = 0.0

    def __str__(self) -> str:
        return f"ckpt@{self.entry}"


@dataclass(frozen=True)
class LoggedMessage:
    """A delivered message persisted with its processing position.

    ``position`` is the index of the state interval the delivery started,
    ``inc`` the incarnation it was delivered in.
    """

    position: IntervalIndex
    inc: int
    message: AppMessage


class StableStorage:
    """Crash-surviving storage for one process, with cost accounting."""

    def __init__(self, pid: int):
        self.pid = pid
        self._checkpoints: List[Checkpoint] = []
        self._log: List[LoggedMessage] = []
        self._announcements: List[FailureAnnouncement] = []
        self._committed_outputs: Set[Any] = set()
        self._highest_incarnation_marker = 0
        # accounting
        self.sync_writes = 0
        self.async_writes = 0
        self.messages_logged = 0
        self.checkpoints_taken = 0
        self.gc_reclaimed = 0

    # -- checkpoints -----------------------------------------------------------

    def write_checkpoint(
        self,
        entry: Entry,
        app_state: Any,
        tdv: DependencyVector,
        received_ids: Set[MessageId],
        time_taken: float = 0.0,
    ) -> Checkpoint:
        """Persist a checkpoint (synchronous write).  State is deep-copied
        so later in-memory mutation cannot corrupt the recovery point."""
        checkpoint = Checkpoint(
            entry=entry,
            app_state=copy.deepcopy(app_state),
            tdv=tdv.copy(),
            received_ids=frozenset(received_ids),
            time_taken=time_taken,
        )
        self._checkpoints.append(checkpoint)
        self.sync_writes += 1
        self.checkpoints_taken += 1
        return checkpoint

    def latest_checkpoint(self) -> Checkpoint:
        if not self._checkpoints:
            raise RuntimeError(
                f"P{self.pid}: no checkpoint on stable storage; the runtime "
                "must write an initial checkpoint before starting"
            )
        return self._checkpoints[-1]

    @property
    def checkpoints(self) -> Tuple[Checkpoint, ...]:
        return tuple(self._checkpoints)

    def discard_checkpoints_after(self, index: int) -> None:
        """Drop checkpoints after list position ``index`` (Rollback:
        "Discard the checkpoints that follow")."""
        del self._checkpoints[index + 1 :]

    # -- the message log -----------------------------------------------------

    def append_log(self, records: List[LoggedMessage], sync: bool) -> None:
        """Persist delivered messages.  One storage operation per batch —
        this is precisely why optimistic logging is cheaper: it writes
        "several messages to stable storage in a single operation"."""
        if not records:
            return
        self._log.extend(records)
        self.messages_logged += len(records)
        if sync:
            self.sync_writes += 1
        else:
            self.async_writes += 1

    def logged_after(self, sii: IntervalIndex) -> List[LoggedMessage]:
        """Logged messages whose position is beyond interval ``sii``,
        in processing order (what Restart/Rollback replay)."""
        return sorted(
            (r for r in self._log if r.position > sii), key=lambda r: r.position
        )

    def pop_logged_after(self, sii: IntervalIndex) -> List[LoggedMessage]:
        """Remove and return logged messages beyond ``sii`` (Rollback hands
        the non-orphans among them back to the receive buffer, to be
        delivered — and re-logged — again)."""
        popped = self.logged_after(sii)
        self._log = [r for r in self._log if r.position <= sii]
        return popped

    @property
    def log_size(self) -> int:
        return len(self._log)

    # -- garbage collection ------------------------------------------------------

    def truncate_before(self, checkpoint_index: int) -> int:
        """Reclaim everything older than ``checkpoints[checkpoint_index]``.

        Drops earlier checkpoints and all logged messages at or before the
        kept checkpoint's interval (they can never be replayed again once
        that checkpoint is guaranteed non-orphan).  Returns the number of
        reclaimed records.
        """
        if not 0 <= checkpoint_index < len(self._checkpoints):
            raise IndexError(
                f"checkpoint index {checkpoint_index} out of range "
                f"[0, {len(self._checkpoints)})"
            )
        keep = self._checkpoints[checkpoint_index]
        reclaimed = checkpoint_index
        self._checkpoints = self._checkpoints[checkpoint_index:]
        before = len(self._log)
        self._log = [r for r in self._log if r.position > keep.entry.sii]
        reclaimed += before - len(self._log)
        self.gc_reclaimed += reclaimed
        return reclaimed

    def highest_logged_position(self) -> IntervalIndex:
        """Position of the newest logged message (0 when the log is empty)."""
        return max((r.position for r in self._log), default=0)

    # -- announcements -----------------------------------------------------------

    def log_announcement(self, ann: FailureAnnouncement) -> None:
        """Synchronously persist a failure announcement so that iet/log
        survive a crash of the receiver (Receive_failure_ann)."""
        self._announcements.append(ann)
        self.sync_writes += 1

    @property
    def announcements(self) -> Tuple[FailureAnnouncement, ...]:
        return tuple(self._announcements)

    # -- incarnation markers ----------------------------------------------------

    def log_incarnation_start(self, inc: int) -> None:
        """Synchronously persist that incarnation ``inc`` has been used.

        Failure announcements double as incarnation markers for *failed*
        rollbacks; a non-failed Rollback broadcasts nothing (Theorem 1), so
        it must persist its incarnation bump here — otherwise a later crash
        would let the process reuse an incarnation number whose intervals
        other processes may still carry dependencies on.
        """
        if inc > self._highest_incarnation_marker:
            self._highest_incarnation_marker = inc
            self.sync_writes += 1

    def highest_incarnation_marker(self) -> int:
        """Highest incarnation recorded via any stable artifact (0 if none)."""
        highest = self._highest_incarnation_marker
        for checkpoint in self._checkpoints:
            highest = max(highest, checkpoint.entry.inc)
        for record in self._log:
            highest = max(highest, record.inc)
        for ann in self._announcements:
            if ann.origin == self.pid:
                # Our own announcement of incarnation t implies t+1 started.
                highest = max(highest, ann.end.inc + 1)
        return highest

    # -- committed outputs --------------------------------------------------------

    def record_committed_output(self, output_id: Any) -> None:
        """Persist an output id at commit time (synchronous)."""
        self._committed_outputs.add(output_id)
        self.sync_writes += 1

    def output_committed(self, output_id: Any) -> bool:
        return output_id in self._committed_outputs

    @property
    def committed_output_count(self) -> int:
        return len(self._committed_outputs)
