"""Per-process stable storage: the in-memory model backend.

Stable storage survives crashes; volatile state does not.  This module
models exactly what the paper's recovery layer persists:

- **checkpoints** — application state plus the recovery-layer context
  (current interval, dependency vector, receive-dedup set) at the moment of
  the checkpoint;
- **the message log** — delivered messages together with the state-interval
  index their delivery started (the "processing order");
- **synchronously logged failure announcements** (Receive_failure_ann);
- **committed output ids** — so deterministic replay never re-commits an
  output to the outside world.

Every write is accounted as either a synchronous operation (the caller
blocks: pessimistic logging, checkpoints, announcement logging) or an
asynchronous one (background flush: optimistic logging), so experiments can
charge realistic, configurable costs to each.

:class:`ModelBackend` is the reference implementation of the
:class:`repro.storage.backend.StableBackend` interface: writes always
succeed, fsyncs never lie, and restart is free.  The durable file-journal
implementation (:class:`repro.storage.filelog.FileLogBackend`) subclasses
it so the two backends share one copy of the logical semantics and the
differential tests can compare their recovered state directly.
``StableStorage`` remains as an alias for backward compatibility.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Set, Tuple

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import AppMessage, FailureAnnouncement
from repro.storage.backend import StableBackend
from repro.types import IntervalIndex, MessageId


@dataclass
class Checkpoint:
    """A recovery point: everything needed to resume execution.

    ``entry`` is the state interval at which the checkpoint was taken;
    ``tdv`` the dependency vector at that moment (used by Rollback's
    condition (I) to decide whether the checkpoint itself is orphaned).
    """

    entry: Entry
    app_state: Any
    tdv: DependencyVector
    received_ids: FrozenSet[MessageId]
    time_taken: float = 0.0

    def copy(self) -> "Checkpoint":
        """A defensive copy whose mutation cannot corrupt the original."""
        return Checkpoint(
            entry=self.entry,
            app_state=copy.deepcopy(self.app_state),
            tdv=self.tdv.copy(),
            received_ids=frozenset(self.received_ids),
            time_taken=self.time_taken,
        )

    def __str__(self) -> str:
        return f"ckpt@{self.entry}"


@dataclass(frozen=True)
class LoggedMessage:
    """A delivered message persisted with its processing position.

    ``position`` is the index of the state interval the delivery started,
    ``inc`` the incarnation it was delivered in.
    """

    position: IntervalIndex
    inc: int
    message: AppMessage


class ModelBackend(StableBackend):
    """Crash-surviving storage for one process, with cost accounting.

    Purely in-memory: durability is assumed, never demonstrated.  This is
    the right backend for protocol-level simulation (it is free and can
    never fail) and the ground truth the file-log backend must match.
    """

    def __init__(self, pid: int):
        super().__init__(pid)
        self._checkpoints: List[Checkpoint] = []
        self._log: List[LoggedMessage] = []
        self._announcements: List[FailureAnnouncement] = []
        self._committed_outputs: Set[Any] = set()
        self._highest_incarnation_marker = 0
        # Cached highest_incarnation_marker() result: maintained
        # incrementally on writes, invalidated (None) by truncation-like
        # operations that can lower the scan result.
        self._marker_cache: Optional[int] = 0

    # -- checkpoints -----------------------------------------------------------

    def write_checkpoint(
        self,
        entry: Entry,
        app_state: Any,
        tdv: DependencyVector,
        received_ids: Set[MessageId],
        time_taken: float = 0.0,
    ) -> Checkpoint:
        """Persist a checkpoint (synchronous write).  State is deep-copied
        so later in-memory mutation cannot corrupt the recovery point."""
        checkpoint = Checkpoint(
            entry=entry,
            app_state=copy.deepcopy(app_state),
            tdv=tdv.copy(),
            received_ids=frozenset(received_ids),
            time_taken=time_taken,
        )
        self._checkpoints.append(checkpoint)
        self.sync_writes += 1
        self.checkpoints_taken += 1
        if self._marker_cache is not None:
            self._marker_cache = max(self._marker_cache, entry.inc)
        return checkpoint

    def latest_checkpoint(self) -> Checkpoint:
        """A defensive copy of the newest checkpoint.

        Callers that only need the checkpoint's position should use
        :meth:`latest_checkpoint_entry`, which skips the state copy.
        """
        if not self._checkpoints:
            raise RuntimeError(
                f"P{self.pid}: no checkpoint on stable storage; the runtime "
                "must write an initial checkpoint before starting"
            )
        return self._checkpoints[-1].copy()

    def latest_checkpoint_entry(self) -> Entry:
        """The newest checkpoint's entry, without copying its state."""
        if not self._checkpoints:
            raise RuntimeError(
                f"P{self.pid}: no checkpoint on stable storage; the runtime "
                "must write an initial checkpoint before starting"
            )
        return self._checkpoints[-1].entry

    def restore_checkpoint(self, index: int) -> Checkpoint:
        """The checkpoint at list position ``index``, as a defensive copy.

        Restart/Rollback resume execution *in* the returned state and
        mutate it freely; handing out the stored object would let that
        mutation silently corrupt the recovery point for the next crash.
        """
        if not 0 <= index < len(self._checkpoints):
            raise IndexError(
                f"checkpoint index {index} out of range "
                f"[0, {len(self._checkpoints)})"
            )
        return self._checkpoints[index].copy()

    @property
    def checkpoints(self) -> Tuple[Checkpoint, ...]:
        return tuple(self._checkpoints)

    def discard_checkpoints_after(self, index: int) -> None:
        """Drop checkpoints after list position ``index`` (Rollback:
        "Discard the checkpoints that follow")."""
        del self._checkpoints[index + 1 :]
        self._marker_cache = None

    # -- the message log -----------------------------------------------------

    def append_log(self, records: List[LoggedMessage], sync: bool) -> None:
        """Persist delivered messages.  One storage operation per batch —
        this is precisely why optimistic logging is cheaper: it writes
        "several messages to stable storage in a single operation"."""
        if not records:
            return
        self._log.extend(records)
        self.messages_logged += len(records)
        if self._marker_cache is not None:
            self._marker_cache = max(
                self._marker_cache, max(r.inc for r in records)
            )
        if sync:
            self.sync_writes += 1
        else:
            self.async_writes += 1

    def logged_after(self, sii: IntervalIndex) -> List[LoggedMessage]:
        """Logged messages whose position is beyond interval ``sii``,
        in processing order (what Restart/Rollback replay)."""
        return sorted(
            (r for r in self._log if r.position > sii), key=lambda r: r.position
        )

    def pop_logged_after(self, sii: IntervalIndex) -> List[LoggedMessage]:
        """Remove and return logged messages beyond ``sii`` (Rollback hands
        the non-orphans among them back to the receive buffer, to be
        delivered — and re-logged — again)."""
        popped = self.logged_after(sii)
        if popped:
            self._log = [r for r in self._log if r.position <= sii]
            self._marker_cache = None
        return popped

    @property
    def log_size(self) -> int:
        return len(self._log)

    # -- garbage collection ------------------------------------------------------

    def truncate_before(self, checkpoint_index: int) -> int:
        """Reclaim everything older than ``checkpoints[checkpoint_index]``.

        Drops earlier checkpoints and all logged messages at or before the
        kept checkpoint's interval (they can never be replayed again once
        that checkpoint is guaranteed non-orphan).  Returns the number of
        reclaimed records.
        """
        if not 0 <= checkpoint_index < len(self._checkpoints):
            raise IndexError(
                f"checkpoint index {checkpoint_index} out of range "
                f"[0, {len(self._checkpoints)})"
            )
        keep = self._checkpoints[checkpoint_index]
        reclaimed = checkpoint_index
        self._checkpoints = self._checkpoints[checkpoint_index:]
        before = len(self._log)
        self._log = [r for r in self._log if r.position > keep.entry.sii]
        reclaimed += before - len(self._log)
        self.gc_reclaimed += reclaimed
        if reclaimed:
            self._marker_cache = None
        return reclaimed

    def highest_logged_position(self) -> IntervalIndex:
        """Position of the newest logged message (0 when the log is empty)."""
        return max((r.position for r in self._log), default=0)

    # -- announcements -----------------------------------------------------------

    def log_announcement(self, ann: FailureAnnouncement) -> None:
        """Synchronously persist a failure announcement so that iet/log
        survive a crash of the receiver (Receive_failure_ann)."""
        self._announcements.append(ann)
        self.sync_writes += 1
        if self._marker_cache is not None and ann.origin == self.pid:
            self._marker_cache = max(self._marker_cache, ann.end.inc + 1)

    @property
    def announcements(self) -> Tuple[FailureAnnouncement, ...]:
        return tuple(self._announcements)

    # -- incarnation markers ----------------------------------------------------

    def log_incarnation_start(self, inc: int) -> None:
        """Synchronously persist that incarnation ``inc`` has been used.

        Failure announcements double as incarnation markers for *failed*
        rollbacks; a non-failed Rollback broadcasts nothing (Theorem 1), so
        it must persist its incarnation bump here — otherwise a later crash
        would let the process reuse an incarnation number whose intervals
        other processes may still carry dependencies on.
        """
        if inc > self._highest_incarnation_marker:
            self._highest_incarnation_marker = inc
            self.sync_writes += 1
            if self._marker_cache is not None:
                self._marker_cache = max(self._marker_cache, inc)

    def highest_incarnation_marker(self) -> int:
        """Highest incarnation recorded via any stable artifact (0 if none).

        Cached: restart calls this on a potentially long log, so the scan
        runs only after an operation that could have *lowered* the answer
        (log truncation, checkpoint discard) invalidated the cache.
        """
        if self._marker_cache is None:
            self._marker_cache = self._scan_incarnation_marker()
        return self._marker_cache

    def _scan_incarnation_marker(self) -> int:
        highest = self._highest_incarnation_marker
        for checkpoint in self._checkpoints:
            highest = max(highest, checkpoint.entry.inc)
        for record in self._log:
            highest = max(highest, record.inc)
        for ann in self._announcements:
            if ann.origin == self.pid:
                # Our own announcement of incarnation t implies t+1 started.
                highest = max(highest, ann.end.inc + 1)
        return highest

    # -- committed outputs --------------------------------------------------------

    def record_committed_output(self, output_id: Any) -> None:
        """Persist an output id at commit time (synchronous)."""
        self._committed_outputs.add(output_id)
        self.sync_writes += 1

    def output_committed(self, output_id: Any) -> bool:
        return output_id in self._committed_outputs

    @property
    def committed_output_count(self) -> int:
        return len(self._committed_outputs)

    # -- introspection -----------------------------------------------------------

    def state_digest(self) -> Tuple:
        """The full logical state as a comparable value.

        The differential property tests assert that a recovered
        ``FileLogBackend`` and a ``ModelBackend`` fed the same operations
        produce equal digests.
        """
        return (
            tuple(
                (
                    c.entry,
                    c.app_state,
                    tuple(sorted(c.tdv.items())),
                    frozenset(c.received_ids),
                    c.time_taken,
                )
                for c in self._checkpoints
            ),
            tuple(self._log),
            tuple(self._announcements),
            frozenset(self._committed_outputs),
            self.highest_incarnation_marker(),
        )


#: Backwards-compatible name: the model backend *is* the original
#: ``StableStorage`` cost model.
StableStorage = ModelBackend
