"""The volatile message buffer of optimistic logging.

Delivered messages are first kept here and written to stable storage
asynchronously, several at a time.  Its contents vanish when the process
crashes — that loss is what creates non-stable state intervals, orphan
messages, and ultimately the whole recovery problem the paper addresses.
"""

from __future__ import annotations

from typing import List

from repro.storage.stable import LoggedMessage


class VolatileBuffer:
    """Delivered-but-not-yet-logged messages, in processing order."""

    def __init__(self):
        self._records: List[LoggedMessage] = []

    def append(self, record: LoggedMessage) -> None:
        if self._records and record.position <= self._records[-1].position:
            raise ValueError(
                f"volatile buffer positions must be increasing: "
                f"{record.position} after {self._records[-1].position}"
            )
        self._records.append(record)

    def drain(self) -> List[LoggedMessage]:
        """Remove and return everything (a flush or checkpoint)."""
        records, self._records = self._records, []
        return records

    def clear(self) -> None:
        """Crash: volatile contents are lost."""
        self._records.clear()

    def discard_after(self, sii: int) -> List[LoggedMessage]:
        """Drop records beyond interval ``sii`` (non-failed rollback undoes
        those deliveries); returns the dropped records."""
        kept = [r for r in self._records if r.position <= sii]
        dropped = [r for r in self._records if r.position > sii]
        self._records = kept
        return dropped

    @property
    def records(self) -> List[LoggedMessage]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)
