"""Deterministic storage fault injection.

The paper assumes stable storage is *stable*: a write that returned wrote,
an fsync that returned synced, and nothing on disk ever changes behind the
process's back.  Real disks break every one of those assumptions, and the
whole point of growing a real durable-log backend is to measure what the
K-optimistic protocol does when they break.  This module models the
classic failure modes as *deterministic, schedulable* faults so that a
campaign (``repro check storage``) can replay the exact same sequence of
lies on every run:

- ``torn_write``      — at the next crash, the un-persisted tail of the
  current segment is not cleanly discarded: a partial prefix of it (cut
  mid-record) survives on disk.  Recovery must detect the torn final
  record via its framing/CRC and truncate.  While armed, the file-log
  backend holds tolerant group commits (the batch whose write the crash
  tears is, by definition, still in flight and never synced), so the
  crash reliably finds a tail to tear; the stable frontier lags those
  records, so nothing held was ever announced stable.
- ``fsync_lie``       — the next ``count`` fsyncs report success without
  making the data durable (lost write / flush-cache lie).  A later real
  fsync on the same segment still persists the data (it is still in the
  cache), so the exposure window closes at the next honest sync.
- ``eio``             — the next ``count`` physical operations fail with a
  transient I/O error.  The backend retries with capped exponential
  backoff; if the budget is exhausted the backend declares itself dead.
- ``stall``           — the next ``count`` fsyncs stall for ``duration``
  (wall-clock) units.  In simulation the stall is recorded, not slept.
- ``bit_flip``        — flip one deterministic bit of an already-written
  segment immediately (latent media corruption).  Recovery's CRC check
  catches it and truncates the journal at the corrupt record.
- ``crash_after_fsyncs`` — after the ``count``-th subsequent fsync
  *completes*, fail the backend so the harness converts the process to a
  clean fail-stop crash.  This is the primitive behind the
  crash-at-every-fsync-boundary sweep.

Faults are armed per process (beneath any backend honouring them) from
:class:`repro.failures.injector.StorageFaultEvent` entries of the failure
schedule, so a seed fully determines the failure history.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

#: The fault kinds a :class:`StorageFaultInjector` understands.
FAULT_KINDS = (
    "torn_write",
    "fsync_lie",
    "eio",
    "stall",
    "bit_flip",
    "crash_after_fsyncs",
)


class StorageError(Exception):
    """Base class for storage-layer failures."""


class TransientStorageError(StorageError):
    """A retryable I/O failure (the moral equivalent of ``EIO``)."""


class StorageDeadError(StorageError):
    """The backend has given up: the process must fail-stop.

    Raised when the retry budget for transient errors is exhausted, or
    when a ``crash_after_fsyncs`` fault fires.  The runtime converts this
    into an ordinary crash handled by the normal Restart path.
    """


class StorageFaultInjector:
    """Armed fault state for one process's storage device.

    The injector is *simulation* state, not process state: it survives the
    process's crashes (the disk does not heal because the process died)
    and is consulted by the file-log backend at each physical operation.
    """

    def __init__(self, pid: int, seed: int = 0):
        self.pid = pid
        self._rng = random.Random((seed << 16) ^ pid ^ 0x5AFE)
        #: kind -> remaining count (faults are consumed as they fire).
        self._armed: Dict[str, int] = {}
        self._stall_duration = 0.0
        #: (kind, detail) log of every fault that actually fired.
        self.fired: List[Tuple[str, str]] = []

    # -- arming -------------------------------------------------------------

    def arm(self, kind: str, count: int = 1, duration: float = 0.0) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown storage fault kind {kind!r}")
        if count < 1:
            raise ValueError(f"fault count must be >= 1, got {count}")
        self._armed[kind] = self._armed.get(kind, 0) + count
        if kind == "stall":
            self._stall_duration = duration

    def armed(self, kind: str) -> int:
        """Remaining count of an armed fault (0 when unarmed)."""
        return self._armed.get(kind, 0)

    def _consume(self, kind: str) -> bool:
        remaining = self._armed.get(kind, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._armed[kind]
        else:
            self._armed[kind] = remaining - 1
        return True

    # -- physical-operation hooks -------------------------------------------

    def on_write(self, nbytes: int) -> None:
        """Consulted before every physical segment write."""
        if self._consume("eio"):
            self.fired.append(("eio", f"write({nbytes})"))
            raise TransientStorageError(
                f"P{self.pid}: injected EIO on write of {nbytes} bytes"
            )

    def on_fsync(self, stall_fn: Optional[Callable[[float], None]] = None) -> str:
        """Consulted at every fsync; returns ``"ok"`` or ``"lie"``.

        May raise :class:`TransientStorageError` (``eio``) and invokes the
        stall callback for ``stall`` faults before deciding the outcome.
        """
        if self._consume("eio"):
            self.fired.append(("eio", "fsync"))
            raise TransientStorageError(f"P{self.pid}: injected EIO on fsync")
        if self._consume("stall"):
            self.fired.append(("stall", f"{self._stall_duration}"))
            if stall_fn is not None:
                stall_fn(self._stall_duration)
        if self._consume("fsync_lie"):
            self.fired.append(("fsync_lie", "fsync"))
            return "lie"
        return "ok"

    def after_fsync(self) -> None:
        """Consulted after an fsync completed (honestly or not): the
        ``crash_after_fsyncs`` countdown ticks here, *after* the device
        state settled, so the crash lands exactly on the boundary."""
        remaining = self._armed.get("crash_after_fsyncs", 0)
        if remaining <= 0:
            return
        if remaining == 1:
            del self._armed["crash_after_fsyncs"]
            self.fired.append(("crash_after_fsyncs", "boundary"))
            raise StorageDeadError(
                f"P{self.pid}: injected crash at fsync boundary"
            )
        self._armed["crash_after_fsyncs"] = remaining - 1

    # -- crash-time hooks ---------------------------------------------------

    def torn_tail_length(self, tail_bytes: int) -> Optional[int]:
        """How many bytes of the un-persisted tail survive a crash.

        ``None`` means no torn-write fault is armed: the tail is discarded
        cleanly at the last persisted byte.  With the fault armed, roughly
        half of the tail survives — deliberately cutting mid-record in any
        realistic layout.  The fault is consumed by the crash either way
        (the crash that was going to interrupt the write has happened).
        """
        if not self._consume("torn_write"):
            return None
        if tail_bytes <= 0:
            self.fired.append(("torn_write", "empty tail"))
            return None
        survive = (tail_bytes + 1) // 2
        self.fired.append(("torn_write", f"kept {survive}/{tail_bytes}"))
        return survive

    def pick_flip(self, length: int) -> Tuple[int, int]:
        """Deterministically choose (byte offset, bit) for a bit flip."""
        offset = self._rng.randrange(max(1, length))
        bit = self._rng.randrange(8)
        self.fired.append(("bit_flip", f"byte {offset} bit {bit}"))
        return offset, bit
