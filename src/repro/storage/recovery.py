"""On-disk record framing and REDO-only recovery for the file-log backend.

The journal is a sequence of segment files (``seg-000001.log`` …), each an
append-only run of CRC32-framed records:

.. code-block:: text

    +-------+-------+----------+---------+---------+=============+
    | magic | rtype | reserved | length  |  crc32  |   payload   |
    |  u16  |  u8   |   u8     |  u32    |  u32    | length bytes|
    +-------+-------+----------+---------+---------+=============+
         little-endian, 12-byte header; crc covers rtype..payload

Every *logical* mutation of stable storage is journaled as one record, in
operation order — checkpoints, logged messages, announcements, incarnation
markers, committed outputs, and also the log-shrinking operations
(checkpoint discard, log pop, garbage collection) and whole-state
snapshots written by compaction.  Because the journal order equals the
operation order, **replaying any prefix of the journal reproduces a state
the backend actually passed through** (prefix consistency, the Sauer &
Härder instant-restart invariant).  That is what makes group commit safe:
losing an un-fsynced suffix merely rewinds stable storage to an earlier —
still self-consistent — state, which is precisely the failure model
optimistic logging is designed to recover from.

Recovery is REDO-only: scan the segments in order, verify each frame's
magic and checksum, stop at the first torn (incomplete) or corrupt frame,
physically truncate the journal there, and fold the surviving records into
a :class:`RecoveredState`.  No UNDO pass exists because nothing is ever
updated in place.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, List, Set, Tuple

from repro.net.message import FailureAnnouncement

MAGIC = 0x5A1D
_HEADER = struct.Struct("<HBBII")
HEADER_SIZE = _HEADER.size

# Record types.  One journal record per logical mutation; LOGMSG is framed
# per message (not per batch) so a torn write loses at most a record tail.
T_CHECKPOINT = 1
T_LOGMSG = 2
T_ANN = 3
T_INCMARK = 4
T_COMMIT = 5
T_CKPT_DISCARD = 6
T_LOG_POP = 7
T_GC = 8
T_SNAPSHOT = 9

_SEGMENT_RE = re.compile(r"^seg-(\d{6})\.log$")


def segment_name(index: int) -> str:
    return f"seg-{index:06d}.log"


def segment_index(name: str) -> int:
    match = _SEGMENT_RE.match(name)
    if not match:
        raise ValueError(f"not a segment file name: {name!r}")
    return int(match.group(1))


def encode_record(rtype: int, payload_obj: Any) -> bytes:
    """Frame one record: header + pickled payload, CRC over type..payload."""
    payload = pickle.dumps(payload_obj, protocol=4)
    body = struct.pack("<BBI", rtype, 0, len(payload)) + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, rtype, 0, len(payload), crc) + payload


@dataclass
class ScanStats:
    """What the segment scan saw, for metrics and probes."""

    records: int = 0
    bytes_scanned: int = 0
    torn_records: int = 0
    corrupt_records: int = 0
    segments_dropped: int = 0
    truncated_at: Tuple[str, int] = ("", -1)


@dataclass
class RecoveredState:
    """The logical stable-storage state folded out of the journal.

    Field semantics match :class:`repro.storage.stable.ModelBackend`'s
    internals exactly — the fold below *is* the model's mutation logic,
    re-run against the journal.
    """

    checkpoints: List[Any] = field(default_factory=list)
    log: List[Any] = field(default_factory=list)
    announcements: List[FailureAnnouncement] = field(default_factory=list)
    committed: Set[Any] = field(default_factory=set)
    marker: int = 0


def _parse_segment(data: bytes) -> Tuple[List[Tuple[int, Any]], int, str]:
    """Parse one segment's bytes into (records, valid_end, stop_reason).

    ``valid_end`` is the byte offset just past the last good frame;
    ``stop_reason`` is ``""`` (clean end), ``"torn"`` (incomplete final
    frame) or ``"corrupt"`` (magic/CRC mismatch).
    """
    records: List[Tuple[int, Any]] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + HEADER_SIZE > size:
            return records, offset, "torn"
        magic, rtype, reserved, length, crc = _HEADER.unpack_from(data, offset)
        if magic != MAGIC:
            return records, offset, "corrupt"
        start = offset + HEADER_SIZE
        end = start + length
        if end > size:
            return records, offset, "torn"
        payload = data[start:end]
        body = struct.pack("<BBI", rtype, reserved, length) + payload
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            return records, offset, "corrupt"
        try:
            obj = pickle.loads(payload)
        except Exception:
            # A frame whose checksum passes but whose payload does not
            # unpickle is treated like corruption: truncate here.
            return records, offset, "corrupt"
        records.append((rtype, obj))
        offset = end
    return records, offset, ""


def apply_record(state: RecoveredState, rtype: int, obj: Any) -> None:
    """Fold one journal record into the recovered state.

    Mirrors the model backend's mutation semantics operation for
    operation; keep the two in lockstep.
    """
    if rtype == T_CHECKPOINT:
        state.checkpoints.append(obj)
        state.marker = max(state.marker, obj.entry.inc)
    elif rtype == T_LOGMSG:
        state.log.append(obj)
        state.marker = max(state.marker, obj.inc)
    elif rtype == T_ANN:
        state.announcements.append(obj)
    elif rtype == T_INCMARK:
        state.marker = max(state.marker, obj)
    elif rtype == T_COMMIT:
        state.committed.add(obj)
    elif rtype == T_CKPT_DISCARD:
        del state.checkpoints[obj + 1 :]
    elif rtype == T_LOG_POP:
        state.log = [r for r in state.log if r.position <= obj]
    elif rtype == T_GC:
        if 0 <= obj < len(state.checkpoints):
            keep = state.checkpoints[obj]
            state.checkpoints = state.checkpoints[obj:]
            state.log = [r for r in state.log if r.position > keep.entry.sii]
    elif rtype == T_SNAPSHOT:
        checkpoints, log, announcements, committed, marker = obj
        state.checkpoints = list(checkpoints)
        state.log = list(log)
        state.announcements = list(announcements)
        state.committed = set(committed)
        state.marker = marker
    else:
        raise ValueError(f"unknown journal record type {rtype}")


def list_segments(directory: str) -> List[str]:
    """Segment file names in ``directory``, in index order."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    segments = [n for n in names if _SEGMENT_RE.match(n)]
    segments.sort(key=segment_index)
    return segments


def scan_segments(directory: str) -> Tuple[RecoveredState, ScanStats]:
    """REDO scan: read, verify, truncate, and fold the journal.

    Side effects on disk — this *is* the repair step of restart: the first
    torn or corrupt frame physically truncates its segment to the valid
    prefix and unlinks every later segment (their contents would be
    unreachable suffix anyway and must not resurrect after the journal
    tail moves backwards).
    """
    state = RecoveredState()
    stats = ScanStats()
    segments = list_segments(directory)
    for pos, name in enumerate(segments):
        path = os.path.join(directory, name)
        with open(path, "rb") as handle:
            data = handle.read()
        records, valid_end, reason = _parse_segment(data)
        stats.records += len(records)
        stats.bytes_scanned += valid_end
        for rtype, obj in records:
            apply_record(state, rtype, obj)
        if reason:
            if reason == "torn":
                stats.torn_records += 1
            else:
                stats.corrupt_records += 1
            stats.truncated_at = (name, valid_end)
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
            for later in segments[pos + 1 :]:
                os.unlink(os.path.join(directory, later))
                stats.segments_dropped += 1
            break
    return state, stats
