"""Pluggable stable-storage backends.

The protocol core only ever talks to the :class:`StableBackend` interface;
what actually provides durability is a configuration choice:

- ``"model"``   — :class:`repro.storage.stable.ModelBackend`, the original
  pure in-memory cost model (writes always succeed, restart is free).
- ``"filelog"`` — :class:`repro.storage.filelog.FileLogBackend`, a real
  segmented append-only file journal with CRC32-framed records, group
  commit, snapshot compaction, and a REDO-only fast restart.

Both keep identical *logical* semantics — the same checkpoints, logged
messages, announcements, incarnation markers, and committed-output set —
so the protocol layer above is byte-for-byte unchanged between them.  The
file backend merely adds a *physical* layer beneath the logical one, and
with it the possibility of failure: torn writes, lying fsyncs, transient
I/O errors, dead devices.  ``stable_frontier`` is the one interface point
where physics leaks upward: the protocol may only announce stability (and
thus release K-optimism holds) up to what the backend believes is durable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Set, Tuple

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import AppMessage, FailureAnnouncement
from repro.types import IntervalIndex, MessageId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.failures.injector import StorageFaultEvent
    from repro.storage.stable import Checkpoint, LoggedMessage


class StableBackend:
    """Interface and shared accounting for per-process stable storage.

    Subclasses implement the logical operations; this base owns every
    counter so that metrics collection works uniformly across backends
    (a model run simply reports zeros for the physical-layer counters).
    """

    def __init__(self, pid: int):
        self.pid = pid
        # -- logical accounting (pre-existing cost model) -------------------
        self.sync_writes = 0
        self.async_writes = 0
        self.messages_logged = 0
        self.checkpoints_taken = 0
        self.gc_reclaimed = 0
        # -- physical-layer accounting (file backends) ----------------------
        self.bytes_written = 0
        self.bytes_fsynced = 0
        self.fsyncs = 0
        self.group_commits = 0
        self.forced_group_commits = 0
        self.io_retries = 0
        self.io_errors = 0
        self.fsync_lies = 0
        self.stall_time = 0.0
        self.backoff_time = 0.0
        self.recoveries = 0
        self.recovered_records = 0
        self.torn_records_dropped = 0
        self.corrupt_records_dropped = 0
        self.recovery_wall_s = 0.0
        self.dead_declared = 0
        self.faults_ignored = 0

    # -- lifecycle ----------------------------------------------------------

    def arm_fault(self, event: "StorageFaultEvent") -> None:
        """Arm a storage fault beneath this backend.

        The model backend has no physical layer for faults to live in, so
        it counts and ignores them — a schedule with storage faults still
        replays deterministically against either backend.
        """
        self.faults_ignored += 1

    def crash(self) -> None:
        """The owning process crashed: drop any un-durable physical state.

        Must never raise — a crash is not allowed to fail.
        """

    def recover(self) -> None:
        """Rebuild logical state from durable media after a crash.

        Raises :class:`repro.storage.faults.StorageDeadError` if the media
        cannot be read; the runtime then retries the restart later.
        """

    def close(self) -> None:
        """Release any OS resources (file handles)."""

    # -- durability frontier --------------------------------------------------

    def stable_frontier(self, current: Entry) -> Entry:
        """The newest entry the protocol may announce as stable.

        The model backend is always caught up, so the frontier is simply
        ``current`` — which keeps the optimistic protocol's behaviour
        exactly as before.  A real backend with un-fsynced log records
        returns the believed-durable tip instead, and the protocol's
        flush holds its ``log``-table advance (and with it output
        commits) until the frontier catches up.
        """
        return current

    # -- checkpoints ----------------------------------------------------------

    def write_checkpoint(
        self,
        entry: Entry,
        app_state: Any,
        tdv: DependencyVector,
        received_ids: Set[MessageId],
        time_taken: float = 0.0,
    ) -> "Checkpoint":
        raise NotImplementedError

    def latest_checkpoint(self) -> "Checkpoint":
        raise NotImplementedError

    def latest_checkpoint_entry(self) -> Entry:
        raise NotImplementedError

    def restore_checkpoint(self, index: int) -> "Checkpoint":
        raise NotImplementedError

    @property
    def checkpoints(self) -> Tuple["Checkpoint", ...]:
        raise NotImplementedError

    def discard_checkpoints_after(self, index: int) -> None:
        raise NotImplementedError

    # -- the message log ------------------------------------------------------

    def append_log(self, records: List["LoggedMessage"], sync: bool) -> None:
        raise NotImplementedError

    def logged_after(self, sii: IntervalIndex) -> List["LoggedMessage"]:
        raise NotImplementedError

    def pop_logged_after(self, sii: IntervalIndex) -> List["LoggedMessage"]:
        raise NotImplementedError

    @property
    def log_size(self) -> int:
        raise NotImplementedError

    def truncate_before(self, checkpoint_index: int) -> int:
        raise NotImplementedError

    def highest_logged_position(self) -> IntervalIndex:
        raise NotImplementedError

    # -- announcements / incarnations / outputs -------------------------------

    def log_announcement(self, ann: FailureAnnouncement) -> None:
        raise NotImplementedError

    @property
    def announcements(self) -> Tuple[FailureAnnouncement, ...]:
        raise NotImplementedError

    def log_incarnation_start(self, inc: int) -> None:
        raise NotImplementedError

    def highest_incarnation_marker(self) -> int:
        raise NotImplementedError

    def record_committed_output(self, output_id: Any) -> None:
        raise NotImplementedError

    def output_committed(self, output_id: Any) -> bool:
        raise NotImplementedError

    @property
    def committed_output_count(self) -> int:
        raise NotImplementedError


#: Names accepted by ``SimConfig.storage_backend`` / ``make_backend``.
BACKENDS = ("model", "filelog")


def make_backend(config: Any, pid: int) -> StableBackend:
    """Build the configured backend for process ``pid``.

    Imports lazily to keep ``backend`` free of cycles (``stable`` imports
    this module for the base class).
    """
    name = getattr(config, "storage_backend", "model")
    if name == "model":
        from repro.storage.stable import ModelBackend

        return ModelBackend(pid)
    if name == "filelog":
        import os

        from repro.storage.filelog import FileLogBackend

        storage_dir = getattr(config, "storage_dir", None)
        if not storage_dir:
            raise ValueError(
                "storage_backend='filelog' requires storage_dir to be set "
                "(the harness resolves it to a temporary directory when "
                "left unset in the config)"
            )
        return FileLogBackend(
            pid,
            os.path.join(storage_dir, f"p{pid:03d}"),
            seed=getattr(config, "seed", 0),
            segment_bytes=getattr(config, "segment_bytes", 262144),
            group_commit_records=getattr(config, "group_commit_records", 8),
            group_commit_bytes=getattr(config, "group_commit_bytes", 65536),
            max_pending_records=getattr(config, "max_pending_records", 64),
            io_retries=getattr(config, "io_retries", 5),
            io_backoff_base=getattr(config, "io_backoff_base", 0.002),
            io_backoff_max=getattr(config, "io_backoff_max", 0.1),
            fsync_policy=getattr(config, "fsync_policy", "group"),
        )
    raise ValueError(f"unknown storage backend {name!r}; expected one of {BACKENDS}")
