"""A durable, segmented, append-only file-log backend.

:class:`FileLogBackend` gives the recovery layer real durability with real
failure modes.  It subclasses :class:`repro.storage.stable.ModelBackend`
so the *logical* semantics (what is stored, what replay returns) are the
model's, verbatim; what this class adds is the *physical* layer:

- every logical mutation is journaled as one CRC32-framed record
  (``recovery.encode_record``) appended to the active segment file;
- asynchronous log appends are **group committed**: frames accumulate
  un-fsynced and one fsync covers the whole batch once the record- or
  byte-threshold trips.  Journal order equals operation order, so losing
  an un-fsynced suffix rewinds storage to an earlier consistent state
  (prefix consistency) — exactly the loss optimistic logging tolerates;
- the backend tracks *belief* vs *truth*: ``believed`` advances on any
  fsync that reported success, ``persisted`` only on honest ones.  A
  crash truncates the file to the truth (plus an optionally-armed torn
  tail), which is how lying fsyncs become observable;
- :meth:`stable_frontier` exposes the believed-durable tip.  While a
  group commit is outstanding the frontier lags ``current``, the
  protocol's flush then advances its own ``log``-table row only up to
  the frontier, and output commits wait — K-optimism is never violated
  by unflushed bytes;
- transient I/O errors retry with capped exponential backoff; an
  exhausted budget (or an injected fsync-boundary crash) declares the
  backend **dead** and every subsequent operation raises
  :class:`StorageDeadError` until :meth:`recover` — the runtime converts
  that into a clean fail-stop crash;
- when the pending queue exceeds ``max_pending_records`` despite failing
  tolerant commits, the backend degrades gracefully by forcing a
  blocking group commit (retry-until-dead) rather than growing the
  un-durable window without bound;
- garbage collection triggers snapshot **compaction**: the surviving
  logical state is written as one SNAPSHOT frame into a fresh segment,
  fsynced, and only then are the older segments unlinked.

Backoff delays and injected stalls are *recorded* in counters, never
slept: wall-clock must not leak into the deterministic simulation.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, List, Optional, Set

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import FailureAnnouncement
from repro.storage.faults import (
    StorageDeadError,
    StorageFaultInjector,
    TransientStorageError,
)
from repro.storage.recovery import (
    T_ANN,
    T_CHECKPOINT,
    T_CKPT_DISCARD,
    T_COMMIT,
    T_GC,
    T_INCMARK,
    T_LOGMSG,
    T_LOG_POP,
    T_SNAPSHOT,
    encode_record,
    list_segments,
    scan_segments,
    segment_index,
    segment_name,
)
from repro.storage.stable import Checkpoint, LoggedMessage, ModelBackend
from repro.types import IntervalIndex, MessageId

#: Compact once this many segments exist (tail + history).
COMPACT_SEGMENT_THRESHOLD = 4


class FileLogBackend(ModelBackend):
    """Segmented append-only journal with group commit and REDO restart."""

    def __init__(
        self,
        pid: int,
        directory: str,
        *,
        seed: int = 0,
        segment_bytes: int = 262144,
        group_commit_records: int = 8,
        group_commit_bytes: int = 65536,
        max_pending_records: int = 64,
        io_retries: int = 5,
        io_backoff_base: float = 0.002,
        io_backoff_max: float = 0.1,
        fsync_policy: str = "group",
        sleep_fn: Optional[Callable[[float], None]] = None,
    ):
        super().__init__(pid)
        if fsync_policy not in ("group", "strict"):
            raise ValueError(
                f"fsync_policy must be 'group' or 'strict', got {fsync_policy!r}"
            )
        self.directory = directory
        self.injector = StorageFaultInjector(pid, seed)
        self._segment_bytes = segment_bytes
        self._group_commit_records = group_commit_records
        self._group_commit_bytes = group_commit_bytes
        self._max_pending_records = max_pending_records
        self._retry_limit = io_retries
        self._backoff_base = io_backoff_base
        self._backoff_max = io_backoff_max
        self._fsync_policy = fsync_policy
        #: Backoff sink: default only records (simulation determinism).
        self._sleep_fn = sleep_fn

        self._handle: Optional[Any] = None
        self._seg_index = 0
        # Active-segment device model.  Sealed segments are always fully
        # persisted (rotation fsyncs strictly), so only the tail needs one.
        self._written = 0  # bytes handed to the file
        self._persisted = 0  # bytes truly durable (the truth)
        self._believed = 0  # bytes the process thinks are durable
        self._pending_records = 0
        self._pending_bytes = 0
        self._dead = False
        self._durable_entry = Entry(0, 0)

        os.makedirs(directory, exist_ok=True)
        self._open_tail()

    # ------------------------------------------------------------------
    # physical layer
    # ------------------------------------------------------------------

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, segment_name(index))

    def _open_tail(self) -> None:
        segments = list_segments(self.directory)
        self._seg_index = segment_index(segments[-1]) if segments else 1
        path = self._segment_path(self._seg_index)
        self._handle = open(path, "ab")
        size = os.path.getsize(path)
        self._written = self._persisted = self._believed = size
        self._pending_records = 0
        self._pending_bytes = 0

    def _ensure_alive(self) -> None:
        if self._dead:
            raise StorageDeadError(
                f"P{self.pid}: storage backend is dead (awaiting recovery)"
            )

    def _die(self, context: str) -> None:
        self._dead = True
        self.dead_declared += 1
        raise StorageDeadError(
            f"P{self.pid}: storage gave up after {self._retry_limit} retries "
            f"({context})"
        )

    def _record_backoff(self, delay: float) -> None:
        self.backoff_time += delay
        if self._sleep_fn is not None:
            self._sleep_fn(delay)

    def _retrying(self, op: Callable[[], Any], context: str) -> Any:
        """Run a physical op with capped exponential backoff on EIO."""
        attempt = 0
        while True:
            try:
                return op()
            except TransientStorageError:
                self.io_errors += 1
                if attempt >= self._retry_limit:
                    self._die(context)
                self._record_backoff(
                    min(self._backoff_max, self._backoff_base * (2 ** attempt))
                )
                self.io_retries += 1
                attempt += 1

    def _physical_write(self, data: bytes) -> None:
        self.injector.on_write(len(data))
        self._handle.write(data)
        # Push through the userspace buffer so the on-disk file always
        # holds all *written* bytes; durability is modelled separately.
        self._handle.flush()

    def _append_frame(self, rtype: int, obj: Any) -> None:
        data = encode_record(rtype, obj)
        if self._written > 0 and self._written + len(data) > self._segment_bytes:
            self._rotate()
        self._retrying(lambda: self._physical_write(data), f"write(type={rtype})")
        self._written += len(data)
        self.bytes_written += len(data)
        self._pending_records += 1
        self._pending_bytes += len(data)

    def _stall(self, duration: float) -> None:
        self.stall_time += duration

    def _fsync_once(self) -> str:
        outcome = self.injector.on_fsync(self._stall)
        if outcome == "ok":
            os.fsync(self._handle.fileno())
        return outcome

    def _group_commit(self, strict: bool) -> bool:
        """Fsync the active segment; returns True if *believed* durable.

        ``strict`` retries to the death; tolerant mode tries once and on a
        transient failure simply leaves the batch pending (the frontier
        lags, output commits wait — the degradation the docs describe).
        """
        if self._believed >= self._written and self._pending_records == 0:
            return True
        if strict:
            outcome = self._retrying(self._fsync_once, "fsync")
        else:
            if self.injector.armed("torn_write"):
                # An armed torn write means the crash will interrupt this
                # batch's write in flight — it never reaches its fsync.
                # Hold the tolerant commit; the frontier lags the batch.
                return False
            try:
                outcome = self._fsync_once()
            except TransientStorageError:
                self.io_errors += 1
                return False
        self.fsyncs += 1
        if outcome == "lie":
            self.fsync_lies += 1
        else:
            self.bytes_fsynced += self._written - self._persisted
            self._persisted = self._written
        self._believed = self._written
        self._pending_records = 0
        self._pending_bytes = 0
        self.group_commits += 1
        try:
            self.injector.after_fsync()
        except StorageDeadError:
            self._dead = True
            self.dead_declared += 1
            raise
        return True

    def _maybe_group_commit(self) -> None:
        if (
            self._pending_records >= self._group_commit_records
            or self._pending_bytes >= self._group_commit_bytes
        ):
            if not self._group_commit(strict=False):
                if self._pending_records > self._max_pending_records:
                    # Degrade gracefully: block rather than let the
                    # un-durable window grow without bound.
                    self.forced_group_commits += 1
                    self._group_commit(strict=True)

    def _journal(self, rtype: int, obj: Any, sync: bool) -> None:
        self._append_frame(rtype, obj)
        if sync or self._fsync_policy == "strict":
            self._group_commit(strict=True)
        else:
            self._maybe_group_commit()

    def _rotate(self) -> None:
        """Seal the active segment (strict commit) and open the next."""
        self._group_commit(strict=True)
        self._handle.close()
        self._seg_index += 1
        self._handle = open(self._segment_path(self._seg_index), "ab")
        self._written = self._persisted = self._believed = 0

    def _compact(self) -> None:
        """Snapshot the live logical state and drop older segments.

        Crash-safe ordering: the snapshot is durable in the new segment
        *before* any old segment is unlinked.  A crash in between replays
        old segments and then the snapshot, which resets state wholesale —
        the same result.
        """
        self._rotate()
        snapshot = (
            list(self._checkpoints),
            list(self._log),
            list(self._announcements),
            set(self._committed_outputs),
            self.highest_incarnation_marker(),
        )
        self._append_frame(T_SNAPSHOT, snapshot)
        self._group_commit(strict=True)
        for name in list_segments(self.directory):
            if segment_index(name) < self._seg_index:
                os.unlink(os.path.join(self.directory, name))

    # ------------------------------------------------------------------
    # lifecycle: faults, crash, recovery
    # ------------------------------------------------------------------

    def arm_fault(self, event: Any) -> None:
        """Arm a fault from a :class:`StorageFaultEvent`.

        ``bit_flip`` applies immediately (latent media corruption of bytes
        already on disk); everything else arms the injector and fires at
        the matching physical operation.
        """
        if event.kind == "bit_flip":
            self._apply_bit_flip()
            return
        self.injector.arm(event.kind, event.count, event.duration)

    def _apply_bit_flip(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
            except (OSError, ValueError):
                pass
        segments = list_segments(self.directory)
        sizes = [
            os.path.getsize(os.path.join(self.directory, name))
            for name in segments
        ]
        total = sum(sizes)
        if total == 0:
            self.faults_ignored += 1
            return
        offset, bit = self.injector.pick_flip(total)
        for name, size in zip(segments, sizes):
            if offset < size:
                path = os.path.join(self.directory, name)
                with open(path, "r+b") as handle:
                    handle.seek(offset)
                    byte = handle.read(1)
                    handle.seek(offset)
                    handle.write(bytes([byte[0] ^ (1 << bit)]))
                return
            offset -= size

    def crash(self) -> None:
        """Process crash: the device keeps only what was truly persisted.

        Never raises.  The un-persisted tail of the active segment is
        discarded — or, with a ``torn_write`` fault armed, a partial
        prefix of it survives, cut mid-record, for recovery to detect.
        """
        try:
            if self._handle is not None:
                try:
                    self._handle.flush()
                except (OSError, ValueError):
                    pass
                try:
                    self._handle.close()
                except (OSError, ValueError):
                    pass
                self._handle = None
            keep = self._persisted
            tail = self._written - self._persisted
            torn = self.injector.torn_tail_length(tail)
            if torn:
                keep += torn
            path = self._segment_path(self._seg_index)
            if os.path.exists(path):
                with open(path, "r+b") as handle:
                    handle.truncate(keep)
        except OSError:
            pass
        # Refuse every operation until recover() has rebuilt the state.
        self._dead = True

    def recover(self) -> None:
        """REDO-only fast restart: scan, verify, truncate, rebuild.

        Replaces the in-memory mirror wholesale with the state folded out
        of the (possibly repaired) journal, then reopens the tail segment
        for appending.  Wall-clock cost lands in ``recovery_wall_s`` —
        the number the recovery benchmarks report.
        """
        start = time.perf_counter()
        state, stats = scan_segments(self.directory)
        self._checkpoints = state.checkpoints
        self._log = state.log
        self._announcements = state.announcements
        self._committed_outputs = state.committed
        self._highest_incarnation_marker = state.marker
        self._marker_cache = None
        self._dead = False
        self._durable_entry = Entry(0, 0)
        if self._handle is not None:
            try:
                self._handle.close()
            except (OSError, ValueError):
                pass
            self._handle = None
        self._open_tail()
        self.recoveries += 1
        self.recovered_records += stats.records
        self.torn_records_dropped += stats.torn_records
        self.corrupt_records_dropped += stats.corrupt_records
        self.recovery_wall_s += time.perf_counter() - start

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except (OSError, ValueError):
                pass
            self._handle = None

    # ------------------------------------------------------------------
    # durability frontier
    # ------------------------------------------------------------------

    def stable_frontier(self, current: Entry) -> Entry:
        """Believed-durable tip: ``current`` only when nothing is pending.

        While a group commit is outstanding the answer is frozen at the
        last entry for which the journal was (believed) fully durable, so
        the protocol's flush cannot announce stability — nor release
        output commits — for intervals whose log records could still be
        lost to a crash.
        """
        if self._pending_records == 0 and self._believed >= self._written:
            if current > self._durable_entry:
                self._durable_entry = current
            return current
        return min(self._durable_entry, current)

    # ------------------------------------------------------------------
    # logical operations: mirror via super(), journal beneath
    # ------------------------------------------------------------------

    def write_checkpoint(
        self,
        entry: Entry,
        app_state: Any,
        tdv: DependencyVector,
        received_ids: Set[MessageId],
        time_taken: float = 0.0,
    ) -> Checkpoint:
        self._ensure_alive()
        checkpoint = super().write_checkpoint(
            entry, app_state, tdv, received_ids, time_taken
        )
        self._journal(T_CHECKPOINT, checkpoint, sync=True)
        return checkpoint

    def discard_checkpoints_after(self, index: int) -> None:
        self._ensure_alive()
        super().discard_checkpoints_after(index)
        self._journal(T_CKPT_DISCARD, index, sync=True)

    def append_log(self, records: List[LoggedMessage], sync: bool) -> None:
        if not records:
            return
        self._ensure_alive()
        super().append_log(records, sync)
        # One frame per message: a torn write then loses at most a record
        # tail, never an unframed middle.
        strict = self._fsync_policy == "strict"
        for record in records:
            self._append_frame(T_LOGMSG, record)
            if strict:
                self._group_commit(strict=True)
            else:
                self._maybe_group_commit()
        if sync or strict:
            self._group_commit(strict=True)
        else:
            # The batch is the paper's "several messages ... in a single
            # operation": finish it with one tolerant group commit so the
            # stable frontier normally catches up each flush period.  A
            # transient failure is tolerated — the frontier simply lags.
            if (
                not self._group_commit(strict=False)
                and self._pending_records > self._max_pending_records
            ):
                self.forced_group_commits += 1
                self._group_commit(strict=True)

    def pop_logged_after(self, sii: IntervalIndex) -> List[LoggedMessage]:
        self._ensure_alive()
        popped = super().pop_logged_after(sii)
        if popped:
            self._journal(T_LOG_POP, sii, sync=True)
        return popped

    def truncate_before(self, checkpoint_index: int) -> int:
        self._ensure_alive()
        reclaimed = super().truncate_before(checkpoint_index)
        self._journal(T_GC, checkpoint_index, sync=False)
        if len(list_segments(self.directory)) >= COMPACT_SEGMENT_THRESHOLD:
            self._compact()
        return reclaimed

    def log_announcement(self, ann: FailureAnnouncement) -> None:
        self._ensure_alive()
        super().log_announcement(ann)
        self._journal(T_ANN, ann, sync=True)

    def log_incarnation_start(self, inc: int) -> None:
        self._ensure_alive()
        if inc > self._highest_incarnation_marker:
            super().log_incarnation_start(inc)
            self._journal(T_INCMARK, inc, sync=True)

    def record_committed_output(self, output_id: Any) -> None:
        self._ensure_alive()
        super().record_committed_output(output_id)
        self._journal(T_COMMIT, output_id, sync=True)
