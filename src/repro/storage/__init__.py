"""Stable storage (crash-surviving) and the volatile message buffer.

Stable storage is pluggable: :class:`ModelBackend` (alias
``StableStorage``) is the in-memory cost model, :class:`FileLogBackend`
a durable segmented file journal; :func:`make_backend` selects one from a
``SimConfig``.  :class:`StorageFaultInjector` arms deterministic device
faults beneath the file backend.
"""

from repro.storage.backend import BACKENDS, StableBackend, make_backend
from repro.storage.faults import (
    FAULT_KINDS,
    StorageDeadError,
    StorageError,
    StorageFaultInjector,
    TransientStorageError,
)
from repro.storage.stable import Checkpoint, LoggedMessage, ModelBackend, StableStorage
from repro.storage.volatile import VolatileBuffer

__all__ = [
    "BACKENDS",
    "Checkpoint",
    "FAULT_KINDS",
    "LoggedMessage",
    "ModelBackend",
    "StableBackend",
    "StableStorage",
    "StorageDeadError",
    "StorageError",
    "StorageFaultInjector",
    "TransientStorageError",
    "VolatileBuffer",
    "make_backend",
]


def __getattr__(name):
    # FileLogBackend imports lazily so that `import repro.storage` stays
    # cheap for model-only runs.
    if name == "FileLogBackend":
        from repro.storage.filelog import FileLogBackend

        return FileLogBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
