"""Stable storage (crash-surviving) and the volatile message buffer."""

from repro.storage.stable import Checkpoint, LoggedMessage, StableStorage
from repro.storage.volatile import VolatileBuffer

__all__ = ["Checkpoint", "LoggedMessage", "StableStorage", "VolatileBuffer"]
