"""Runtime layer: configuration, the simulation harness, and run metrics."""

from repro.runtime.config import SimConfig
from repro.runtime.harness import ProcessHost, SimulationHarness
from repro.runtime.metrics import RunMetrics, format_table

__all__ = ["ProcessHost", "RunMetrics", "SimConfig", "SimulationHarness", "format_table"]
