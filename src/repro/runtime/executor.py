"""Transport-agnostic interpretation of protocol effects.

The sans-IO core returns effects; *something* must turn them into sends,
timers, commits, and trace records.  Before the runtime backplane existed
that something lived inside the simulation harness, entangled with the
engine and the ground-truth oracle.  :class:`EffectExecutor` is the
factored-out interpreter shared by both drivers:

- the **simulation harness** plugs in the simulated :class:`Network`, the
  engine's timer queue, and :class:`ExecutionHooks` that feed the oracle
  and run the Theorem-4 / output-commit invariant checks inline;
- the **runtime backplane** (:mod:`repro.backplane`) plugs in a TCP
  transport, wall-clock timers, and no hooks — correctness is certified
  post-hoc by replaying the collected traces through the same oracle
  (:mod:`repro.oracle.ingest`).

The executor needs three capabilities from its environment:

- ``transport`` with the :class:`Network` signatures —
  ``send_app(msg)``, ``send_control(src, dst, payload)``,
  ``broadcast_control(src, payload, reliable=...)``;
- ``schedule(delay, callback)`` returning a cancellable handle
  (the engine in simulation, an asyncio adapter in the runtime);
- ``now_fn()`` — virtual time in simulation, wall-clock in the runtime.

With ``dep_trace`` enabled the executor additionally records the
``dep.*`` event family: a numeric, parser-free encoding of exactly the
facts the dependency oracle consumes (interval creations, stability,
recoveries, release/commit claims).  Post-hoc certification of a real
multi-process run rests on these events alone.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.effects import (
    BroadcastAnnouncement,
    CommitOutput,
    DuplicateDropped,
    Effect,
    MessageDelivered,
    MessageDiscarded,
    OutputDiscarded,
    ReleaseMessage,
    RequestLogging,
    RestartPerformed,
    RollbackPerformed,
    ScheduleRetransmit,
    SendNotification,
    StableProgress,
)
from repro.net.message import LoggingRequest
from repro.sim.trace import Tracer


class ExecutionHooks:
    """Observer slots the executor calls around actionable effects.

    The base class is a no-op (the runtime backplane's configuration);
    the simulation harness subclasses it to maintain the ground-truth
    oracle and evaluate invariants inline.
    """

    def pre_release(self, msg: Any) -> None:
        """Called before an app message is handed to the transport."""

    def pre_commit(self, record: Any) -> None:
        """Called before an output commit is recorded."""

    def post_commit(self, now: float, record: Any, wait: float = 0.0) -> None:
        """Called after the commit checks, before the trace record.

        ``wait`` is the output's buffer residence time (from
        :class:`~repro.core.effects.CommitOutput`) — the fallback latency
        sample when the payload carries no injection stamp."""

    def on_delivery(self, effect: MessageDelivered) -> None:
        """Called for every *non-replay* delivery (a new state interval)."""

    def on_stable(self, effect: StableProgress) -> None:
        """Called when a stability frontier advances."""

    def on_rollback(self, now: float, effect: RollbackPerformed) -> None:
        """Called when a non-failed process rolled back orphans."""

    def on_restart(self, now: float, effect: RestartPerformed) -> None:
        """Called when a failed process completed Restart."""


class EffectExecutor:
    """Interprets one process's protocol effects against an environment."""

    def __init__(
        self,
        pid: int,
        *,
        transport: Any,
        schedule: Callable[..., Any],
        now_fn: Callable[[], float],
        tracer: Tracer,
        on_retransmit: Callable[[Any], None],
        hooks: Optional[ExecutionHooks] = None,
        dep_trace: bool = False,
    ):
        self.pid = pid
        self.transport = transport
        self.schedule = schedule
        self.now_fn = now_fn
        self.tracer = tracer
        self.on_retransmit = on_retransmit
        self.hooks = hooks if hooks is not None else ExecutionHooks()
        self.dep_trace = dep_trace

    def execute(
        self,
        effects: List[Effect],
        probe: Optional[Callable[[Effect], None]] = None,
    ) -> None:
        """Interpret ``effects`` in stream order.

        ``probe`` (when given) runs for each effect *before* it is
        interpreted — the checker's effect-level invariant layer relies on
        seeing every effect against the state its predecessors produced.
        """
        pid = self.pid
        now = self.now_fn()
        tracer = self.tracer
        hooks = self.hooks
        dep = self.dep_trace
        for effect in effects:
            if probe is not None:
                probe(effect)
            if isinstance(effect, ReleaseMessage):
                msg = effect.message
                hooks.pre_release(msg)
                tracer.record(now, "msg.release", pid,
                              msg=str(msg.msg_id), dst=msg.dst,
                              entries=msg.piggyback_size())
                if dep:
                    si = msg.send_interval
                    data = {"inc": si.inc, "sii": si.sii,
                            "msg": str(msg.msg_id),
                            "replayed": msg.replayed}
                    # A per-message bound (Section 4.2) must travel with
                    # the release claim, or the post-hoc certifier would
                    # judge it against the global K.
                    if msg.k_limit is not None:
                        data["k"] = msg.k_limit
                    tracer.record(now, "dep.release", pid, **data)
                self.transport.send_app(msg)
            elif isinstance(effect, BroadcastAnnouncement):
                tracer.record(now, "ann.broadcast", pid,
                              ann=str(effect.announcement))
                # Announcements MUST eventually reach everyone (Theorem 1);
                # reliable=True engages the ack/retransmit layer when one is
                # configured and degrades to the plain path otherwise.
                self.transport.broadcast_control(
                    pid, effect.announcement, reliable=True
                )
            elif isinstance(effect, CommitOutput):
                record = effect.record
                hooks.pre_commit(record)
                hooks.post_commit(now, record, effect.wait)
                tracer.record(now, "output.commit", pid,
                              output=str(record.output_id))
                if dep:
                    si = record.send_interval
                    tracer.record(now, "dep.commit", pid,
                                  inc=si.inc, sii=si.sii,
                                  output=str(record.output_id),
                                  payload=record.payload,
                                  wait=round(effect.wait, 6))
            elif isinstance(effect, MessageDelivered):
                if not effect.replay:
                    hooks.on_delivery(effect)
                    if dep:
                        msg = effect.message
                        data = {"inc": effect.interval.inc,
                                "sii": effect.interval.sii,
                                "src": msg.src}
                        if msg.src >= 0 and msg.send_interval is not None:
                            data["src_inc"] = msg.send_interval.inc
                            data["src_sii"] = msg.send_interval.sii
                        tracer.record(now, "dep.deliver", pid, **data)
                tracer.record(now, "msg.deliver", pid,
                              msg=str(effect.message.msg_id),
                              interval=str(effect.interval),
                              replay=effect.replay)
            elif isinstance(effect, MessageDiscarded):
                tracer.record(now, "msg.discard", pid,
                              msg=str(effect.message.msg_id),
                              reason=effect.reason)
            elif isinstance(effect, DuplicateDropped):
                tracer.record(now, "msg.duplicate", pid,
                              msg=str(effect.message.msg_id))
            elif isinstance(effect, OutputDiscarded):
                tracer.record(now, "output.discard", pid,
                              output=str(effect.record.output_id))
            elif isinstance(effect, RequestLogging):
                for target in effect.targets:
                    self.transport.send_control(
                        pid, target, LoggingRequest(pid))
            elif isinstance(effect, SendNotification):
                self.transport.send_control(
                    pid, effect.dst, effect.notification)
            elif isinstance(effect, ScheduleRetransmit):
                self.schedule(
                    effect.delay,
                    lambda mid=effect.msg_id: self.on_retransmit(mid),
                )
            elif isinstance(effect, StableProgress):
                hooks.on_stable(effect)
                if dep:
                    tracer.record(now, "dep.stable", pid,
                                  inc=effect.through.inc,
                                  sii=effect.through.sii)
            elif isinstance(effect, RollbackPerformed):
                hooks.on_rollback(now, effect)
                tracer.record(now, "recovery.rollback", pid,
                              to=str(effect.restored_to),
                              new=str(effect.new_current),
                              undone=effect.intervals_undone)
                if dep:
                    tracer.record(now, "dep.recover", pid,
                                  s_inc=effect.restored_to.inc,
                                  s_sii=effect.restored_to.sii,
                                  n_inc=effect.new_current.inc,
                                  n_sii=effect.new_current.sii)
            elif isinstance(effect, RestartPerformed):
                hooks.on_restart(now, effect)
                tracer.record(now, "recovery.restart", pid,
                              ann=str(effect.announcement),
                              replayed=effect.replayed)
                if dep:
                    survivor = effect.announcement.end
                    tracer.record(now, "dep.recover", pid,
                                  s_inc=survivor.inc,
                                  s_sii=survivor.sii,
                                  n_inc=effect.new_current.inc,
                                  n_sii=effect.new_current.sii)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown effect {effect!r}")
