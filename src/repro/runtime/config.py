"""Simulation configuration.

One :class:`SimConfig` fully determines a run (together with the workload
and failure schedule): the same config + seed always reproduces the same
virtual execution, event for event.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class SimConfig:
    """Knobs for a simulated K-optimistic logging deployment."""

    # -- topology ---------------------------------------------------------
    n: int = 4
    #: Degree of optimism; ``None`` means K = N (classical optimistic).
    k: Optional[int] = None
    seed: int = 0

    # -- timers (virtual time units) ---------------------------------------
    #: Period of the asynchronous volatile-buffer flush.
    flush_interval: float = 40.0
    #: Period of checkpoints (each also flushes the volatile buffer).
    checkpoint_interval: float = 160.0
    #: Period of logging progress notifications.
    notify_interval: float = 20.0
    #: Downtime between a crash and the start of Restart.
    restart_delay: float = 10.0

    # -- network ---------------------------------------------------------
    msg_latency_base: float = 1.0
    msg_latency_jitter: float = 0.5
    #: Added transmission latency per piggybacked dependency entry.
    per_entry_latency: float = 0.05
    control_latency: float = 1.0
    fifo: bool = False

    # -- unreliable network -------------------------------------------------
    #: Per-transmission probability of a silent drop (message loss).
    drop_rate: float = 0.0
    #: Per-transmission probability of a duplicate delivery.
    duplicate_rate: float = 0.0
    #: Per-transmission probability of extra reordering delay.
    reorder_rate: float = 0.0
    #: Maximum extra delay added to a reordered transmission.
    reorder_spread: float = 4.0
    #: Subject control traffic to the same channel faults as app traffic.
    faults_on_control: bool = True
    #: Ack/retransmit layer: ``None`` enables it automatically whenever the
    #: network is unreliable (fault rates or schedule network events);
    #: ``True``/``False`` force it on/off.
    ack_layer: Optional[bool] = None
    #: Control-plane retransmission: initial timeout, backoff factor,
    #: timeout cap, and per-envelope retry budget.
    ctl_rto: float = 4.0
    ctl_backoff: float = 2.0
    ctl_rto_max: float = 60.0
    ctl_budget: int = 16
    #: App-message retransmission timeout (0 disables the timer; with the
    #: ack layer on and 0 here, the harness defaults it to ``ctl_rto``).
    retransmit_timeout: float = 0.0
    retransmit_backoff: float = 2.0
    retransmit_budget: int = 8

    # -- storage cost model -------------------------------------------------
    #: Cost charged per synchronous stable-storage operation.
    sync_write_cost: float = 1.0
    #: Cost charged per asynchronous (batched) stable-storage operation.
    async_write_cost: float = 0.1

    # -- storage backend -----------------------------------------------------
    #: ``"model"`` (in-memory cost model) or ``"filelog"`` (durable
    #: segmented journal with group commit and REDO restart).
    storage_backend: str = "model"
    #: Directory holding per-process journals for the file-log backend.
    #: ``None`` lets the harness create (and clean up) a temporary one.
    storage_dir: Optional[str] = None
    #: Rotate the journal to a fresh segment file past this many bytes.
    segment_bytes: int = 262144
    #: Group commit: fsync once this many async records are pending …
    group_commit_records: int = 8
    #: … or once this many bytes are pending, whichever comes first.
    group_commit_bytes: int = 65536
    #: Degradation threshold: past this many pending records a failing
    #: group commit turns into a forced, blocking one.
    max_pending_records: int = 64
    #: Transient-I/O retry budget and capped exponential backoff.
    io_retries: int = 5
    io_backoff_base: float = 0.002
    io_backoff_max: float = 0.1
    #: ``"group"`` batches async appends behind one fsync; ``"strict"``
    #: fsyncs every record (pessimistic-storage mode, used by tests).
    fsync_policy: str = "group"

    # -- protocol options ---------------------------------------------------
    #: Broadcast full log tables (gossip) vs. own row only.
    gossip_log_tables: bool = True
    #: Logging-progress dissemination: ``None`` broadcasts each notification
    #: to every process; an integer f sends it to f random peers per period
    #: (gossip-style dissemination, where full-table notifications shine).
    notify_fanout: Optional[int] = None
    #: Drop the own-incarnation dependency entry on every flush (Theorem 2),
    #: not just on checkpoints (Corollary 2).
    nullify_own_on_flush: bool = True
    #: Output-driven logging (Section 2): an enqueued output asks its
    #: dependency processes to flush immediately instead of waiting for
    #: their periodic notifications.
    output_driven_logging: bool = False
    #: Reclaim checkpoints/logs made unreachable by stability (Theorem 3).
    gc_on_checkpoint: bool = True
    #: Footnote 3: keep the last W released messages per destination in a
    #: volatile sent-log and retransmit them when the destination restarts
    #: (0 disables; lost in-transit messages then stay lost).
    retransmit_window: int = 0

    # -- adaptive-K control ---------------------------------------------------
    #: Run a per-process :class:`repro.control.AdaptiveKController` that
    #: retunes K at runtime through the per-message K path (Section 4.2).
    adaptive_k: bool = False
    #: Inclusive controller bounds; ``k_max=None`` means the resolved
    #: global K (so the controller never exceeds what the run declares).
    k_min: int = 0
    k_max: Optional[int] = None
    #: Period of the controller's observation tick (virtual time units).
    control_interval: float = 25.0
    #: Sliding latency-window size per controller.
    control_window: int = 256
    #: Output-commit latency SLO target (virtual units; 0 disables the
    #: SLO test — the controller then always probes upward while healthy).
    slo_output_latency: float = 0.0
    #: Which percentile of the window the SLO test (and reports) watch.
    slo_percentile: float = 99.0
    #: AIMD parameters: additive increase step, multiplicative decrease
    #: factor, and the optional exploration-probe probability.
    k_increase_step: int = 1
    k_decrease_factor: float = 0.5
    k_explore_probability: float = 0.0

    # -- execution ------------------------------------------------------------
    #: Event-loop shards (worker streams).  1 uses the plain single-heap
    #: engine; W > 1 uses :class:`repro.sim.shard.ShardedEngine`, whose
    #: deterministic cross-shard merge makes observable behaviour
    #: bit-identical for any value (routing affects placement only).
    shards: int = 1
    #: Run the W shard heaps on real cores: 0/1 executes in-process
    #: (serial), W > 1 spawns W worker OS processes driven by the
    #: epoch-barrier runner in :mod:`repro.parallel`.  Requires a reliable
    #: network (the conservative safe window assumes deterministic
    #: cross-shard latencies) and positive lookahead
    #: ``min(msg_latency_base - msg_latency_jitter, control_latency)``.
    parallel_workers: int = 0

    # -- notification encoding ------------------------------------------------
    #: Delta-encode logging-progress notifications: after the first full
    #: snapshot per peer, send only the entries changed since that peer's
    #: last notification (changelog cursor per destination).  Sound only on
    #: reliable transport — a lost delta would leave the peer permanently
    #: behind — so :meth:`validate` rejects it on unreliable networks.
    delta_notifications: bool = False

    # -- instrumentation ------------------------------------------------------
    trace_enabled: bool = True
    #: Record only categories with this dotted prefix (``None`` records
    #: everything).  Very large runs set ``"dep."`` so the certifier's
    #: events survive without holding millions of msg/timer records.
    trace_prefix: Optional[str] = None
    #: Maintain the inline :class:`repro.oracle.graph.DependencyOracle`.
    #: Off, the harness installs a null stub — post-hoc certification via
    #: ``dep.*`` trace ingest still works, which is how very large n runs
    #: (and parallel workers) are checked.
    oracle_enabled: bool = True
    #: Cross-check Theorem 4 / output commit against the oracle (slower).
    check_invariants: bool = True
    #: Additionally record the numeric ``dep.*`` trace events that the
    #: post-hoc certifier (:mod:`repro.oracle.ingest`) consumes.  The
    #: runtime backplane always records them; in simulation they are only
    #: needed for differential sim-vs-serve comparisons.
    dep_trace: bool = False

    def resolved_k(self) -> int:
        """The effective K: ``None`` maps to N (fully optimistic)."""
        return self.n if self.k is None else self.k

    def resolved_k_max(self) -> int:
        """The adaptive controller's ceiling: ``None`` maps to the
        resolved global K."""
        return self.resolved_k() if self.k_max is None else self.k_max

    def with_k(self, k: Optional[int]) -> "SimConfig":
        """A copy of this config with a different degree of optimism."""
        return replace(self, k=k)

    def validate(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.k is not None and self.k < 0:
            raise ValueError(f"K must be >= 0, got {self.k}")
        for name in ("flush_interval", "checkpoint_interval", "notify_interval"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.restart_delay < 0:
            raise ValueError("restart_delay must be non-negative")
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.reorder_spread < 0:
            raise ValueError("reorder_spread must be non-negative")
        for name in ("ctl_rto", "ctl_backoff", "ctl_rto_max"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.ctl_budget < 1:
            raise ValueError("ctl_budget must be at least 1")
        if self.retransmit_timeout < 0:
            raise ValueError("retransmit_timeout must be non-negative")
        if self.retransmit_backoff < 1.0:
            raise ValueError("retransmit_backoff must be at least 1")
        if self.retransmit_budget < 0:
            raise ValueError("retransmit_budget must be non-negative")
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {self.shards}")
        if self.parallel_workers < 0:
            raise ValueError(
                f"parallel_workers must be >= 0, got {self.parallel_workers}"
            )
        if self.parallel_workers > 1:
            if self.unreliable():
                raise ValueError(
                    "parallel_workers > 1 requires a reliable network "
                    "(channel fault rates must be zero)"
                )
            lookahead = min(self.msg_latency_base - self.msg_latency_jitter,
                            self.control_latency)
            if lookahead <= 0:
                raise ValueError(
                    "parallel_workers > 1 needs positive lookahead: "
                    "min(msg_latency_base - msg_latency_jitter, "
                    f"control_latency) = {lookahead} must be > 0"
                )
        if self.delta_notifications and self.unreliable():
            raise ValueError(
                "delta_notifications requires a reliable network: a lost "
                "delta would leave the peer's table permanently behind"
            )
        if self.check_invariants and not self.oracle_enabled:
            raise ValueError(
                "check_invariants requires oracle_enabled (inline checks "
                "consult the oracle); disable both for post-hoc-only runs"
            )
        if self.storage_backend not in ("model", "filelog"):
            raise ValueError(
                f"storage_backend must be 'model' or 'filelog', "
                f"got {self.storage_backend!r}"
            )
        if self.fsync_policy not in ("group", "strict"):
            raise ValueError(
                f"fsync_policy must be 'group' or 'strict', "
                f"got {self.fsync_policy!r}"
            )
        for name in ("segment_bytes", "group_commit_records",
                     "group_commit_bytes", "max_pending_records"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        if self.io_retries < 0:
            raise ValueError("io_retries must be non-negative")
        for name in ("io_backoff_base", "io_backoff_max"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.control_interval <= 0:
            raise ValueError("control_interval must be positive")
        if self.k_min < 0:
            raise ValueError(f"k_min must be >= 0, got {self.k_min}")
        if self.k_max is not None and self.k_max < self.k_min:
            raise ValueError(
                f"k_max ({self.k_max}) must be >= k_min ({self.k_min})"
            )
        if self.control_window < 1:
            raise ValueError("control_window must be at least 1")
        if self.slo_output_latency < 0:
            raise ValueError("slo_output_latency must be non-negative")
        if not 0.0 < self.slo_percentile <= 100.0:
            raise ValueError(
                f"slo_percentile must be in (0, 100], got {self.slo_percentile}"
            )
        if self.k_increase_step < 1:
            raise ValueError("k_increase_step must be at least 1")
        if not 0.0 <= self.k_decrease_factor < 1.0:
            raise ValueError(
                f"k_decrease_factor must be in [0, 1), "
                f"got {self.k_decrease_factor}"
            )
        if not 0.0 <= self.k_explore_probability <= 1.0:
            raise ValueError(
                "k_explore_probability must be in [0, 1], "
                f"got {self.k_explore_probability}"
            )

    def unreliable(self) -> bool:
        """True when configured channel fault rates can perturb traffic."""
        return (self.drop_rate > 0 or self.duplicate_rate > 0
                or self.reorder_rate > 0)
