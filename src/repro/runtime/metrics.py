"""Run metrics: the quantities the experiments report.

``RunMetrics`` is a plain summary computed once at the end of a run from
the protocol counters, the network, the oracle, and harness-level event
records.  Experiments print selected columns; tests assert on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def sample_mean(samples: Sequence[float]) -> float:
    """Arithmetic mean that is safe on degenerate windows.

    An empty window reports 0.0 instead of raising: latency accounting
    runs on every control tick and at the end of every run, including
    runs (or windows) that committed nothing.
    """
    if not samples:
        return 0.0
    return sum(samples) / len(samples)


def sample_percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an (unsorted) sample window.

    Degenerate windows are well-defined rather than errors: an empty
    window reports 0.0 and a single-sample window reports that sample
    for every q.  (:func:`repro.analysis.stats.percentile` raises on an
    empty sample by design — experiment aggregation treats an empty
    series as a bug; runtime latency windows must not.)
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


@dataclass
class RunMetrics:
    """Aggregated results of one simulation run."""

    # -- identification -----------------------------------------------------
    n: int = 0
    k: int = 0
    duration: float = 0.0

    # -- failure-free behaviour -------------------------------------------
    messages_enqueued: int = 0
    messages_released: int = 0
    messages_delivered: int = 0
    mean_send_hold: float = 0.0
    max_send_hold: float = 0.0
    mean_delivery_wait: float = 0.0
    mean_piggyback_entries: float = 0.0
    max_piggyback_entries: int = 0
    sync_writes: int = 0
    async_writes: int = 0
    storage_cost: float = 0.0
    control_messages: int = 0
    outputs_committed: int = 0
    mean_output_latency: float = 0.0

    # -- output-commit latency SLO ------------------------------------------
    #: End-to-end output-commit latency percentiles.  Samples are measured
    #: from workload injection (payloads carrying ``t0``, e.g. the
    #: open-loop workload) or, for payloads without an injection stamp,
    #: from output enqueue to commit.
    output_latency_p50: float = 0.0
    output_latency_p95: float = 0.0
    output_latency_p99: float = 0.0
    output_latency_count: int = 0
    #: The configured latency target (0 disables SLO accounting) and the
    #: fraction of samples that met it (1.0 with no target or no samples).
    slo_target: float = 0.0
    slo_attained: float = 1.0

    # -- adaptive-K control ---------------------------------------------------
    adaptive_k: bool = False
    #: Total K changes across all per-process controllers.
    k_decisions: int = 0
    #: Mean K over every controller observation, and the mean final K.
    k_mean: float = 0.0
    k_final_mean: float = 0.0

    # -- recovery behaviour ---------------------------------------------------
    crashes: int = 0
    rollbacks: int = 0
    processes_rolled_back: int = 0
    intervals_undone: int = 0
    intervals_lost: int = 0
    orphans_discarded: int = 0
    outputs_discarded: int = 0
    messages_requeued: int = 0
    duplicates_dropped: int = 0
    app_messages_lost: int = 0
    retransmissions: int = 0
    gc_reclaimed: int = 0
    final_log_records: int = 0
    final_checkpoints: int = 0
    mean_recovery_span: float = 0.0

    # -- storage backend (file-log; zeros on the in-memory model) -------------
    storage_bytes_written: int = 0
    storage_bytes_fsynced: int = 0
    storage_fsyncs: int = 0
    storage_group_commits: int = 0
    storage_forced_commits: int = 0
    storage_io_errors: int = 0
    storage_io_retries: int = 0
    storage_fsync_lies: int = 0
    storage_recoveries: int = 0
    storage_recovered_records: int = 0
    storage_torn_dropped: int = 0
    storage_corrupt_dropped: int = 0
    #: Wall-clock seconds spent in REDO recovery scans (not virtual time).
    storage_recovery_wall_s: float = 0.0
    #: Times a backend declared itself dead (retry budget exhausted or an
    #: injected fsync-boundary crash).
    storage_dead_declared: int = 0
    #: Dead-backend events the runtime converted into fail-stop crashes.
    storage_deaths: int = 0

    # -- unreliable network ---------------------------------------------------
    app_drops: int = 0
    control_drops: int = 0
    partition_drops: int = 0
    duplicates_injected: int = 0
    partitions: int = 0
    partition_time: float = 0.0
    #: Timer-driven app-message retransmissions (sender timeout fired).
    timer_retransmissions: int = 0
    acks_received: int = 0
    retransmit_budget_exhausted: int = 0
    #: Control-plane (envelope) retransmission statistics.
    ctl_retransmits: int = 0
    ctl_acked: int = 0
    ctl_budget_exhausted: int = 0
    mean_ack_rtt: float = 0.0
    #: Outputs still waiting in some Output_buffer at the end of the run.
    outputs_pending: int = 0

    # -- ground truth -----------------------------------------------------------
    total_intervals: int = 0
    rolled_back_intervals: int = 0
    #: Largest oracle-computed potential-revoker set observed at any
    #: app-message release (Theorem 4 bounds this by K).
    max_release_revokers: int = 0
    violations: List[str] = field(default_factory=list)

    def throughput(self) -> float:
        """Delivered application messages per virtual time unit."""
        if self.duration <= 0:
            return 0.0
        return self.messages_delivered / self.duration

    def as_row(self) -> Dict[str, object]:
        """Flat dict for tabular reports."""
        return {
            "n": self.n,
            "K": self.k,
            "released": self.messages_released,
            "delivered": self.messages_delivered,
            "hold_mean": round(self.mean_send_hold, 3),
            "pgb_mean": round(self.mean_piggyback_entries, 3),
            "sync_w": self.sync_writes,
            "async_w": self.async_writes,
            "outputs": self.outputs_committed,
            "out_lat": round(self.mean_output_latency, 3),
            "crashes": self.crashes,
            "rollbacks": self.rollbacks,
            "procs_rb": self.processes_rolled_back,
            "undone": self.intervals_undone,
            "orphans": self.orphans_discarded,
        }


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), max(len(str(r.get(h, ""))) for r in rows)) for h in headers
    }
    lines = [
        "  ".join(str(h).rjust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row.get(h, "")).rjust(widths[h]) for h in headers))
    return "\n".join(lines)
