"""The simulation harness: protocol instances wired to the event engine.

Responsibilities:

- host one recovery-layer protocol per process and interpret its effects
  (transmit, broadcast, commit);
- drive the periodic activities the paper assumes: asynchronous flushes,
  checkpoints, logging progress notifications;
- inject workload traffic (outside-world messages with empty dependency
  vectors) and crash/restart processes per the failure schedule;
- maintain the ground-truth oracle and cross-check protocol claims
  (Theorem 4 on every release, emptiness of revoker sets on every output
  commit, global consistency at quiescence);
- model reliability assumptions: application messages to a crashed process
  are lost (the paper's footnote 3 declares lost in-transit messages out of
  scope); on a reliable network control messages are queued and delivered
  at restart (recovery announcements use reliable broadcast, as in
  Strom-Yemini), while on an unreliable one announcements travel through
  the ack/retransmit layer and timer-driven retransmission covers lost
  application messages.
"""

from __future__ import annotations

import itertools
import shutil
import tempfile
import weakref
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.app.behavior import AppBehavior
from repro.core.depvec import DependencyVector
from repro.core.effects import Effect, MessageDelivered, RestartPerformed, RollbackPerformed, StableProgress
from repro.core.protocol import KOptimisticProcess
from repro.failures.injector import (
    CrashEvent,
    FailureSchedule,
    HealEvent,
    LossEvent,
    PartitionEvent,
    StorageFaultEvent,
)
from repro.net.channel import FixedLatency, UniformLatency
from repro.net.faults import ChannelFaults, NetworkFaultModel
from repro.net.message import (
    AppAck,
    AppMessage,
    ControlAck,
    ControlEnvelope,
    FailureAnnouncement,
    LoggingRequest,
    LogProgressNotification,
)
from repro.net.network import Network
from repro.net.reliable import ReliableConfig
from repro.oracle.graph import DependencyOracle
from repro.runtime.config import SimConfig
from repro.runtime.executor import EffectExecutor, ExecutionHooks
from repro.runtime.metrics import RunMetrics, sample_mean, sample_percentile
from repro.storage.backend import make_backend
from repro.storage.faults import StorageDeadError
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.types import MessageId

#: Signature for plugging in baseline protocols.
ProtocolFactory = Callable[[int, SimConfig, AppBehavior, Callable[[], float]], Any]


def protocol_factory_for(cls: type) -> ProtocolFactory:
    """A :data:`ProtocolFactory` that builds ``cls`` (a
    :class:`KOptimisticProcess` subclass) with the standard config-derived
    keyword arguments.  Used for the default protocol, and by the checker's
    deliberately broken mutants (:mod:`repro.check.mutants`)."""

    def factory(
        pid: int, config: SimConfig, behavior: AppBehavior,
        now_fn: Callable[[], float],
    ) -> KOptimisticProcess:
        return cls(
            pid=pid,
            n=config.n,
            k=config.resolved_k(),
            behavior=behavior,
            storage=make_backend(config, pid),
            seed=config.seed,
            now_fn=now_fn,
            nullify_own_on_flush=config.nullify_own_on_flush,
            output_driven_logging=config.output_driven_logging,
            gc_on_checkpoint=config.gc_on_checkpoint,
            retransmit_window=config.retransmit_window,
            retransmit_timeout=config.retransmit_timeout,
            retransmit_backoff=config.retransmit_backoff,
            retransmit_budget=config.retransmit_budget,
            delta_notifications=config.delta_notifications,
        )

    return factory


_default_protocol_factory = protocol_factory_for(KOptimisticProcess)


class _NullOracle:
    """Stand-in for :class:`DependencyOracle` when ``oracle_enabled`` is
    off (very large n, parallel workers).  Absorbs every recording call;
    correctness is then certified post-hoc from ``dep.*`` traces via
    :mod:`repro.oracle.ingest`."""

    total_intervals = 0
    rolled_back_intervals = 0

    def start_process(self, pid: int) -> None:
        pass

    def record_delivery(self, *args: Any) -> None:
        pass

    def mark_stable(self, *args: Any) -> None:
        pass

    def record_recovery(self, *args: Any) -> None:
        pass

    def live_interval(self, pid: int) -> None:
        return None

    def exists(self, interval: Any) -> bool:
        return False

    def check_consistency(self) -> List[str]:
        return []


class _OracleHooks(ExecutionHooks):
    """Executor hooks that maintain the harness's ground-truth oracle and
    evaluate the inline invariant checks (Theorem 4 at release, empty
    revoker set at output commit)."""

    def __init__(self, harness: "SimulationHarness", pid: int):
        self.harness = harness
        self.pid = pid

    def pre_release(self, msg: AppMessage) -> None:
        if self.harness.config.check_invariants and msg.src >= 0:
            self.harness.check_release_bound(msg)

    def pre_commit(self, record: Any) -> None:
        if self.harness.config.check_invariants:
            self.harness.check_output_commit(record)

    def post_commit(self, now: float, record: Any, wait: float = 0.0) -> None:
        self.harness.committed_outputs.append((now, record))
        # Output-commit latency sample: end-to-end (injection to commit)
        # when the payload carries an open-loop injection stamp ``t0``,
        # buffer residence time otherwise.  Feeds both the run-level SLO
        # percentiles and this process's adaptive-K controller window.
        sample = wait
        payload = getattr(record, "payload", None)
        if isinstance(payload, dict):
            t0 = payload.get("t0")
            if isinstance(t0, (int, float)):
                sample = now - float(t0)
        self.harness.output_latency_samples.append(sample)
        host = self.harness.hosts[self.pid]
        if host.controller is not None:
            host.commit_waits.append(sample)

    def on_delivery(self, effect: MessageDelivered) -> None:
        self.harness.oracle.record_delivery(
            self.pid, effect.interval,
            effect.message.src, effect.message.send_interval,
        )

    def on_stable(self, effect: StableProgress) -> None:
        self.harness.oracle.mark_stable(self.pid, effect.through)

    def on_rollback(self, now: float, effect: RollbackPerformed) -> None:
        self.harness.oracle.record_recovery(
            self.pid, effect.restored_to, effect.new_current
        )
        self.harness.rollback_events.append((now, self.pid))

    def on_restart(self, now: float, effect: RestartPerformed) -> None:
        survivor = effect.announcement.end
        # Count lost intervals against the pre-truncation chain tip.
        tip = self.harness.oracle.live_interval(self.pid)
        tip_sii = tip[2] if tip else 0
        self.harness.intervals_lost += max(0, tip_sii - survivor.sii)
        self.harness.oracle.record_recovery(
            self.pid, survivor, effect.new_current
        )


#: Engine priority of the per-host notification drain: strictly after all
#: same-time message deliveries (priority 0) so a tick's notifications are
#: all in the batch before it fires.
_NOTIF_DRAIN_PRIORITY = 4


class ProcessHost:
    """Runtime wrapper around one protocol instance."""

    def __init__(self, harness: "SimulationHarness", pid: int, protocol: Any):
        self.harness = harness
        self.pid = pid
        self.protocol = protocol
        self.executor = EffectExecutor(
            pid,
            transport=harness.network,
            schedule=harness.engine.schedule,
            now_fn=lambda: harness.engine.now,
            tracer=harness.tracer,
            on_retransmit=self._retransmit_timer,
            hooks=_OracleHooks(harness, pid),
            dep_trace=harness.config.dep_trace,
        )
        self.down = False
        self.pending_control: List[Any] = []
        #: Same-tick notification fan-in buffer: log-progress notifications
        #: arriving at one virtual time are merged in a single batched pass
        #: (one table merge + one release/commit scan) by a drain event
        #: scheduled behind all same-time deliveries.
        self._notif_batch: List[LogProgressNotification] = []
        self.lost_app_messages = 0
        self.crash_count = 0
        #: Adaptive-K controller (None unless ``config.adaptive_k``); the
        #: harness installs ``controller.recommend`` as the protocol's
        #: per-message ``k_policy``.
        self.controller: Optional[Any] = None
        #: Latency samples accumulated since the last control tick.
        self.commit_waits: List[float] = []
        #: Times the storage backend declared itself dead (fail-stop).
        self.storage_deaths = 0
        #: Transport-level dedup of reliable control envelopes by
        #: ``(src, seq)``.  Survives crashes: the transport endpoint's
        #: identity persists, and a seen envelope was already handed to the
        #: protocol (announcements are logged synchronously on receipt).
        self._ctl_seen: Set[Tuple[int, int]] = set()

    # -- incoming traffic ---------------------------------------------------

    def incoming(self, payload: Any) -> None:
        try:
            self._incoming(payload)
        except StorageDeadError:
            self._storage_failed("incoming")

    def _incoming(self, payload: Any) -> None:
        if self.down:
            if isinstance(payload, (ControlEnvelope, AppAck)):
                # The transport endpoint died with the process: no ack is
                # sent, so the sender's retransmission timer keeps the
                # envelope alive until we answer after restart.
                self.harness.tracer.record(
                    self.harness.engine.now, "net.lost", self.pid,
                    msg=str(payload),
                )
            elif isinstance(payload, (FailureAnnouncement, LogProgressNotification)):
                self.pending_control.append(payload)
            else:
                # Logging requests are best-effort hints: dropping one only
                # delays an output until the next periodic notification.
                self.lost_app_messages += isinstance(payload, AppMessage)
                self.harness.tracer.record(
                    self.harness.engine.now, "net.lost", self.pid,
                    msg=str(getattr(payload, "msg_id", payload)),
                )
            return
        if isinstance(payload, ControlEnvelope):
            # Always ack — the previous ack may itself have been lost —
            # but hand each envelope to the protocol exactly once.
            self.harness.network.send_control(
                self.pid, payload.src,
                ControlAck(payload.seq, self.pid, payload.src),
            )
            key = (payload.src, payload.seq)
            if key in self._ctl_seen:
                return
            self._ctl_seen.add(key)
            self.incoming(payload.payload)
            return
        if isinstance(payload, AppAck):
            self.execute(self.protocol.on_ack(payload))
            return
        if isinstance(payload, AppMessage):
            effects = self.protocol.on_receive(payload)
            if self.harness.ack_enabled and payload.src >= 0:
                self.harness.network.send_control(
                    self.pid, payload.src,
                    AppAck(payload.msg_id, self.pid, payload.src),
                )
        elif isinstance(payload, FailureAnnouncement):
            self.harness.tracer.record(
                self.harness.engine.now, "ann.receive", self.pid, ann=str(payload)
            )
            effects = self.protocol.on_failure_announcement(payload)
        elif isinstance(payload, LogProgressNotification):
            # Batch same-time notifications: the first arrival schedules a
            # drain event behind every other same-time delivery (priority 4
            # > the deliveries' 0), so N notifications landing on one tick
            # cost one table merge and one release/commit scan instead of N.
            self._notif_batch.append(payload)
            if len(self._notif_batch) == 1:
                self.harness.engine.schedule_at(
                    self.harness.engine.now, self._drain_notifications,
                    priority=_NOTIF_DRAIN_PRIORITY,
                    label=f"notify-drain:{self.pid}", shard=self.pid,
                )
            return
        elif isinstance(payload, LoggingRequest):
            effects = self.protocol.on_logging_request(payload)
        else:
            raise TypeError(f"unexpected payload {payload!r}")
        self.execute(effects)

    # -- effect interpretation ------------------------------------------------

    def execute(self, effects: List[Effect]) -> None:
        """Interpret protocol effects via the shared executor.

        The checker's effect probes (when any are registered) run per
        effect *before* interpretation; the indirection is built only on
        the instrumented path to keep normal runs lean."""
        effect_probes = self.harness.effect_probes
        probe = None
        if effect_probes:
            def probe(effect: Effect) -> None:
                for p in effect_probes:
                    p(self, effect)
        self.executor.execute(effects, probe)

    def _drain_notifications(self) -> None:
        """Apply every notification batched at the current tick in one
        pass.  The table merge is a monotone elementwise maximum, so one
        merged application is equivalent to processing the notifications
        one by one — only cheaper."""
        batch, self._notif_batch = self._notif_batch, []
        if not batch:
            return
        if self.down:
            # Crashed between batching and the drain: same treatment as
            # notifications that arrive while down — replay at restart.
            self.pending_control.extend(batch)
            return
        try:
            self.execute(self.protocol.on_log_notifications(batch))
        except StorageDeadError:
            self._storage_failed("notification")

    def _retransmit_timer(self, msg_id: MessageId) -> None:
        if self.down:
            return  # crash cleared _unacked; the timer dies with it
        self.execute(self.protocol.on_retransmit_timer(msg_id))

    # -- periodic activities --------------------------------------------------

    def flush(self) -> None:
        if self.down:
            return
        try:
            self.execute(self.protocol.flush())
        except StorageDeadError:
            self._storage_failed("flush")

    def checkpoint(self) -> None:
        if self.down:
            return
        try:
            self.execute(self.protocol.checkpoint())
        except StorageDeadError:
            self._storage_failed("checkpoint")

    def notify(self) -> None:
        if self.down:
            return
        own_only = not self.harness.config.gossip_log_tables
        delta = getattr(self.protocol, "delta_notifications", False)
        if not delta:
            notif = self.protocol.make_log_notification(own_only=own_only)
        fanout = self.harness.config.notify_fanout
        if fanout is None:
            if delta:
                # Delta encoding is per-destination (each peer has its own
                # changelog cursor), so the broadcast unrolls into per-dst
                # sends in the same order broadcast_control would use.
                for dst in range(self.harness.config.n):
                    if dst == self.pid:
                        continue
                    self.harness.network.send_control(
                        self.pid, dst,
                        self.protocol.make_log_notification_for(
                            dst, own_only=own_only),
                    )
            else:
                self.harness.network.broadcast_control(self.pid, notif)
            return
        n = self.harness.config.n
        rng = self.harness.rngs.stream(f"notify/{self.pid}")
        # Sample peer *indices* and skip over our own pid arithmetically:
        # same draws as sampling an explicit peers list, without building
        # an (n-1)-element list per notification.
        for idx in rng.sample(range(n - 1), min(fanout, n - 1)):
            dst = idx if idx < self.pid else idx + 1
            if delta:
                notif = self.protocol.make_log_notification_for(
                    dst, own_only=own_only)
            self.harness.network.send_control(self.pid, dst, notif)

    def control_tick(self) -> None:
        """One adaptive-K observation: feed the controller the latency
        samples gathered since the last tick plus the cumulative
        revocation evidence (rollbacks, restarts, orphan and output
        discards — everything that proves optimism recently cost work)."""
        if self.controller is None or self.down:
            return
        from repro.control import Observation

        stats = self.protocol.stats
        drained, self.commit_waits = self.commit_waits, []
        obs = Observation(
            time=self.harness.engine.now,
            revocations=(stats.rollbacks + stats.restarts
                         + stats.orphans_discarded + stats.outputs_discarded),
            commit_waits=tuple(drained),
        )
        new_k = self.controller.observe(obs)
        self.harness.tracer.record(
            self.harness.engine.now, "control.k", self.pid, k=new_k,
        )

    # -- failure handling -----------------------------------------------------

    def _storage_failed(self, context: str) -> None:
        """The backend declared itself dead mid-operation: degrade to a
        clean fail-stop crash handled by the normal Restart path (whose
        recovery scan also revives the backend)."""
        self.storage_deaths += 1
        self.harness.tracer.record(
            self.harness.engine.now, "storage.dead", self.pid, context=context
        )
        self.crash()

    def crash(self) -> None:
        if self.down:
            return  # already down; schedule says crash a dead process: no-op
        self.down = True
        self.crash_count += 1
        self.protocol.crash()
        # Fail-stop: a dead process transmits nothing, including control
        # retransmissions queued on its behalf before the crash.
        self.harness.network.on_process_crash(self.pid)
        self.harness.tracer.record(self.harness.engine.now, "failure.crash", self.pid)
        self.harness.engine.schedule(
            self.harness.config.restart_delay, self.restart
        )

    def restart(self) -> None:
        if not self.down:
            return
        try:
            effects = self.protocol.restart()
        except StorageDeadError:
            # The journal could not be brought back (or a sync write during
            # Restart itself died).  Stay down and retry: injected faults
            # are consumed as they fire, so a retry eventually succeeds.
            self.storage_deaths += 1
            self.harness.tracer.record(
                self.harness.engine.now, "storage.dead", self.pid,
                context="restart",
            )
            if not self.protocol.failed:
                # Restart died partway through coming back up: crash the
                # protocol again so the next attempt starts from a clean
                # failed state.
                self.protocol.crash()
            self.harness.engine.schedule(
                self.harness.config.restart_delay, self.restart
            )
            return
        self.down = False
        # Back alive: pre-crash reliable-control envelopes may resume their
        # retry cycle (destinations deduplicate, so re-sends are harmless).
        self.harness.network.on_process_restart(self.pid)
        self.execute(effects)
        # Replay forced nothing new to disk, but the stable prefix is intact;
        # deliver the control traffic that arrived while we were down.
        pending, self.pending_control = self.pending_control, []
        for payload in pending:
            self.incoming(payload)


class SimulationHarness:
    """Builds and runs one simulated deployment."""

    def __init__(
        self,
        config: SimConfig,
        behavior: AppBehavior,
        failures: Optional[FailureSchedule] = None,
        protocol_factory: ProtocolFactory = _default_protocol_factory,
    ):
        config.validate()
        self.failures = failures or FailureSchedule.none()
        # Resolve the unreliable-network stack: a fault model whenever the
        # config rates or the schedule can perturb traffic, and (unless
        # forced) the ack/retransmit layer alongside it.
        unreliable = config.unreliable() or self.failures.has_network_events()
        self.ack_enabled = (
            unreliable if config.ack_layer is None else config.ack_layer
        )
        if self.ack_enabled and config.retransmit_timeout == 0:
            config = replace(config, retransmit_timeout=config.ctl_rto)
        # The file-log backend needs a directory; resolve an unset one to a
        # temporary directory owned (and eventually removed) by the harness.
        self._owned_storage_dir: Optional[str] = None
        if config.storage_backend == "filelog" and config.storage_dir is None:
            self._owned_storage_dir = tempfile.mkdtemp(prefix="repro-filelog-")
            config = replace(config, storage_dir=self._owned_storage_dir)
            # Backstop cleanup if close() is never called; close() is still
            # the polite way to release file handles promptly.
            self._dir_finalizer = weakref.finalize(
                self, shutil.rmtree, self._owned_storage_dir, True
            )
        self.config = config
        self.behavior = behavior
        if config.shards > 1:
            from repro.sim.shard import ShardedEngine

            self.engine: Engine = ShardedEngine(config.shards)
        else:
            self.engine = Engine()
        self.rngs = RngRegistry(config.seed)
        self.tracer = Tracer(enabled=config.trace_enabled,
                             prefix=config.trace_prefix)
        self.oracle: Any = (DependencyOracle(config.n) if config.oracle_enabled
                            else _NullOracle())
        faults = None
        if unreliable:
            faults = NetworkFaultModel(
                self.rngs,
                ChannelFaults(
                    drop=config.drop_rate,
                    duplicate=config.duplicate_rate,
                    reorder=config.reorder_rate,
                    reorder_spread=config.reorder_spread,
                ),
                apply_to_control=config.faults_on_control,
            )
        reliable_config = None
        if self.ack_enabled:
            reliable_config = ReliableConfig(
                rto=config.ctl_rto,
                backoff=config.ctl_backoff,
                rto_max=config.ctl_rto_max,
                budget=config.ctl_budget,
            )
        self.network = self._build_network(config, faults, reliable_config)
        #: Probe layer (repro.check): callables invoked per executed
        #: effect and per engine step.  Empty in normal runs.
        self.effect_probes: List[Callable[["ProcessHost", Effect], None]] = []
        self._step_probes: List[Callable[["SimulationHarness"], None]] = []
        controller_config = None
        if config.adaptive_k:
            # Imported lazily: repro.control's latency math lives on
            # repro.runtime.metrics, so a top-level import here would
            # close an import cycle through the package __init__s.
            from repro.control import AdaptiveKController, ControllerConfig

            controller_config = ControllerConfig(
                k_min=config.k_min,
                k_max=config.resolved_k_max(),
                slo_target=config.slo_output_latency,
                slo_percentile=config.slo_percentile,
                window=config.control_window,
                increase_step=config.k_increase_step,
                decrease_factor=config.k_decrease_factor,
                explore_probability=config.k_explore_probability,
            )
        self.hosts: List[ProcessHost] = []
        for pid in range(config.n):
            protocol = protocol_factory(pid, config, behavior, lambda: self.engine.now)
            host = ProcessHost(self, pid, protocol)
            if controller_config is not None:
                host.controller = AdaptiveKController(
                    pid, controller_config, seed=config.seed
                )
                # Every message the application sends without an explicit
                # bound now carries the controller's current K (Section
                # 4.2's per-message path keeps receivers correct).
                host.protocol.k_policy = host.controller.recommend
            self.hosts.append(host)
            self.network.register(pid, host.incoming)
        for host in self.hosts:
            host.execute(host.protocol.initialize())
            self.oracle.start_process(host.pid)

        self.committed_outputs: List[Tuple[float, Any]] = []
        #: One output-commit latency sample per committed output:
        #: end-to-end when the payload stamps ``t0``, buffer wait otherwise.
        self.output_latency_samples: List[float] = []
        self.rollback_events: List[Tuple[float, int]] = []
        self.crash_events: List[Tuple[float, int]] = []
        self.partition_events: List[Tuple[float, str]] = []
        self.violations: List[str] = []
        self.intervals_lost = 0
        #: Largest potential-revoker set seen at any release (Theorem 4's
        #: quantity; must stay <= K on every release of an app message).
        self.max_release_revokers = 0
        self._inject_seq = itertools.count()
        self._horizon = 0.0

        # Handles are retained so run() can cancel events scheduled beyond
        # the horizon (they must not fire mid-settle).
        self._failure_handles: List[Tuple[Any, Any]] = []
        for event in self.failures:
            self._failure_handles.append(
                (event, self.engine.schedule_at(
                    event.time, self._make_failure(event),
                    label=f"failure:{type(event).__name__}"))
            )

    def _build_network(
        self,
        config: SimConfig,
        faults: Optional[NetworkFaultModel],
        reliable_config: Optional[ReliableConfig],
    ) -> Network:
        """Construct the transport.  Factory method so the parallel worker
        harness (:mod:`repro.parallel.worker`) can substitute a network
        that exports cross-worker sends instead of delivering locally."""
        return Network(
            n=config.n,
            engine=self.engine,
            rngs=self.rngs,
            latency=UniformLatency(
                max(0.0, config.msg_latency_base - config.msg_latency_jitter),
                config.msg_latency_base + config.msg_latency_jitter,
                per_entry=config.per_entry_latency,
            ),
            control_latency=FixedLatency(config.control_latency),
            fifo=config.fifo,
            tracer=self.tracer,
            faults=faults,
            reliable_config=reliable_config,
        )

    # -- probe layer ------------------------------------------------------------

    def add_step_probe(self, probe: Callable[["SimulationHarness"], None]) -> None:
        """Register a callback to run after *every* engine event.

        Probes receive the harness and typically append to
        :attr:`violations`; the systematic checker (:mod:`repro.check`)
        uses this to evaluate invariants at step granularity.
        """
        self._step_probes.append(probe)
        if self.engine.post_step is None:
            self.engine.post_step = self._run_step_probes

    def add_effect_probe(
        self, probe: Callable[["ProcessHost", Effect], None]
    ) -> None:
        """Register a callback invoked for each protocol effect, just
        before the harness interprets it."""
        self.effect_probes.append(probe)

    def _run_step_probes(self) -> None:
        for probe in self._step_probes:
            probe(self)

    # -- workload injection ---------------------------------------------------

    def inject_at(self, time: float, dst: int, payload: Any) -> None:
        """Schedule an outside-world message for ``dst`` at ``time``.

        The injection sequence number is drawn *now*, at schedule time:
        workloads install injections in one deterministic order, so the
        assignment is identical whether one harness schedules all of them
        or each parallel worker schedules only its local subset."""
        seq = next(self._inject_seq)
        self.engine.schedule_at(time, lambda: self.inject_now(dst, payload, seq),
                                label=f"inject->{dst}", shard=dst)

    def inject_now(self, dst: int, payload: Any,
                   seq: Optional[int] = None) -> None:
        """Deliver an outside-world message to ``dst`` immediately.

        Environment messages carry an empty dependency vector (the outside
        world has no rollback-able state) and a unique id drawn from a
        virtual sender ``-1``.
        """
        if seq is None:
            seq = next(self._inject_seq)
        msg = AppMessage(
            msg_id=MessageId(-1, 0, 0, seq),
            src=-1,
            dst=dst,
            payload=payload,
            tdv=DependencyVector(self.config.n),
        )
        self.hosts[dst].incoming(msg)

    # -- failure plumbing ------------------------------------------------------

    def _make_crash(self, pid: int) -> Callable[[], None]:
        def crash() -> None:
            self.crash_events.append((self.engine.now, pid))
            self.hosts[pid].crash()

        return crash

    def _make_failure(self, event: Any) -> Callable[[], None]:
        """Map one schedule entry to its engine callback."""
        if isinstance(event, CrashEvent):
            return self._make_crash(event.pid)
        if isinstance(event, PartitionEvent):
            def partition() -> None:
                self.network.faults.start_partition(event.islands,
                                                    self.engine.now)
                self.partition_events.append((self.engine.now, "partition"))
                self.tracer.record(self.engine.now, "net.partition", -1,
                                   islands=str(event.islands))

            return partition
        if isinstance(event, HealEvent):
            def heal() -> None:
                self.network.faults.heal(self.engine.now)
                self.partition_events.append((self.engine.now, "heal"))
                self.tracer.record(self.engine.now, "net.heal", -1)

            return heal
        if isinstance(event, LossEvent):
            def loss() -> None:
                self.network.faults.set_rates(drop=event.drop,
                                              duplicate=event.duplicate,
                                              reorder=event.reorder)
                self.tracer.record(self.engine.now, "net.loss_rates", -1,
                                   drop=event.drop, duplicate=event.duplicate,
                                   reorder=event.reorder)

            return loss
        if isinstance(event, StorageFaultEvent):
            def storage_fault() -> None:
                self.tracer.record(self.engine.now, "storage.fault", event.pid,
                                   kind=event.kind, count=event.count)
                self.hosts[event.pid].protocol.storage.arm_fault(event)

            return storage_fault
        raise TypeError(f"unknown failure event {event!r}")

    # -- invariant checks --------------------------------------------------------

    def check_release_bound(self, msg: AppMessage) -> None:
        """Theorem 4: at release, at most K processes can revoke ``msg``."""
        interval = (msg.src, msg.send_interval.inc, msg.send_interval.sii)
        if not self.oracle.exists(interval):
            return  # replay re-send of a pre-crash interval; already checked
        revokers = self.oracle.potential_revokers(interval)
        if len(revokers) > self.max_release_revokers:
            self.max_release_revokers = len(revokers)
        # A message carrying its own bound (Section 4.2) is judged against
        # that bound, not the system-wide K — the global default applies
        # only to unstamped messages.
        k = (self.config.resolved_k() if msg.k_limit is None
             else msg.k_limit)
        if len(revokers) > k:
            self.violations.append(
                f"Theorem 4 violated: {msg.msg_id} released with "
                f"{len(revokers)} potential revokers {sorted(revokers)} > K={k}"
            )

    def check_output_commit(self, record: Any) -> None:
        """A committed output must have an empty potential-revoker set."""
        interval = (record.process, record.send_interval.inc, record.send_interval.sii)
        if not self.oracle.exists(interval):
            return
        revokers = self.oracle.potential_revokers(interval)
        if revokers:
            self.violations.append(
                f"output {record.output_id} committed with live revokers "
                f"{sorted(revokers)}"
            )
        if self.oracle.is_orphan(interval):
            self.violations.append(
                f"output {record.output_id} committed from orphan interval"
            )

    # -- main loop -------------------------------------------------------------

    def run(self, duration: float, settle: bool = True) -> None:
        """Run for ``duration`` virtual time units, then (optionally) settle:
        drain in-flight traffic and force enough flush/notify rounds that
        every held message is either released or discarded."""
        self._horizon = duration
        # Failure events beyond the horizon must not fire: settle() drains
        # the queue past ``duration``, and a stray crash mid-settle would
        # wreck quiescence (and the invariant checks that assume it).
        for event, handle in self._failure_handles:
            if event.time > duration:
                handle.cancel()
        self._start_timers()
        self.engine.run(until=duration, max_events=20_000_000)
        if settle:
            self.settle()

    def settle(self, rounds: int = 4) -> None:
        """Quiesce the system after the timed phase."""
        # A partition still in force would hold traffic hostage forever;
        # heal it so quiescence is reachable (and partition_time is closed).
        if self.network.faults is not None:
            self.network.faults.heal(self.engine.now)
        self.engine.run(max_events=20_000_000)
        # A crash close to the horizon may leave a process down.
        for host in self.hosts:
            if host.down:
                host.restart()
        self.engine.run(max_events=20_000_000)
        for _ in range(rounds):
            # The flush/notify rounds exist only to dislodge held traffic;
            # once every buffer is empty another round cannot change
            # anything (the engine queue is already drained), so stop.
            if self._quiescent():
                break
            for host in self.hosts:
                host.flush()
            self.engine.run(max_events=20_000_000)
            for host in self.hosts:
                host.notify()
            self.engine.run(max_events=20_000_000)
        if self.config.check_invariants:
            self.violations.extend(self.oracle.check_consistency())

    def _quiescent(self) -> bool:
        """True when no host holds undelivered, unreleased or uncommitted
        traffic (with the event queue drained, nothing can move again)."""
        for host in self.hosts:
            if host.down:
                return False
            protocol = host.protocol
            if (protocol.send_buffer or protocol.receive_buffer
                    or len(protocol.output_buffer)):
                return False
        return True

    def _start_timers(self) -> None:
        config = self.config
        for host in self.hosts:
            phase = (host.pid + 1) / (config.n + 1)
            self._periodic(config.flush_interval, phase, host.flush)
            self._periodic(config.checkpoint_interval, phase, host.checkpoint)
            self._periodic(config.notify_interval, phase, host.notify)
            if host.controller is not None:
                self._periodic(config.control_interval, phase,
                               host.control_tick)

    def _periodic(self, interval: float, phase: float, action: Callable[[], None]) -> None:
        def fire() -> None:
            action()
            if self.engine.now + interval <= self._horizon:
                self.engine.schedule(interval, fire)

        first = interval * phase
        if first <= self._horizon:
            self.engine.schedule(first, fire)

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """Release storage resources: close backend file handles and remove
        a harness-owned temporary journal directory.  Idempotent; runs with
        the model backend too (where it is a no-op)."""
        for host in self.hosts:
            try:
                host.protocol.storage.close()
            except Exception:
                pass
        if self._owned_storage_dir is not None:
            shutil.rmtree(self._owned_storage_dir, ignore_errors=True)
            self._owned_storage_dir = None

    # -- results ---------------------------------------------------------------

    def metrics(self) -> RunMetrics:
        """Aggregate the run into a :class:`RunMetrics` summary."""
        m = RunMetrics(n=self.config.n, k=self.config.resolved_k(),
                       duration=self._horizon)
        hold_max = 0.0
        pgb_max = 0
        delivered_waits = 0.0
        delivered_count = 0
        for host in self.hosts:
            stats = host.protocol.stats
            m.messages_enqueued += stats.messages_enqueued
            m.messages_released += stats.messages_released
            m.messages_delivered += stats.deliveries - stats.replayed_deliveries
            m.mean_send_hold += stats.send_hold_time_total
            delivered_waits += stats.delivery_wait_total
            delivered_count += stats.deliveries - stats.replayed_deliveries
            m.duplicates_dropped += stats.duplicates_dropped
            m.orphans_discarded += stats.orphans_discarded
            m.outputs_discarded += stats.outputs_discarded
            m.outputs_committed += stats.outputs_committed
            m.mean_output_latency += stats.output_wait_total
            m.rollbacks += stats.rollbacks
            m.intervals_undone += stats.intervals_undone
            m.messages_requeued += stats.messages_requeued
            m.app_messages_lost += host.lost_app_messages
            m.crashes += host.crash_count
            m.retransmissions += getattr(stats, "retransmissions", 0)
            m.timer_retransmissions += getattr(stats, "timer_retransmissions", 0)
            m.acks_received += getattr(stats, "acks_received", 0)
            m.retransmit_budget_exhausted += getattr(
                stats, "retransmit_budget_exhausted", 0)
            m.outputs_pending += len(host.protocol.output_buffer)
            storage = host.protocol.storage
            m.sync_writes += storage.sync_writes
            m.async_writes += storage.async_writes
            m.gc_reclaimed += storage.gc_reclaimed
            m.final_log_records += storage.log_size
            m.final_checkpoints += len(storage.checkpoints)
            m.storage_bytes_written += storage.bytes_written
            m.storage_bytes_fsynced += storage.bytes_fsynced
            m.storage_fsyncs += storage.fsyncs
            m.storage_group_commits += storage.group_commits
            m.storage_forced_commits += storage.forced_group_commits
            m.storage_io_errors += storage.io_errors
            m.storage_io_retries += storage.io_retries
            m.storage_fsync_lies += storage.fsync_lies
            m.storage_recoveries += storage.recoveries
            m.storage_recovered_records += storage.recovered_records
            m.storage_torn_dropped += storage.torn_records_dropped
            m.storage_corrupt_dropped += storage.corrupt_records_dropped
            m.storage_recovery_wall_s += storage.recovery_wall_s
            m.storage_dead_declared += storage.dead_declared
            m.storage_deaths += host.storage_deaths
        # The accumulators above hold raw totals; without the explicit
        # zeroing a run that released/committed nothing would report the
        # total as a "mean".
        if m.messages_released:
            m.mean_send_hold /= m.messages_released
        else:
            m.mean_send_hold = 0.0
        if delivered_count:
            m.mean_delivery_wait = delivered_waits / delivered_count
        if m.outputs_committed:
            m.mean_output_latency /= m.outputs_committed
        else:
            m.mean_output_latency = 0.0
        m.processes_rolled_back = len({pid for _, pid in self.rollback_events})
        m.max_send_hold = max(
            (h.protocol.stats.send_hold_time_max for h in self.hosts),
            default=0.0,
        )
        m.mean_piggyback_entries = self.network.mean_piggyback_entries()
        m.max_piggyback_entries = self.network.piggyback_entries_max
        m.control_messages = self.network.control_messages_sent
        m.storage_cost = (
            m.sync_writes * self.config.sync_write_cost
            + m.async_writes * self.config.async_write_cost
        )
        m.app_drops = self.network.app_dropped
        m.control_drops = self.network.control_dropped
        m.partition_drops = self.network.partition_drops
        m.duplicates_injected = self.network.duplicates_injected
        if self.network.faults is not None:
            m.partitions = self.network.faults.partitions_seen
            m.partition_time = self.network.faults.partition_time
        if self.network.reliable is not None:
            m.ctl_retransmits = self.network.reliable.retransmits
            m.ctl_acked = self.network.reliable.acked
            m.ctl_budget_exhausted = self.network.reliable.budget_exhausted
            m.mean_ack_rtt = self.network.reliable.mean_ack_rtt()
        m.intervals_lost = self.intervals_lost
        m.total_intervals = self.oracle.total_intervals
        m.rolled_back_intervals = self.oracle.rolled_back_intervals
        m.max_release_revokers = self.max_release_revokers
        m.violations = list(self.violations)
        # Output-commit latency SLO accounting (end-to-end samples).
        samples = self.output_latency_samples
        m.output_latency_count = len(samples)
        m.output_latency_p50 = sample_percentile(samples, 50.0)
        m.output_latency_p95 = sample_percentile(samples, 95.0)
        m.output_latency_p99 = sample_percentile(samples, 99.0)
        m.slo_target = self.config.slo_output_latency
        if m.slo_target > 0 and samples:
            within = sum(1 for s in samples if s <= m.slo_target)
            m.slo_attained = within / len(samples)
        controllers = [h.controller for h in self.hosts
                       if h.controller is not None]
        if controllers:
            m.adaptive_k = True
            m.k_decisions = sum(
                len(c.decisions) - 1 for c in controllers)  # minus "init"
            history = [k for c in controllers for _, k in c.history]
            final = [float(c.k) for c in controllers]
            m.k_mean = sample_mean(history if history else final)
            m.k_final_mean = sample_mean(final)
        if self.crash_events and self.rollback_events:
            # Attribute each rollback to the most recent crash at or before
            # it: a crash's recovery window closes when the next crash
            # opens, otherwise every late rollback would inflate the span
            # of every earlier crash.
            crash_times = sorted({t for t, _pid in self.crash_events})
            spans = []
            for i, crash_time in enumerate(crash_times):
                window_end = (
                    crash_times[i + 1] if i + 1 < len(crash_times)
                    else float("inf")
                )
                window = [t for t, _p in self.rollback_events
                          if crash_time <= t < window_end]
                if window:
                    spans.append(max(window) - crash_time)
            if spans:
                m.mean_recovery_span = sum(spans) / len(spans)
        return m
