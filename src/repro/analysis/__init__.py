"""Statistics and report rendering for experiment sweeps."""

from repro.analysis.report import ascii_series, markdown_table
from repro.analysis.timeline import TimelineRenderer, render_timeline
from repro.analysis.stats import Summary, is_monotone, percentile, summarize

__all__ = ["Summary", "TimelineRenderer", "ascii_series", "is_monotone",
           "markdown_table", "percentile", "render_timeline", "summarize"]
