"""Summary statistics for multi-seed experiment sweeps.

Thin, dependency-light helpers (scipy is used for the t-quantile when
available, with a normal-approximation fallback) so experiments can report
``mean ± CI`` instead of single-seed point estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean, spread and a confidence interval for one metric."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} +/- {(self.ci_high - self.mean):.3f}"


def _t_quantile(df: int, confidence: float) -> float:
    """Two-sided Student-t quantile; falls back to the normal value."""
    try:
        from scipy import stats

        return float(stats.t.ppf(0.5 + confidence / 2.0, df))
    except Exception:  # pragma: no cover - scipy is present in CI
        return 1.96


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Mean with a two-sided t confidence interval."""
    values = list(values)
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(1, mean, 0.0, mean, mean)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    half = _t_quantile(n - 1, confidence) * std / math.sqrt(n)
    return Summary(n, mean, std, mean - half, mean + half)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def is_monotone(values: Sequence[float], decreasing: bool = False,
                tolerance: float = 0.0) -> bool:
    """True iff the sequence is (weakly) monotone up to ``tolerance``."""
    pairs = zip(values, list(values)[1:])
    if decreasing:
        return all(b <= a + tolerance for a, b in pairs)
    return all(b >= a - tolerance for a, b in pairs)
