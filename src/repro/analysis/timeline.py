"""ASCII space-time diagrams, in the style of the paper's Figure 1.

Renders a :class:`~repro.sim.trace.Tracer`'s event stream as one row per
process: state-interval starts (``(t,x)``), message sends/deliveries,
crashes (``X``), restarts, rollbacks and announcements.  Useful for
eyeballing small scenarios and for the examples' narrated output.

The renderer is deliberately simple: virtual time is divided into equal
columns; each cell shows the most salient event of that process in that
slice (priority: crash > restart > rollback > delivery > release).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.trace import TraceEvent, Tracer

#: Event-category → (cell text builder, priority); higher wins a cell.
_PRIORITY = {
    "failure.crash": 5,
    "recovery.restart": 4,
    "recovery.rollback": 3,
    "msg.deliver": 2,
    "msg.release": 1,
}


def _cell_text(event: TraceEvent) -> str:
    if event.category == "failure.crash":
        return "X"
    if event.category == "recovery.restart":
        return "R" + str(event.data.get("ann", "")).split("inc ")[-1].split(" ")[0]
    if event.category == "recovery.rollback":
        return "r" + str(event.data.get("to", ""))
    if event.category == "msg.deliver":
        return str(event.data.get("interval", "*"))
    if event.category == "msg.release":
        return "."
    return "?"


class TimelineRenderer:
    """Turns a trace into a fixed-width, one-row-per-process diagram."""

    def __init__(self, n: int, width: int = 72, cell: int = 7):
        if n <= 0:
            raise ValueError("need at least one process")
        if width < cell:
            raise ValueError("width must fit at least one cell")
        self.n = n
        self.columns = max(1, width // cell)
        self.cell = cell

    def render(self, tracer: Tracer, t_start: Optional[float] = None,
               t_end: Optional[float] = None) -> str:
        events = [e for e in tracer.events
                  if e.process is not None and e.category in _PRIORITY]
        if not events:
            return "(no renderable events)"
        lo = t_start if t_start is not None else min(e.time for e in events)
        hi = t_end if t_end is not None else max(e.time for e in events)
        if hi <= lo:
            hi = lo + 1.0
        span = hi - lo

        # cells[pid][col] = (priority, text)
        cells: List[List[Tuple[int, str]]] = [
            [(0, "")] * self.columns for _ in range(self.n)
        ]
        for event in events:
            if not lo <= event.time <= hi:
                continue
            col = min(self.columns - 1,
                      int((event.time - lo) / span * self.columns))
            priority = _PRIORITY[event.category]
            if priority > cells[event.process][col][0]:
                cells[event.process][col] = (priority, _cell_text(event))

        lines = [self._time_axis(lo, hi)]
        for pid in range(self.n):
            row = "".join(text.ljust(self.cell)[: self.cell]
                          for _p, text in cells[pid])
            lines.append(f"P{pid:<2} |{row}")
        lines.append(self._legend())
        return "\n".join(lines)

    def _time_axis(self, lo: float, hi: float) -> str:
        left = f"t={lo:.0f}"
        right = f"t={hi:.0f}"
        middle_width = self.columns * self.cell - len(left) - len(right)
        return "    " + left + "-" * max(1, middle_width) + right

    @staticmethod
    def _legend() -> str:
        return ("    legend: (t,x)=interval started by a delivery  .=send  "
                "X=crash  R<t>=restart  r(t,x)=rollback to (t,x)")


def render_timeline(tracer: Tracer, n: int, width: int = 72,
                    t_start: Optional[float] = None,
                    t_end: Optional[float] = None) -> str:
    """One-call convenience wrapper around :class:`TimelineRenderer`."""
    return TimelineRenderer(n, width=width).render(tracer, t_start, t_end)
