"""Report rendering: markdown tables and quick ASCII series plots.

Experiments print text tables by default (``runtime.metrics.format_table``);
these helpers add a markdown form (for pasting into EXPERIMENTS.md) and a
terminal bar chart that makes the tradeoff curves legible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def markdown_table(rows: List[Dict[str, object]]) -> str:
    """Render row dicts as a GitHub-flavoured markdown table."""
    if not rows:
        return "*(no rows)*"
    headers = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(h, "")) for h in headers) + " |")
    return "\n".join(lines)


def ascii_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    width: int = 48,
) -> str:
    """A horizontal bar chart: one row per x, bar length proportional to y."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        return f"{name}: (no data)"
    peak = max(ys) or 1.0
    label_width = max(len(str(x)) for x in xs)
    lines = [f"{name} (max {peak:.3g})"]
    for x, y in zip(xs, ys):
        bar = "#" * max(0, round(width * y / peak)) if peak > 0 else ""
        lines.append(f"  {str(x):>{label_width}} | {bar} {y:.3g}")
    return "\n".join(lines)
