"""The serve-mode coordinator: supervision, routing, crash injection.

``repro serve --n N --k K`` builds one :class:`ServePlan`, and
:func:`run_serve` executes it:

1. start a TCP server on localhost and write the ``run.json`` manifest;
2. spawn N worker OS processes (``repro serve-worker``) and wait for
   their hellos;
3. route frames worker-to-worker (star topology), parking control
   traffic addressed to a crashed worker until it reconnects — exactly
   the simulation's reliable-network semantics: announcements and log
   notifications are queued for delivery at restart, application
   messages and acks die with the transport endpoint;
4. inject the (deterministically generated) load, SIGKILL the configured
   crash victims mid-run, and respawn them after the restart delay;
5. settle: flush/notify rounds with status polls until every worker
   reports empty buffers and no unacked releases;
6. shut the workers down and certify the collected ``dep.*`` traces
   against the ground-truth dependency oracle
   (:mod:`repro.oracle.ingest`).

The coordinator holds no protocol state: correctness rests entirely on
the workers' traces and the post-hoc oracle.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.backplane.framing import FramingError, read_frame, write_frame
from repro.backplane.loadgen import generate_stimuli
from repro.oracle.ingest import Certification, certify_traces


@dataclass
class ServePlan:
    """Everything one serve run needs; times are in virtual units."""

    n: int = 4
    k: Optional[int] = 2
    seed: int = 0
    behavior: str = "hopchain"
    #: Real seconds per virtual unit (default: a 40-unit flush = 0.8 s).
    timescale: float = 0.02
    duration: float = 200.0
    #: Built-in load: stimuli per virtual unit (0 = external ``repro load``).
    rate: float = 1.0
    #: (time_units, pid) SIGKILL injections.
    crashes: List[Tuple[float, int]] = field(default_factory=list)
    restart_delay: float = 50.0
    run_dir: Optional[str] = None
    #: Worker-side protocol config overrides (see worker.config_from_manifest).
    config: Dict[str, Any] = field(default_factory=dict)
    #: Built-in load arrival shape: ``"uniform"`` or ``"openloop"``.
    profile: str = "uniform"
    #: Explicit stimulus list (overrides ``rate``; see loadgen).
    stimuli: Optional[List[Dict[str, Any]]] = None
    settle_rounds: int = 60
    hello_timeout: float = 30.0


@dataclass
class ServeReport:
    """What a serve run produced, for callers and the CLI."""

    run_dir: str
    ok: bool
    violations: List[str]
    committed: List[Any]
    injected: int
    app_frames_dropped: int
    crashes: int
    wall_seconds: float
    deliveries: int
    certification: Optional[Certification] = None


class _WorkerConn:
    """One live worker connection plus its reader task."""

    def __init__(self, pid: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.pid = pid
        self.reader = reader
        self.writer = writer
        self.task: Optional[asyncio.Task] = None
        self.status: Dict[int, asyncio.Future] = {}

    async def send(self, frame: Dict[str, Any]) -> None:
        write_frame(self.writer, frame)
        await self.writer.drain()


class Coordinator:
    def __init__(self, plan: ServePlan):
        self.plan = plan
        self.run_dir = plan.run_dir or tempfile.mkdtemp(prefix="repro-serve-")
        self.conns: Dict[int, _WorkerConn] = {}
        self.procs: Dict[int, subprocess.Popen] = {}
        self.down: set = set(range(plan.n))  # up after hello
        self.hello_events: Dict[int, asyncio.Event] = {}
        #: Parked control frames for down workers: announcements keep every
        #: copy (an old incarnation's announcement is never subsumed);
        #: log notifications keep only the latest per origin.
        self.parked_ann: Dict[int, List[Dict[str, Any]]] = {}
        self.parked_log: Dict[int, Dict[int, Dict[str, Any]]] = {}
        self.app_frames_dropped = 0
        self.injected = 0
        self._seq = 0
        self._rid = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._load_done = asyncio.Event()
        self._external_load = plan.rate <= 0 and plan.stimuli is None

    # -- lifecycle -----------------------------------------------------------

    async def run(self) -> ServeReport:
        plan = self.plan
        started = time.monotonic()
        os.makedirs(os.path.join(self.run_dir, "trace"), exist_ok=True)
        os.makedirs(os.path.join(self.run_dir, "logs"), exist_ok=True)
        self._server = await asyncio.start_server(
            self._accept, "127.0.0.1", 0)
        port = self._server.sockets[0].getsockname()[1]
        self._write_manifest(port)

        for pid in range(plan.n):
            self.hello_events[pid] = asyncio.Event()
            self._spawn(pid)
        await self._await_hellos(range(plan.n))

        crash_tasks = [asyncio.ensure_future(self._crash_task(t, pid))
                       for t, pid in plan.crashes]
        load_task = asyncio.ensure_future(self._load_task())
        try:
            await load_task
            if crash_tasks:
                await asyncio.gather(*crash_tasks)
            deliveries = await self._settle()
        finally:
            for task in crash_tasks:
                task.cancel()
            load_task.cancel()
            await self._shutdown_workers()
            self._server.close()
            await self._server.wait_closed()

        cert = certify_traces(self._trace_paths(), plan.n,
                              plan.k if plan.k is not None else plan.n)
        report = ServeReport(
            run_dir=self.run_dir,
            ok=not cert.violations,
            violations=list(cert.violations),
            committed=list(cert.committed),
            injected=self.injected,
            app_frames_dropped=self.app_frames_dropped,
            crashes=len(plan.crashes),
            wall_seconds=time.monotonic() - started,
            deliveries=deliveries,
            certification=cert,
        )
        with open(os.path.join(self.run_dir, "report.json"), "w",
                  encoding="utf-8") as fh:
            json.dump({
                "ok": report.ok,
                "violations": report.violations,
                "committed": report.committed,
                "injected": report.injected,
                "app_frames_dropped": report.app_frames_dropped,
                "crashes": report.crashes,
                "wall_seconds": report.wall_seconds,
            }, fh, indent=2)
        return report

    def _write_manifest(self, port: int) -> None:
        plan = self.plan
        with open(os.path.join(self.run_dir, "run.json"), "w",
                  encoding="utf-8") as fh:
            json.dump({
                "n": plan.n,
                "k": plan.k,
                "seed": plan.seed,
                "behavior": plan.behavior,
                "timescale": plan.timescale,
                "port": port,
                "duration": plan.duration,
                "crashes": plan.crashes,
                "config": plan.config,
            }, fh, indent=2)

    def _spawn(self, pid: int) -> None:
        env = dict(os.environ)
        pkg_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
        log = open(os.path.join(self.run_dir, "logs", f"p{pid:03d}.log"), "a")
        self.procs[pid] = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve-worker",
             "--pid", str(pid), "--run-dir", self.run_dir],
            stdout=log, stderr=subprocess.STDOUT, env=env,
        )
        log.close()

    async def _await_hellos(self, pids) -> None:
        # wait_for (not asyncio.timeout) keeps the coordinator on 3.10.
        for pid in pids:
            await asyncio.wait_for(self.hello_events[pid].wait(),
                                   self.plan.hello_timeout)

    # -- connection handling ---------------------------------------------------

    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            hello = await read_frame(reader)
        except FramingError:
            writer.close()
            return
        if hello is None:
            writer.close()
            return
        if hello.get("t") == "hello":
            await self._worker_connected(int(hello["pid"]), reader, writer)
        elif hello.get("t") == "load-hello":
            await self._load_client(reader, writer)
        else:
            writer.close()

    async def _worker_connected(self, pid: int, reader, writer) -> None:
        conn = _WorkerConn(pid, reader, writer)
        self.conns[pid] = conn
        self.down.discard(pid)
        # Deliver control traffic parked while the worker was dead:
        # announcements first (they drive orphan detection), then the
        # latest log notification per origin.
        for frame in self.parked_ann.pop(pid, []):
            await conn.send(frame)
        for frame in self.parked_log.pop(pid, {}).values():
            await conn.send(frame)
        self.hello_events[pid].set()
        conn.task = asyncio.current_task()
        await self._worker_reader(conn)

    async def _worker_reader(self, conn: _WorkerConn) -> None:
        try:
            while True:
                frame = await read_frame(conn.reader)
                if frame is None:
                    break
                await self._route(conn.pid, frame)
        except (FramingError, ConnectionError):
            pass
        finally:
            # Either we killed it (expected) or it died on its own; both
            # park its subsequent control traffic until a respawn.
            if self.conns.get(conn.pid) is conn:
                del self.conns[conn.pid]
                self.down.add(conn.pid)
                self.hello_events[conn.pid] = asyncio.Event()
            conn.writer.close()

    async def _route(self, src_pid: int, frame: Dict[str, Any]) -> None:
        t = frame.get("t")
        if t == "status":
            conn = self.conns.get(src_pid)
            if conn is not None:
                future = conn.status.pop(frame.get("rid"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
            return
        if t == "app":
            dst = int(frame["dst"])
            if dst in self.down:
                # Fail-stop: the destination endpoint is gone.  The sender's
                # retransmission timer re-sends after the restart.
                self.app_frames_dropped += 1
                return
            await self._forward(dst, frame)
            return
        if t == "ctl":
            dst = int(frame["dst"])
            if dst == -1:
                for target in range(self.plan.n):
                    if target != src_pid:
                        await self._deliver_ctl(target, frame)
            else:
                await self._deliver_ctl(dst, frame)
            return
        raise FramingError(f"unroutable worker frame {t!r}")

    async def _deliver_ctl(self, dst: int, frame: Dict[str, Any]) -> None:
        if dst not in self.down:
            await self._forward(dst, frame)
            return
        kind = frame.get("body", {}).get("kind")
        if kind == "ann":
            self.parked_ann.setdefault(dst, []).append(frame)
        elif kind == "log":
            origin = int(frame["body"]["origin"])
            self.parked_log.setdefault(dst, {})[origin] = frame
        # Logging requests are best-effort hints and acks die with the
        # endpoint: both are dropped, as in the simulation.

    async def _forward(self, dst: int, frame: Dict[str, Any]) -> None:
        conn = self.conns.get(dst)
        if conn is None:
            return
        try:
            await conn.send(frame)
        except (ConnectionError, OSError):
            pass  # the reader task handles the disconnect bookkeeping

    # -- load ------------------------------------------------------------------

    async def _load_client(self, reader, writer) -> None:
        """An external ``repro load`` connection."""
        try:
            # Don't consume injects until the initial worker fleet is up —
            # an early client would otherwise race the spawn window and
            # see its first stimuli dropped as to-down-worker traffic.
            await self._await_hellos(range(self.plan.n))
            while True:
                frame = await read_frame(reader)
                if frame is None or frame.get("t") == "load-done":
                    break
                if frame.get("t") == "inject":
                    await self._inject(int(frame["dst"]), frame["payload"])
            write_frame(writer, {"t": "ok", "injected": self.injected})
            await writer.drain()
        except (FramingError, ConnectionError):
            pass
        finally:
            self._load_done.set()
            writer.close()

    async def _inject(self, dst: int, payload: Any) -> None:
        if dst in self.down:
            self.app_frames_dropped += 1
            return
        seq = self._seq
        self._seq += 1
        self.injected += 1
        await self._forward(dst, {"t": "cmd", "op": "inject",
                                  "seq": seq, "payload": payload})

    async def _load_task(self) -> None:
        plan = self.plan
        if self._external_load:
            # ``repro load`` drives injection; wait for it (or the duration).
            try:
                await asyncio.wait_for(
                    self._load_done.wait(),
                    plan.duration * plan.timescale + plan.hello_timeout)
            except asyncio.TimeoutError:
                pass
            return
        stimuli = plan.stimuli
        if stimuli is None:
            stimuli = generate_stimuli(
                plan.n, plan.seed, plan.duration, plan.rate,
                exclude={pid for _, pid in plan.crashes},
                profile=plan.profile,
            )
        start = asyncio.get_running_loop().time()
        for stimulus in stimuli:
            due = start + stimulus["time"] * plan.timescale
            delay = due - asyncio.get_running_loop().time()
            if delay > 0:
                await asyncio.sleep(delay)
            await self._inject(stimulus["dst"], stimulus["payload"])

    # -- crash injection -------------------------------------------------------

    async def _crash_task(self, at_units: float, pid: int) -> None:
        plan = self.plan
        await asyncio.sleep(at_units * plan.timescale)
        proc = self.procs.get(pid)
        if proc is None or proc.poll() is not None:
            return
        self.down.add(pid)  # stop routing before the kill lands
        proc.send_signal(signal.SIGKILL)
        await asyncio.get_running_loop().run_in_executor(None, proc.wait)
        await asyncio.sleep(plan.restart_delay * plan.timescale)
        self.hello_events[pid] = asyncio.Event()
        self._spawn(pid)
        await self._await_hellos([pid])

    # -- settling --------------------------------------------------------------

    async def _status(self, pid: int) -> Optional[Dict[str, Any]]:
        conn = self.conns.get(pid)
        if conn is None:
            return None
        rid = self._rid
        self._rid += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        conn.status[rid] = future
        await conn.send({"t": "cmd", "op": "status", "rid": rid})
        try:
            return await asyncio.wait_for(future, 5.0)
        except asyncio.TimeoutError:
            conn.status.pop(rid, None)
            return None

    async def _settle(self) -> int:
        """Flush/notify rounds until every worker is quiescent twice."""
        plan = self.plan
        pause = max(0.05, 10.0 * plan.timescale)
        consecutive = 0
        deliveries = 0
        for _ in range(plan.settle_rounds):
            statuses = [await self._status(pid) for pid in range(plan.n)]
            if all(s is not None and s["quiescent"] for s in statuses):
                consecutive += 1
                if consecutive >= 2:
                    deliveries = sum(s["deliveries"] for s in statuses)
                    break
            else:
                consecutive = 0
            for pid in range(plan.n):
                conn = self.conns.get(pid)
                if conn is not None:
                    await conn.send({"t": "cmd", "op": "flush"})
            await asyncio.sleep(pause)
            for pid in range(plan.n):
                conn = self.conns.get(pid)
                if conn is not None:
                    await conn.send({"t": "cmd", "op": "notify"})
            await asyncio.sleep(pause)
        return deliveries

    async def _shutdown_workers(self) -> None:
        for conn in list(self.conns.values()):
            try:
                await conn.send({"t": "cmd", "op": "shutdown"})
            except (ConnectionError, OSError):
                pass
        loop = asyncio.get_running_loop()
        for proc in self.procs.values():
            if proc.poll() is None:
                try:
                    await asyncio.wait_for(
                        loop.run_in_executor(None, proc.wait), 5.0)
                except asyncio.TimeoutError:
                    proc.kill()

    # -- results ---------------------------------------------------------------

    def _trace_paths(self) -> List[str]:
        trace_dir = os.path.join(self.run_dir, "trace")
        return sorted(
            os.path.join(trace_dir, name)
            for name in os.listdir(trace_dir)
            if name.endswith(".jsonl")
        )


def run_serve(plan: ServePlan) -> ServeReport:
    """Synchronous entry point: execute one serve run to completion."""
    return asyncio.run(Coordinator(plan).run())
