"""Wall-clock timers and streaming traces for the backplane.

:class:`WallClock` exposes the subset of the simulation engine's surface
the shared effect executor needs — a ``now`` property and
``schedule(delay, callback)`` returning a cancellable handle — backed by
the asyncio event loop.  ``now`` reads the *system* clock (``time.time``):
all workers run on one host, so their trace timestamps share a clock and
post-hoc certification can order events globally without a logical-clock
protocol.

Protocol timer constants (flush intervals, retransmission timeouts) are
expressed in virtual time units; ``timescale`` maps one unit to real
seconds so a serve run with the default config settles in seconds, not
minutes.

:class:`JsonlTracer` is a :class:`~repro.sim.trace.Tracer` that streams
every record to an append-only JSONL file instead of accumulating it in
memory — a SIGKILLed worker keeps everything written before the kill,
which is exactly the property post-hoc certification needs.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Optional

from repro.sim.trace import Tracer


class WallClock:
    """Engine-compatible ``now``/``schedule`` over the asyncio loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop, timescale: float = 1.0):
        if timescale <= 0:
            raise ValueError(f"timescale must be positive, got {timescale}")
        self.loop = loop
        self.timescale = timescale

    @property
    def now(self) -> float:
        """Wall-clock seconds (epoch) — shared across same-host workers."""
        return time.time()

    def schedule(self, delay: float, callback: Callable[[], None],
                 label: Optional[str] = None) -> asyncio.TimerHandle:
        """Run ``callback`` after ``delay`` *virtual units*; the returned
        handle has ``.cancel()``, matching the engine's EventHandle."""
        return self.loop.call_later(max(0.0, delay) * self.timescale, callback)


class JsonlTracer(Tracer):
    """A tracer that writes each record to a JSONL file as it happens."""

    def __init__(self, path: str):
        super().__init__(enabled=True)
        self._fh = open(path, "a", encoding="utf-8")

    def record(self, time_: float, category: str,
               process: Optional[int] = None, **data: Any) -> None:
        def safe(value: Any) -> Any:
            try:
                json.dumps(value)
                return value
            except (TypeError, ValueError):
                return str(value)

        self._fh.write(json.dumps({
            "time": time_,
            "category": category,
            "process": process,
            "data": {k: safe(v) for k, v in data.items()},
        }) + "\n")
        # One line per record: a SIGKILL mid-run loses at most the final
        # partially-written line (the certifier skips unparsable tails).
        self._fh.flush()

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass
