"""Length-prefixed JSON framing over asyncio streams.

Every frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Frames are small (control traffic and single app messages),
so a hard cap guards against a corrupted length prefix making the reader
allocate gigabytes.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Optional

_LEN = struct.Struct(">I")

#: Upper bound on a single frame body; far above any real envelope.
MAX_FRAME = 16 * 1024 * 1024


class FramingError(Exception):
    """A malformed frame arrived (bad length or undecodable body)."""


def encode_frame(obj: Any) -> bytes:
    """Serialize one frame (length prefix + JSON body)."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FramingError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


def write_frame(writer: asyncio.StreamWriter, obj: Any) -> None:
    """Queue one frame on ``writer`` (no drain; callers drain at natural
    batch boundaries — per handled event, not per frame)."""
    writer.write(encode_frame(obj))


async def read_frame(reader: asyncio.StreamReader) -> Optional[Any]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise FramingError("connection died mid-length-prefix") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FramingError(f"frame length {length} exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FramingError("connection died mid-frame") from exc
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FramingError(f"undecodable frame body: {exc}") from exc
