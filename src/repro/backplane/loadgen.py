"""Deterministic stimulus generation and the external load client.

``generate_stimuli`` derives the entire outside-world workload from
``(n, seed, duration, rate)`` alone, so the *same* stimulus list can be
injected into the discrete-event simulation and into a live serve run —
the backbone of the differential sim-vs-serve test.  Destinations in
``exclude`` (typically the crash victims) are never used as entry
points: an injection to a down process is dropped by both drivers, and a
nondeterministically-dropped stimulus would make the committed-output
sets incomparable.

``run_load_client`` is the ``repro load`` implementation: it connects to
a running coordinator and injects the same deterministic stimuli over
the wire, paced in real time.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Iterable, List, Optional

from repro.backplane.framing import read_frame, write_frame


def generate_stimuli(
    n: int,
    seed: int,
    duration: float,
    rate: float,
    exclude: Iterable[int] = (),
    hops_min: int = 1,
    hops_max: int = 3,
    profile: str = "uniform",
) -> List[Dict[str, Any]]:
    """Outside-world stimuli ``{"time", "dst", "payload"}`` in time order.

    ``time`` is in virtual units; ``rate`` is stimuli per unit.  Payloads
    are hop-chain requests (see :mod:`repro.app.hopchain`), each with a
    globally unique tag.

    ``profile`` selects the arrival shape: ``"uniform"`` (evenly spaced,
    the closed-form historical default) or ``"openloop"`` (heavy-tailed
    Pareto interarrivals with diurnal modulation and burst episodes —
    :func:`repro.workloads.openloop.open_loop_times`).  Both are pure
    functions of the arguments, keeping sim and serve runs comparable.
    """
    excluded = set(exclude)
    targets = [pid for pid in range(n) if pid not in excluded]
    if not targets:
        raise ValueError("every process is excluded from load injection")
    rng = random.Random(f"loadgen/{seed}")
    if profile == "uniform":
        count = max(1, int(duration * rate))
        times = [(i + 1) * duration / (count + 1) for i in range(count)]
    elif profile == "openloop":
        # Imported here so plain-uniform callers never pay the import;
        # times are materialized *before* any per-stimulus draws so the
        # uniform branch's RNG stream stays byte-identical to what it
        # produced before profiles existed.
        from repro.workloads.openloop import open_loop_times

        times = list(open_loop_times(rng, rate, duration))
        if not times:
            times = [duration / 2.0]
    else:
        raise ValueError(f"unknown load profile {profile!r}")
    stimuli = []
    for i, time in enumerate(times):
        stimuli.append({
            "time": time,
            "dst": rng.choice(targets),
            "payload": {"tag": f"t{i:05d}",
                        "hops": rng.randint(hops_min, hops_max)},
        })
    return stimuli


async def run_load_client(
    port: int,
    stimuli: List[Dict[str, Any]],
    timescale: float,
    host: str = "127.0.0.1",
) -> int:
    """Inject ``stimuli`` into a running coordinator; returns the count."""
    reader, writer = await asyncio.open_connection(host, port)
    write_frame(writer, {"t": "load-hello"})
    await writer.drain()
    start = asyncio.get_running_loop().time()
    sent = 0
    for stimulus in stimuli:
        due = start + stimulus["time"] * timescale
        delay = due - asyncio.get_running_loop().time()
        if delay > 0:
            await asyncio.sleep(delay)
        write_frame(writer, {"t": "inject", "dst": stimulus["dst"],
                             "payload": stimulus["payload"]})
        await writer.drain()
        sent += 1
    write_frame(writer, {"t": "load-done"})
    await writer.drain()
    # The coordinator confirms once every inject has been routed.
    await read_frame(reader)
    writer.close()
    return sent


def load_main(port: int, n: int, seed: int, duration: float, rate: float,
              timescale: float, exclude: Iterable[int] = (),
              profile: str = "uniform") -> int:
    """Synchronous entry point for ``repro load``."""
    stimuli = generate_stimuli(n, seed, duration, rate, exclude=exclude,
                               profile=profile)
    sent = asyncio.run(run_load_client(port, stimuli, timescale))
    print(f"injected {sent} stimuli")
    return 0
