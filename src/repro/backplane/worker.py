"""One recovery unit as a real OS process (``repro serve-worker``).

Spawned by the coordinator, a worker:

- builds one :class:`~repro.core.protocol.KOptimisticProcess` over a
  durable file-log journal under the run directory (so a SIGKILL loses
  exactly what the paper's fail-stop model says it loses);
- connects to the coordinator and exchanges length-prefixed JSON frames
  (the star topology routes every message through the coordinator);
- drives the protocol through the *same*
  :class:`~repro.runtime.executor.EffectExecutor` the simulation uses,
  with wall-clock timers and ``dep.*`` tracing enabled;
- runs the periodic flush / checkpoint / notify activities on asyncio
  timers scaled by the run's ``timescale``.

On respawn after a crash the journal directory is non-empty; the worker
then boots via :meth:`KOptimisticProcess.boot_after_crash` (REDO-only
recovery plus the Restart broadcast) instead of :meth:`initialize`.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any, Dict, Optional

from repro.app.behavior import EchoBehavior
from repro.app.hopchain import HopChainBehavior
from repro.backplane.clock import JsonlTracer, WallClock
from repro.backplane.codec import decode_app, decode_control, encode_app, encode_control
from repro.backplane.framing import FramingError, read_frame, write_frame
from repro.core.depvec import DependencyVector
from repro.net.message import (
    AppAck,
    AppMessage,
    FailureAnnouncement,
    LoggingRequest,
    LogProgressNotification,
)
from repro.runtime.config import SimConfig
from repro.runtime.executor import EffectExecutor
from repro.runtime.harness import protocol_factory_for
from repro.core.protocol import KOptimisticProcess
from repro.types import MessageId

#: Behaviours a serve run can name in its manifest.
BEHAVIORS = {
    "echo": EchoBehavior,
    "hopchain": HopChainBehavior,
}


def load_manifest(run_dir: str) -> Dict[str, Any]:
    with open(os.path.join(run_dir, "run.json"), encoding="utf-8") as fh:
        return json.load(fh)


def config_from_manifest(manifest: Dict[str, Any], run_dir: str) -> SimConfig:
    """The worker-side protocol configuration for a serve run."""
    overrides = manifest.get("config", {})
    return SimConfig(
        n=manifest["n"],
        k=manifest.get("k"),
        seed=manifest.get("seed", 0),
        storage_backend="filelog",
        storage_dir=os.path.join(run_dir, "storage"),
        # At-least-once delivery across worker crashes: app-level acks with
        # timer retransmission, plus the footnote-3 sent-log replayed to a
        # restarted destination.
        retransmit_timeout=overrides.get("retransmit_timeout", 8.0),
        retransmit_backoff=overrides.get("retransmit_backoff", 2.0),
        retransmit_budget=overrides.get("retransmit_budget", 12),
        retransmit_window=overrides.get("retransmit_window", 64),
        flush_interval=overrides.get("flush_interval", 40.0),
        checkpoint_interval=overrides.get("checkpoint_interval", 160.0),
        notify_interval=overrides.get("notify_interval", 20.0),
        trace_enabled=True,
        check_invariants=False,  # certification is post-hoc via the oracle
        dep_trace=True,
    )


class CoordinatorTransport:
    """The executor's transport: every send becomes a routed frame."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer

    def send_app(self, msg: AppMessage) -> None:
        write_frame(self.writer, {"t": "app", "dst": msg.dst,
                                  "msg": encode_app(msg)})

    def send_control(self, src: int, dst: int, payload: Any,
                     reliable: bool = False) -> None:
        write_frame(self.writer, {"t": "ctl", "src": src, "dst": dst,
                                  "body": encode_control(payload)})

    def broadcast_control(self, src: int, payload: Any,
                          include_self: bool = False,
                          reliable: bool = False) -> None:
        # dst -1 = coordinator-side fan-out; TCP plus coordinator-side
        # parking for down workers makes control delivery reliable, so the
        # flag needs no extra machinery here.
        write_frame(self.writer, {"t": "ctl", "src": src, "dst": -1,
                                  "body": encode_control(payload)})


class Worker:
    """Protocol instance + transport + timers for one OS process."""

    def __init__(self, pid: int, run_dir: str):
        self.pid = pid
        self.run_dir = run_dir
        self.manifest = load_manifest(run_dir)
        self.n = int(self.manifest["n"])
        self.config = config_from_manifest(self.manifest, run_dir)
        self.clock: Optional[WallClock] = None
        self.tracer = JsonlTracer(
            os.path.join(run_dir, "trace", f"p{pid:03d}.jsonl"))
        self.protocol: Optional[KOptimisticProcess] = None
        self.executor: Optional[EffectExecutor] = None
        self._shutdown = asyncio.Event()
        #: Latest live handle per periodic activity (old ones have fired).
        self._timers: Dict[str, asyncio.TimerHandle] = {}

    # -- lifecycle -----------------------------------------------------------

    async def run(self) -> int:
        loop = asyncio.get_running_loop()
        self.clock = WallClock(loop, float(self.manifest["timescale"]))
        # Respawn detection must precede backend construction (building the
        # file-log backend creates the directory).
        journal = os.path.join(self.run_dir, "storage", f"p{self.pid:03d}")
        recovering = os.path.isdir(journal) and any(os.scandir(journal))

        behavior = BEHAVIORS[self.manifest.get("behavior", "hopchain")]()
        factory = protocol_factory_for(KOptimisticProcess)
        self.protocol = factory(self.pid, self.config, behavior,
                                lambda: self.clock.now)

        reader, writer = await asyncio.open_connection(
            "127.0.0.1", int(self.manifest["port"]))
        transport = CoordinatorTransport(writer)
        self.executor = EffectExecutor(
            self.pid,
            transport=transport,
            schedule=self.clock.schedule,
            now_fn=lambda: self.clock.now,
            tracer=self.tracer,
            on_retransmit=self._retransmit_timer,
            dep_trace=True,
        )
        write_frame(writer, {"t": "hello", "pid": self.pid,
                             "recovered": recovering})
        await writer.drain()

        if recovering:
            effects = self.protocol.boot_after_crash()
            self.tracer.record(self.clock.now, "worker.respawn", self.pid)
        else:
            effects = self.protocol.initialize()
            self.tracer.record(self.clock.now, "worker.start", self.pid)
        self.executor.execute(effects)
        self._start_timers()

        try:
            while not self._shutdown.is_set():
                frame = await read_frame(reader)
                if frame is None:
                    break  # coordinator went away: exit quietly
                self._dispatch(frame, writer)
                await writer.drain()
        except (FramingError, ConnectionError):
            return 1
        finally:
            for handle in self._timers.values():
                handle.cancel()
            self.protocol.storage.close()
            self.tracer.close()
            writer.close()
        return 0

    # -- periodic activities ---------------------------------------------------

    def _start_timers(self) -> None:
        self._periodic("flush", self.config.flush_interval, self._flush)
        self._periodic("checkpoint", self.config.checkpoint_interval,
                       self._checkpoint)
        self._periodic("notify", self.config.notify_interval, self._notify)

    def _periodic(self, name: str, interval_units: float, action) -> None:
        def fire() -> None:
            if self._shutdown.is_set():
                return
            action()
            self._timers[name] = self.clock.schedule(interval_units, fire)

        # Phase-staggered like the simulation, so N workers do not flush in
        # lockstep.
        first = interval_units * (self.pid + 1) / (self.n + 1)
        self._timers[name] = self.clock.schedule(first, fire)

    def _flush(self) -> None:
        self.executor.execute(self.protocol.flush())

    def _checkpoint(self) -> None:
        self.executor.execute(self.protocol.checkpoint())

    def _notify(self) -> None:
        notif = self.protocol.make_log_notification(own_only=False)
        self.executor.transport.broadcast_control(self.pid, notif)

    def _retransmit_timer(self, msg_id: MessageId) -> None:
        self.executor.execute(self.protocol.on_retransmit_timer(msg_id))

    # -- frame dispatch --------------------------------------------------------

    def _dispatch(self, frame: Dict[str, Any], writer) -> None:
        t = frame.get("t")
        if t == "app":
            msg = decode_app(self.n, frame["msg"])
            effects = self.protocol.on_receive(msg)
            if msg.src >= 0:
                # The live transport endpoint acks on arrival; a dead one
                # acks nothing, which keeps the sender's timer retrying.
                self.executor.transport.send_control(
                    self.pid, msg.src,
                    AppAck(msg.msg_id, self.pid, msg.src))
            self.executor.execute(effects)
            return
        if t == "ctl":
            payload = decode_control(frame["body"])
            if isinstance(payload, FailureAnnouncement):
                self.tracer.record(self.clock.now, "ann.receive", self.pid,
                                   ann=str(payload))
                effects = self.protocol.on_failure_announcement(payload)
            elif isinstance(payload, LogProgressNotification):
                effects = self.protocol.on_log_notification(payload)
            elif isinstance(payload, LoggingRequest):
                effects = self.protocol.on_logging_request(payload)
            elif isinstance(payload, AppAck):
                effects = self.protocol.on_ack(payload)
            else:  # pragma: no cover - decode_control is exhaustive
                raise FramingError(f"unroutable control payload {payload!r}")
            self.executor.execute(effects)
            return
        if t == "cmd":
            self._command(frame, writer)
            return
        raise FramingError(f"unknown frame type {t!r}")

    def _command(self, frame: Dict[str, Any], writer) -> None:
        op = frame.get("op")
        if op == "inject":
            # An outside-world message: empty dependency vector, virtual
            # sender -1, coordinator-assigned unique sequence number.
            msg = AppMessage(
                msg_id=MessageId(-1, 0, 0, int(frame["seq"])),
                src=-1,
                dst=self.pid,
                payload=frame["payload"],
                tdv=DependencyVector(self.n),
            )
            self.executor.execute(self.protocol.on_receive(msg))
        elif op == "flush":
            self._flush()
        elif op == "notify":
            self._notify()
        elif op == "checkpoint":
            self._checkpoint()
        elif op == "status":
            p = self.protocol
            write_frame(writer, {
                "t": "status",
                "rid": frame.get("rid"),
                "pid": self.pid,
                # Unacked releases count: a message bound for a crashed
                # destination is still in flight until the restarted
                # worker acks the timer-driven re-send.
                "quiescent": not (p.send_buffer or p.receive_buffer
                                  or len(p.output_buffer)
                                  or p.unacked_count),
                "outputs_committed": p.stats.outputs_committed,
                "deliveries": p.stats.deliveries,
                "restarts": p.stats.restarts,
            })
        elif op == "shutdown":
            self._shutdown.set()
        else:
            raise FramingError(f"unknown command {op!r}")


def main(pid: int, run_dir: str) -> int:
    return asyncio.run(Worker(pid, run_dir).run())
