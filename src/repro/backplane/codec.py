"""JSON encoding of the protocol's wire types.

The sans-IO core exchanges rich Python objects (:class:`AppMessage`,
:class:`FailureAnnouncement`, ...); the backplane ships them between OS
processes as JSON.  The encoding is lossless for everything the receiving
protocol consumes; transient per-transmission fields (``wire_id``) are
regenerated on decode.

Payloads must themselves be JSON-serializable — the PWD application model
already requires plain-value state and payloads, so this imposes nothing
new.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import (
    AppAck,
    AppMessage,
    FailureAnnouncement,
    LoggingRequest,
    LogProgressNotification,
)
from repro.types import MessageId


class CodecError(Exception):
    """An arriving frame did not decode to a known wire type."""


# -- primitives ---------------------------------------------------------------


def encode_entry(entry: Optional[Entry]) -> Optional[List[int]]:
    return None if entry is None else [entry.inc, entry.sii]


def decode_entry(raw: Optional[List[int]]) -> Optional[Entry]:
    return None if raw is None else Entry(int(raw[0]), int(raw[1]))


def encode_msg_id(mid: MessageId) -> List[int]:
    return [mid.sender, mid.send_inc, mid.send_sii, mid.seq]


def decode_msg_id(raw: List[int]) -> MessageId:
    return MessageId(int(raw[0]), int(raw[1]), int(raw[2]), int(raw[3]))


def encode_tdv(tdv: DependencyVector) -> Dict[str, List[int]]:
    # JSON object keys are strings; pids survive a str/int round-trip.
    return {str(pid): [e.inc, e.sii] for pid, e in tdv.as_dict().items()}


def decode_tdv(n: int, raw: Dict[str, List[int]]) -> DependencyVector:
    return DependencyVector(
        n, {int(pid): Entry(int(e[0]), int(e[1])) for pid, e in raw.items()}
    )


# -- app messages -------------------------------------------------------------


def encode_app(msg: AppMessage) -> Dict[str, Any]:
    return {
        "id": encode_msg_id(msg.msg_id),
        "src": msg.src,
        "dst": msg.dst,
        "payload": msg.payload,
        "tdv": encode_tdv(msg.tdv),
        "si": encode_entry(msg.send_interval),
        "replayed": msg.replayed,
        "k": msg.k_limit,
    }


def decode_app(n: int, raw: Dict[str, Any]) -> AppMessage:
    return AppMessage(
        msg_id=decode_msg_id(raw["id"]),
        src=int(raw["src"]),
        dst=int(raw["dst"]),
        payload=raw["payload"],
        tdv=decode_tdv(n, raw["tdv"]),
        send_interval=decode_entry(raw.get("si")),
        replayed=bool(raw.get("replayed", False)),
        k_limit=raw.get("k"),
    )


# -- control payloads ---------------------------------------------------------


def encode_control(payload: Any) -> Dict[str, Any]:
    """Encode any control payload a protocol or transport endpoint emits."""
    if isinstance(payload, FailureAnnouncement):
        return {"kind": "ann", "origin": payload.origin,
                "end": encode_entry(payload.end)}
    if isinstance(payload, LogProgressNotification):
        table = payload.table
        rows = table.rows() if hasattr(table, "rows") else table
        return {"kind": "log", "origin": payload.origin,
                "table": [{str(inc): int(sii) for inc, sii in row.items()}
                          for row in rows]}
    if isinstance(payload, LoggingRequest):
        return {"kind": "req", "origin": payload.origin}
    if isinstance(payload, AppAck):
        return {"kind": "ack", "id": encode_msg_id(payload.msg_id),
                "src": payload.src, "dst": payload.dst}
    raise CodecError(f"unencodable control payload {payload!r}")


def decode_control(raw: Dict[str, Any]) -> Any:
    kind = raw.get("kind")
    if kind == "ann":
        return FailureAnnouncement(int(raw["origin"]),
                                   decode_entry(raw["end"]))
    if kind == "log":
        return LogProgressNotification(
            int(raw["origin"]),
            [{int(inc): int(sii) for inc, sii in row.items()}
             for row in raw["table"]],
        )
    if kind == "req":
        return LoggingRequest(int(raw["origin"]))
    if kind == "ack":
        return AppAck(decode_msg_id(raw["id"]), int(raw["src"]),
                      int(raw["dst"]))
    raise CodecError(f"unknown control kind {kind!r}")
