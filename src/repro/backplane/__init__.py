"""The runtime backplane: real OS processes over asyncio TCP.

The simulation (:mod:`repro.sim`) and the backplane drive the *same*
sans-IO protocol core through the *same* effect interpreter
(:class:`repro.runtime.executor.EffectExecutor`); only the environment
differs.  Here each recovery unit is one OS process speaking
length-prefixed JSON frames to a coordinator in a star topology:

- :mod:`repro.backplane.framing` — the wire framing;
- :mod:`repro.backplane.codec`   — JSON encoding of the protocol's
  message types (:class:`~repro.net.message.AppMessage` and friends);
- :mod:`repro.backplane.clock`   — wall-clock timers with the engine's
  ``now``/``schedule`` interface, plus the streaming JSONL tracer;
- :mod:`repro.backplane.worker`  — one recovery unit (``repro
  serve-worker``, spawned by the coordinator);
- :mod:`repro.backplane.coordinator` — process supervision, frame
  routing, crash injection (SIGKILL + respawn), load generation,
  settling, and post-hoc certification (``repro serve``);
- :mod:`repro.backplane.loadgen` — deterministic stimulus generation
  shared with the differential sim-vs-serve test, and the external
  ``repro load`` client.

Correctness of a backplane run is certified *post hoc*: every worker
streams ``dep.*`` trace events to its own JSONL file, and the coordinator
replays the collected traces through the ground-truth dependency oracle
(:mod:`repro.oracle.ingest`) after the run settles.
"""
