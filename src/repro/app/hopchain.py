"""Deterministic hop-chain workload behaviour.

Each outside-world stimulus ``{"tag": t, "hops": h}`` bounces through the
system ``h`` times — every hop forwards to a destination derived *only*
from the payload (a CRC of the tag and remaining hop count), never from
delivery order or local state — and the final hop emits ``{"tag": t}`` as
an outside-world output.

That payload-determinism is the point: the same stimulus set produces the
same committed-output *set* on any driver, regardless of message
interleaving, crashes, or replay.  The differential sim-vs-serve test
rests on it — the discrete-event simulation and the multi-process runtime
backplane run the same stimuli and must commit identical tag sets.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.app.behavior import AppBehavior, AppContext
from repro.types import ProcessId


def hop_destination(pid: int, n: int, tag: str, hops: int) -> int:
    """The forwarding destination for ``(tag, hops)`` at ``pid``.

    Derived from a stable CRC so it is identical across processes, runs
    and drivers (``hash()`` is salted per interpreter and unusable here).
    Never the sender itself: the offset is drawn from [1, n-1].
    """
    digest = zlib.crc32(f"{tag}/{hops}".encode("utf-8"))
    return (pid + 1 + digest % (n - 1)) % n


class HopChainBehavior(AppBehavior):
    """Forward ``hops`` times along a payload-derived route, then output."""

    def initial_state(self, pid: ProcessId, n: int) -> Any:
        return {"n": n, "handled": 0}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        state["handled"] += 1
        if not isinstance(payload, dict) or "tag" not in payload:
            return state
        tag = payload["tag"]
        hops = int(payload.get("hops", 0))
        if hops <= 0:
            ctx.output({"tag": tag})
        else:
            dst = hop_destination(ctx.pid, ctx.n, tag, hops)
            ctx.send(dst, {"tag": tag, "hops": hops - 1})
        return state
