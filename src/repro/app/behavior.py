"""The piecewise-deterministic (PWD) application model.

The paper's execution model: a process's execution is a sequence of state
intervals, each started by a nondeterministic *message-delivering* event;
execution within an interval is completely deterministic.  We enforce that
shape by construction:

- all application state lives in a plain value handed to and returned by
  the handler (the recovery layer checkpoints and deep-copies it);
- the handler may interact with the world only through the
  :class:`AppContext` (sends, outputs, and a deterministic per-interval RNG);
- the handler is invoked once per delivered message and must be a pure
  function of ``(state, payload, ctx)``.

Deterministic replay after a failure re-runs the same handler on the same
logged messages in the same order and therefore reconstructs bit-identical
state — the property every message-logging protocol rests on.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.types import ProcessId


class AppContext:
    """Capabilities available to a handler during one state interval."""

    __slots__ = ("pid", "n", "inc", "sii", "rng", "_sends", "_outputs")

    def __init__(self, pid: ProcessId, n: int, inc: int, sii: int, seed: int):
        self.pid = pid
        self.n = n
        self.inc = inc
        self.sii = sii
        # Seeded purely by the interval identity, so a replayed interval
        # draws the same numbers as the original execution.
        self.rng = random.Random(f"{seed}/{pid}/{inc}/{sii}")
        self._sends: List[Tuple[ProcessId, Any, Optional[int]]] = []
        self._outputs: List[Any] = []

    def send(self, dst: ProcessId, payload: Any, k: Optional[int] = None) -> None:
        """Queue an application message to ``dst``.

        ``k`` optionally overrides the system-wide degree of optimism for
        this one message — Section 4.2: "different values of K can in fact
        be applied to different messages in the same system".  ``k=0``
        makes this message as safe as an output (never revocable).
        """
        if not 0 <= dst < self.n:
            raise ValueError(f"destination {dst} out of range [0, {self.n})")
        if dst == self.pid:
            raise ValueError("self-sends are not supported; use local state")
        if k is not None and k < 0:
            raise ValueError(f"per-message K must be >= 0, got {k}")
        self._sends.append((dst, payload, k))

    def output(self, payload: Any) -> None:
        """Queue an outside-world output (printed result, DB update, ...)."""
        self._outputs.append(payload)

    @property
    def sends(self) -> List[Tuple[ProcessId, Any]]:
        """(dst, payload) pairs, in send order."""
        return [(dst, payload) for dst, payload, _k in self._sends]

    @property
    def sends_with_limits(self) -> List[Tuple[ProcessId, Any, Optional[int]]]:
        """(dst, payload, per-message-K) triples, in send order."""
        return list(self._sends)

    @property
    def outputs(self) -> List[Any]:
        return list(self._outputs)


class AppBehavior:
    """Base class for deterministic application behaviours (workloads)."""

    def initial_state(self, pid: ProcessId, n: int) -> Any:
        """The application state a process starts (and restarts) from."""
        return {}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        """Handle one delivered message; return the new application state.

        Must be deterministic in ``(state, payload, ctx)``.  May mutate and
        return ``state`` or return a fresh value.
        """
        raise NotImplementedError


class EchoBehavior(AppBehavior):
    """Trivial behaviour used by unit tests: counts deliveries, optionally
    forwards ``{"forward_to": pid, "payload": ...}`` requests."""

    def initial_state(self, pid: ProcessId, n: int) -> Any:
        return {"delivered": 0, "log": []}

    def on_message(self, state: Any, payload: Any, ctx: AppContext) -> Any:
        state["delivered"] += 1
        state["log"].append(payload)
        if isinstance(payload, dict):
            if "forward_to" in payload:
                ctx.send(payload["forward_to"], payload.get("payload"))
            if payload.get("output"):
                ctx.output(payload["output"])
        return state
