"""The piecewise-deterministic (PWD) application model."""

from repro.app.behavior import AppBehavior, AppContext, EchoBehavior

__all__ = ["AppBehavior", "AppContext", "EchoBehavior"]
