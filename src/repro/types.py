"""Shared primitive types used across the repro package.

The paper (Wang, Damani, Garg, ICDCS 1997) indexes a state interval by a
pair ``(t, x)_i`` where ``t`` is the incarnation number, ``x`` the state
interval index, and ``i`` the process.  Throughout this package:

- ``i, j, k`` are process numbers (``ProcessId``),
- ``t, s`` are incarnation numbers,
- ``x, y`` are state interval indices (``sii`` in the pseudo-code).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Processes are numbered 0..N-1.
ProcessId = int

#: Incarnation number of a process (starts at 0, bumped on every rollback).
IncarnationId = int

#: State interval index within a process (starts at 1, monotonic across
#: incarnations: a new incarnation continues the index sequence).
IntervalIndex = int


@dataclass(frozen=True, order=True)
class MessageId:
    """Deterministic identity of an application message.

    A message is identified by the sending interval ``(inc, sii)`` of the
    sending process plus a per-interval sequence number.  Deterministic
    replay of a stable interval regenerates messages with *identical* ids
    (replay reconstructs the original incarnation), so receivers can discard
    duplicates; re-execution in a *new* incarnation after a rollback yields
    distinct ids, so its messages are correctly treated as new.
    """

    sender: ProcessId
    send_inc: IncarnationId
    send_sii: IntervalIndex
    seq: int

    def __str__(self) -> str:
        return f"m({self.sender}:{self.send_inc}.{self.send_sii}.{self.seq})"


@dataclass(frozen=True, order=True)
class OutputId:
    """Deterministic identity of an outside-world output.

    Mirrors :class:`MessageId`; committed outputs are recorded on stable
    storage so that deterministic replay never re-commits them.
    """

    process: ProcessId
    send_inc: IncarnationId
    send_sii: IntervalIndex
    seq: int

    def __str__(self) -> str:
        return f"o({self.process}:{self.send_inc}.{self.send_sii}.{self.seq})"
