"""Simulation harness for sender-based logging.

Routes the scheme's five message kinds, drives checkpoint timers, and
orchestrates the recovery conversation (log request -> replies -> ordered
replay).  Crashes respect the family's one-failure-at-a-time assumption;
scheduling two overlapping crashes raises instead of silently producing
an unrecoverable run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.app.behavior import AppBehavior
from repro.failures.injector import FailureSchedule
from repro.net.channel import UniformLatency
from repro.senderbased.protocol import (
    SBAck,
    SBCheckpointNote,
    SBConfirm,
    SBLogReply,
    SBLogRequest,
    SBMessage,
    SenderBasedProcess,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@dataclass
class SenderBasedConfig:
    """Configuration for a sender-based logging run."""

    n: int = 6
    seed: int = 0
    checkpoint_interval: float = 160.0
    restart_delay: float = 10.0
    msg_latency_low: float = 0.5
    msg_latency_high: float = 1.5

    def validate(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.restart_delay < 0:
            raise ValueError("restart_delay must be non-negative")


@dataclass
class SenderBasedRunMetrics:
    """Aggregated results of one sender-based run."""

    n: int = 0
    deliveries: int = 0
    replayed: int = 0
    duplicates: int = 0
    acks: int = 0
    confirms: int = 0
    control_messages: int = 0
    sync_writes: int = 0
    mean_send_block: float = 0.0
    crashes: int = 0
    gc_reclaimed: int = 0

    def as_row(self) -> Dict[str, object]:
        return {
            "delivered": self.deliveries,
            "replayed": self.replayed,
            "acks": self.acks,
            "ctl_msgs": self.control_messages,
            "sync_w": self.sync_writes,
            "send_block": round(self.mean_send_block, 3),
            "crashes": self.crashes,
        }


class SenderBasedSimulation:
    """N sender-based processes on the event engine."""

    def __init__(
        self,
        config: SenderBasedConfig,
        behavior: AppBehavior,
        failures: Optional[FailureSchedule] = None,
    ):
        config.validate()
        self.config = config
        self.engine = Engine()
        self.rngs = RngRegistry(config.seed)
        self._latency = UniformLatency(config.msg_latency_low,
                                       config.msg_latency_high)
        self.processes: List[SenderBasedProcess] = [
            SenderBasedProcess(pid, config.n, behavior, seed=config.seed,
                               now_fn=lambda: self.engine.now)
            for pid in range(config.n)
        ]
        self.down: List[bool] = [False] * config.n
        self._pending_replies: Dict[int, List[SBLogReply]] = {}
        self.crashes = 0
        self.control_messages = 0
        self.messages_released = 0
        self.gc_reclaimed = 0
        self._horizon = 0.0

        schedule = (failures or FailureSchedule.none()).crashes
        for i, event in enumerate(schedule):
            if i > 0:
                gap = event.time - schedule[i - 1].time
                if gap <= config.restart_delay + 4 * config.msg_latency_high:
                    raise ValueError(
                        "sender-based logging tolerates one failure at a "
                        f"time; crashes at {schedule[i-1].time} and "
                        f"{event.time} overlap a recovery window"
                    )
            self.engine.schedule_at(event.time,
                                    lambda pid=event.pid: self._crash(pid))

    # -- transport ------------------------------------------------------------

    def _send(self, dst: int, payload: Any, control: bool = True) -> None:
        src = getattr(payload, "src", getattr(payload, "sender", -1))
        rng = self.rngs.stream(f"sbnet/{src}->{dst}")
        if control:
            self.control_messages += 1
        self.engine.schedule(self._latency.delay(rng),
                             lambda: self._arrive(dst, payload))

    def _transmit_app(self, messages: List[SBMessage]) -> None:
        for msg in messages:
            self.messages_released += 1
            self._send(msg.dst, msg, control=False)

    def _arrive(self, dst: int, payload: Any) -> None:
        if self.down[dst]:
            return  # lost; the sender's log will resurrect it if needed
        process = self.processes[dst]
        if isinstance(payload, SBMessage):
            acks, released = process.on_message(payload)
            for ack in acks:
                self._send(payload.src, ack)
            self._transmit_app(released)
        elif isinstance(payload, SBAck):
            for confirm in process.on_ack(payload):
                self._send(payload.receiver, confirm)
        elif isinstance(payload, SBConfirm):
            self._transmit_app(process.on_confirm(payload))
        elif isinstance(payload, SBCheckpointNote):
            self.gc_reclaimed += process.on_checkpoint_note(payload)
        elif isinstance(payload, SBLogRequest):
            # The request doubles as "the sender is back": re-ack its
            # unconfirmed deliveries so our send gate can eventually open.
            for ack in process.reack_unconfirmed(payload.requester):
                self._send(payload.requester, ack)
            self._send(payload.requester, process.on_log_request(payload))
        elif isinstance(payload, SBLogReply):
            self._collect_reply(dst, payload)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected payload {payload!r}")

    def _collect_reply(self, dst: int, reply: SBLogReply) -> None:
        replies = self._pending_replies.setdefault(dst, [])
        replies.append(reply)
        if len(replies) == self.config.n - 1:
            del self._pending_replies[dst]
            acks, released = self.processes[dst].finish_recovery(replies)
            for ack in acks:
                self._send(ack.msg_id[0], ack)
            self._transmit_app(released)

    # -- workload injection ---------------------------------------------------

    def inject_at(self, time: float, dst: int, payload: Any) -> None:
        msg = SBMessage(src=-1, dst=dst, payload=payload,
                        msg_id=(-1, id(payload) if False else 0))
        # Unique ids for environment messages.
        msg.msg_id = (-1, msg.wire_id)

        def deliver() -> None:
            self._arrive(dst, msg)

        self.engine.schedule_at(time, deliver)

    # -- failure handling ------------------------------------------------------

    def _crash(self, pid: int) -> None:
        if self.down[pid] or pid in self._pending_replies:
            return
        self.crashes += 1
        self.down[pid] = True
        request = self.processes[pid].crash()

        def restart() -> None:
            self.down[pid] = False
            for peer in range(self.config.n):
                if peer != pid:
                    self._send(peer, request)

        self.engine.schedule(self.config.restart_delay, restart)

    # -- main loop -------------------------------------------------------------

    def run(self, duration: float) -> None:
        self._horizon = duration
        for process in self.processes:
            phase = (process.pid + 1) / (self.config.n + 1)
            self._periodic(self.config.checkpoint_interval, phase,
                           lambda p=process: self._checkpoint(p))
        self.engine.run(until=duration, max_events=10_000_000)
        self.engine.run(max_events=10_000_000)

    def _checkpoint(self, process: SenderBasedProcess) -> None:
        if self.down[process.pid] or process.recovering:
            return
        note = process.checkpoint()
        for peer in range(self.config.n):
            if peer != process.pid:
                self._send(peer, note)

    def _periodic(self, interval: float, phase: float, action) -> None:
        def fire() -> None:
            action()
            if self.engine.now + interval <= self._horizon:
                self.engine.schedule(interval, fire)

        first = interval * phase
        if first <= self._horizon:
            self.engine.schedule(first, fire)

    # -- results ---------------------------------------------------------------

    def metrics(self) -> SenderBasedRunMetrics:
        m = SenderBasedRunMetrics(n=self.config.n, crashes=self.crashes,
                                  control_messages=self.control_messages,
                                  gc_reclaimed=self.gc_reclaimed)
        blocked = 0.0
        for process in self.processes:
            m.deliveries += process.deliveries
            m.replayed += process.replayed
            m.duplicates += process.duplicates
            m.acks += process.acks_sent
            m.confirms += process.confirms_sent
            m.sync_writes += process.sync_writes
            blocked += process.send_block_total
        if self.messages_released:
            m.mean_send_block = blocked / self.messages_released
        return m
