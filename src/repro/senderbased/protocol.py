"""Sender-based message logging (Borg et al. [1]; Johnson & Zwaenepoel).

The paper's reference [1] ("Fault tolerance under UNIX") is the classic
*sender-based* pessimistic system: instead of forcing every delivery to
the receiver's disk, each message is kept in the **sender's volatile
memory**, and the receiver tells the sender the *receive sequence number*
(RSN) it assigned.  The pessimistic guarantee is preserved by a send
gate:

1. sender transmits m and keeps a volatile copy;
2. receiver delivers m, assigns the next RSN, and acks (m, RSN);
3. sender records the RSN on its copy and confirms;
4. the receiver may not *send* application messages while any of its
   deliveries is still unconfirmed — so every state a message is sent
   from is reconstructible from the senders' logs, and **no failure ever
   revokes a message** (0-optimistic behaviour without synchronous disk
   writes, paid for in ack round-trips instead).

Recovery: restore the checkpoint, ask every peer for its logged copies,
replay them in RSN order, then resume.  The scheme tolerates one failure
at a time: a sender and receiver failing together lose the volatile log
(the classical limitation, inherited faithfully).

Outside-world inputs have no logging sender, so the receiver force-logs
them to its own stable storage on delivery (standard input logging).

This is a sans-IO state machine like the core protocol: handlers return
effect-like records that the slim harness in
:mod:`repro.senderbased.harness` interprets.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.app.behavior import AppBehavior, AppContext

_wire = itertools.count()


@dataclass
class SBMessage:
    """An application message; ``msg_id`` is (sender, send_seq)."""

    src: int
    dst: int
    payload: Any
    msg_id: Tuple[int, int]
    #: RSN stamped on replayed copies (None on first transmission).
    rsn: Optional[int] = None
    wire_id: int = field(default_factory=lambda: next(_wire))


@dataclass(frozen=True)
class SBAck:
    """Receiver -> sender: message ``msg_id`` was delivered with ``rsn``."""

    receiver: int
    msg_id: Tuple[int, int]
    rsn: int


@dataclass(frozen=True)
class SBConfirm:
    """Sender -> receiver: the RSN for ``msg_id`` is safely recorded."""

    sender: int
    msg_id: Tuple[int, int]


@dataclass(frozen=True)
class SBCheckpointNote:
    """Receiver -> everyone: I checkpointed through ``rsn``; copies of my
    deliveries up to there may be garbage-collected from your logs."""

    receiver: int
    rsn: int


@dataclass(frozen=True)
class SBLogRequest:
    """Recovering receiver -> everyone: re-send my logged messages."""

    requester: int
    #: Replay everything with RSN > this (the checkpoint's delivery count).
    after_rsn: int


@dataclass
class SBLogReply:
    """Sender -> recovering receiver: the logged copies (RSN-stamped)."""

    sender: int
    requester: int
    copies: List[SBMessage]


@dataclass
class LogRecord:
    """A sender-side volatile log entry."""

    message: SBMessage
    rsn: Optional[int] = None


class SenderBasedProcess:
    """One process under sender-based pessimistic logging."""

    def __init__(
        self,
        pid: int,
        n: int,
        behavior: AppBehavior,
        seed: int = 0,
        now_fn: Optional[Callable[[], float]] = None,
    ):
        self.pid = pid
        self.n = n
        self.behavior = behavior
        self.seed = seed
        self.now_fn = now_fn or (lambda: 0.0)

        self.app_state = behavior.initial_state(pid, n)
        self.rsn = 0                     # deliveries so far (the RSN counter)
        self.send_seq = 0
        self.recovering = False

        #: Sender-side volatile log: msg_id -> record (survives peers'
        #: failures, lost in OUR failure — the one-failure assumption).
        self.sent_log: Dict[Tuple[int, int], LogRecord] = {}
        #: Deliveries not yet confirmed by their senders: msg_id -> rsn
        #: (gates sends; the rsn is kept for re-acking a recovered sender).
        self.unconfirmed: Dict[Tuple[int, int], int] = {}
        #: Application sends waiting for the gate to open.
        self.send_buffer: List[SBMessage] = []
        #: Messages arriving while recovering (processed after replay).
        self.pending_during_recovery: List[SBMessage] = []
        #: Delivered message ids (duplicate suppression across replays).
        self.delivered_ids: Set[Tuple[int, int]] = set()
        #: Stable storage: checkpointed state + force-logged inputs.  The
        #: send_seq counter is part of it so that deterministic replay
        #: regenerates sends with *identical* message ids.
        self._checkpoint: Tuple[Any, int, Set[Tuple[int, int]], int] = (
            copy.deepcopy(self.app_state), 0, set(), 0
        )
        self._input_log: List[Tuple[int, SBMessage]] = []  # (rsn, message)

        # accounting
        self.sync_writes = 0
        self.acks_sent = 0
        self.confirms_sent = 0
        self.send_block_total = 0.0
        self._blocked_since: Dict[int, float] = {}
        self.deliveries = 0
        self.replayed = 0
        self.duplicates = 0

    # -- outgoing traffic ------------------------------------------------------

    def _gate_open(self) -> bool:
        return not self.unconfirmed and not self.recovering

    def _enqueue_send(self, dst: int, payload: Any) -> None:
        msg = SBMessage(src=self.pid, dst=dst, payload=payload,
                        msg_id=(self.pid, self.send_seq))
        self.send_seq += 1
        self.send_buffer.append(msg)
        self._blocked_since[msg.wire_id] = self.now_fn()

    def _drain_send_buffer(self) -> List[SBMessage]:
        """Release buffered sends once every delivery is confirmed."""
        if not self._gate_open() or not self.send_buffer:
            return []
        now = self.now_fn()
        released = self.send_buffer
        self.send_buffer = []
        for msg in released:
            self.sent_log[msg.msg_id] = LogRecord(msg)
            self.send_block_total += now - self._blocked_since.pop(
                msg.wire_id, now)
        return released

    # -- incoming traffic ------------------------------------------------------

    def on_message(self, msg: SBMessage):
        """Deliver an application message.

        Returns (acks, released, replies-to-self) — the harness transmits
        the ack, then any sends the (possibly re-opened) gate lets out.
        """
        if self.recovering:
            self.pending_during_recovery.append(msg)
            return [], []
        if msg.msg_id in self.delivered_ids:
            self.duplicates += 1
            return [], []
        return self._deliver(msg)

    def _deliver(self, msg: SBMessage):
        self.rsn += 1
        self.deliveries += 1
        self.delivered_ids.add(msg.msg_id)
        acks: List[SBAck] = []
        if msg.src >= 0:
            self.unconfirmed[msg.msg_id] = self.rsn
            acks.append(SBAck(self.pid, msg.msg_id, self.rsn))
            self.acks_sent += 1
        else:
            # Outside-world input: force-log it ourselves (input logging).
            self._input_log.append((self.rsn, msg))
            self.sync_writes += 1
        ctx = AppContext(self.pid, self.n, 0, self.rsn, self.seed)
        self.app_state = self.behavior.on_message(self.app_state, msg.payload, ctx)
        for dst, payload, _k in ctx.sends_with_limits:
            self._enqueue_send(dst, payload)
        return acks, self._drain_send_buffer()

    def on_ack(self, ack: SBAck) -> List[SBConfirm]:
        """Sender side: record the RSN, confirm to the receiver."""
        record = self.sent_log.get(ack.msg_id)
        if record is not None and record.rsn is None:
            record.rsn = ack.rsn
            record.message.rsn = ack.rsn
        self.confirms_sent += 1
        return [SBConfirm(self.pid, ack.msg_id)]

    def on_confirm(self, confirm: SBConfirm) -> List[SBMessage]:
        """Receiver side: a delivery is fully logged; maybe open the gate."""
        self.unconfirmed.pop(confirm.msg_id, None)
        return self._drain_send_buffer()

    def reack_unconfirmed(self, sender: int) -> List[SBAck]:
        """A recovering sender lost its volatile log — and with it any RSNs
        it had not yet confirmed.  Its recovery request doubles as an
        'I am back': re-ack every unconfirmed delivery it originated, so
        its replay-regenerated log records pick the RSNs up and the
        confirmations finally open our send gate."""
        reacks = [
            SBAck(self.pid, msg_id, rsn)
            for msg_id, rsn in sorted(self.unconfirmed.items())
            if msg_id[0] == sender
        ]
        self.acks_sent += len(reacks)
        return reacks

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> "SBCheckpointNote":
        """Persist app state + RSN + delivered ids (one sync write) and
        announce the new GC bar to the senders."""
        self._checkpoint = (copy.deepcopy(self.app_state), self.rsn,
                            set(self.delivered_ids), self.send_seq)
        self._input_log = [(r, m) for r, m in self._input_log if r > self.rsn]
        self.sync_writes += 1
        return SBCheckpointNote(self.pid, self.rsn)

    def on_checkpoint_note(self, note: "SBCheckpointNote") -> int:
        """Sender-side GC: drop fully-logged copies the receiver has
        checkpointed past.  Returns the number reclaimed."""
        stale = [
            msg_id for msg_id, record in self.sent_log.items()
            if record.message.dst == note.receiver
            and record.rsn is not None and record.rsn <= note.rsn
        ]
        for msg_id in stale:
            del self.sent_log[msg_id]
        return len(stale)

    # -- recovery ------------------------------------------------------------

    def crash(self) -> SBLogRequest:
        """Fail-stop: volatile state dies; enter recovery mode."""
        state, rsn, delivered, send_seq = self._checkpoint
        self.app_state = copy.deepcopy(state)
        self.rsn = rsn
        self.delivered_ids = set(delivered)
        self.send_seq = send_seq
        self.sent_log = {}
        self.unconfirmed = {}
        self.send_buffer = []
        self._blocked_since = {}
        self.pending_during_recovery = []
        self.recovering = True
        return SBLogRequest(self.pid, after_rsn=rsn)

    def on_log_request(self, request: SBLogRequest) -> SBLogReply:
        """Peer side: return logged copies destined to the requester.

        Copies with a recorded RSN beyond the checkpoint are replayed in
        order; copies never acked are re-sent fresh (they were in flight).
        """
        copies = [
            record.message for record in self.sent_log.values()
            if record.message.dst == request.requester
            and (record.rsn is None or record.rsn > request.after_rsn)
        ]
        return SBLogReply(self.pid, request.requester, copies)

    def finish_recovery(self, replies: List[SBLogReply]):
        """Replay logged copies in RSN order, then drain buffered traffic.

        Returns (acks, released) accumulated over the whole replay.
        """
        if not self.recovering:
            raise RuntimeError(f"P{self.pid}: finish_recovery outside recovery")
        copies: List[SBMessage] = [
            m for reply in replies for m in reply.copies
        ]
        # Own force-logged inputs take part in the ordered replay too.
        copies.extend(m for rsn, m in self._input_log if rsn > self.rsn)
        with_rsn = sorted((m for m in copies if m.rsn is not None),
                          key=lambda m: m.rsn)
        without_rsn = [m for m in copies if m.rsn is None]

        self.recovering = False
        acks: List[SBAck] = []
        released: List[SBMessage] = []
        for msg in with_rsn:
            if msg.msg_id in self.delivered_ids:
                self.duplicates += 1
                continue
            self.replayed += 1
            new_acks, new_released = self._deliver(msg)
            acks += new_acks
            released += new_released
        # Unacked copies and traffic that arrived mid-recovery are new.
        for msg in without_rsn + self.pending_during_recovery:
            if msg.msg_id in self.delivered_ids:
                self.duplicates += 1
                continue
            new_acks, new_released = self._deliver(msg)
            acks += new_acks
            released += new_released
        self.pending_during_recovery = []
        return acks, released
