"""Sender-based message logging (the paper's reference [1] family)."""

from repro.senderbased.harness import (
    SenderBasedConfig,
    SenderBasedRunMetrics,
    SenderBasedSimulation,
)
from repro.senderbased.protocol import (
    SBAck,
    SBCheckpointNote,
    SBConfirm,
    SBLogReply,
    SBLogRequest,
    SBMessage,
    SenderBasedProcess,
)

__all__ = ["SBAck", "SBCheckpointNote", "SBConfirm", "SBLogReply",
           "SBLogRequest", "SBMessage", "SenderBasedConfig",
           "SenderBasedRunMetrics", "SenderBasedSimulation",
           "SenderBasedProcess"]
