"""Sharded event loop with a deterministic cross-shard merge.

:class:`ShardedEngine` partitions the pending-event set across ``W``
per-worker heaps (shards).  Producers route records with the ``shard``
hint every ``schedule*`` method accepts — the network passes the
destination process id, so each shard holds the inbound event stream of
an ``n/W``-slice of processes, mirroring Taurus-style per-worker log
streams.  Records without a hint are spread round-robin by sequence
number.

**The merge rule.**  Each step fires the minimum record across all shard
fronts, ordered by the same ``(time, priority, seq)`` key a single heap
uses.  Since every record still receives a globally unique ``seq`` from
one shared counter, the key is a total order, and the sequence of fired
events is *identical to the single-heap engine for any shard count,
including W=1* — shard routing affects placement only, never order.  The
differential suite (``tests/sim/test_shard_differential.py``) locks this
down: same committed outputs, same event counts, same oracle verdicts for
``W ∈ {1, 2, 4}``.

This class is the in-process model of the sharded runtime: each heap is
the event stream one worker OS process would own, and the merge rule is
the contract a multi-process dispatcher must implement to stay
replay-identical with the simulator.  (The blocking cross-shard merge is
what makes the result deterministic; a real deployment would relax it to
a watermark-based merge at the cost of replay identity — see
DESIGN.md.)
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.sim.engine import Engine, _is_dead


class ShardedEngine(Engine):
    """Deterministic W-way sharded variant of :class:`Engine`.

    Observable behaviour is bit-identical to the base engine; only the
    internal placement of pending records differs.  ``events_per_shard``
    counts records *scheduled* to each shard, exposing how evenly a
    workload's routing hints spread the load.
    """

    def __init__(self, shards: int, start_time: float = 0.0):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        super().__init__(start_time)
        self.shards = shards
        self._heaps: List[List[Tuple]] = [[] for _ in range(shards)]
        #: Records scheduled per shard (placement statistics).
        self.events_per_shard: List[int] = [0] * shards

    # -- placement ----------------------------------------------------------

    def _heap_for(self, shard: Optional[int]) -> List[Tuple]:
        index = (self._seq if shard is None else shard) % self.shards
        self.events_per_shard[index] += 1
        return self._heaps[index]

    def _requeue(self, record: Tuple) -> None:
        # Placement never affects firing order, so an unchosen tie-break
        # candidate goes back by sequence number (deterministic, counted
        # nowhere — it was already counted when first scheduled).
        heapq.heappush(self._heaps[record[2] % self.shards], record)

    # -- the deterministic cross-shard merge --------------------------------

    def step(self) -> bool:
        if self._tie_breaker is not None:
            fired = self._step_chosen()
            if fired is None:
                return False
            return fired
        best_heap: Optional[List[Tuple]] = None
        best_key: Optional[Tuple[float, int, int]] = None
        for heap in self._heaps:
            while heap:
                record = heap[0]
                if _is_dead(record):
                    heapq.heappop(heap)
                    continue
                key = (record[0], record[1], record[2])
                if best_key is None or key < best_key:
                    best_key = key
                    best_heap = heap
                break
        if best_heap is None:
            return False
        self._fire_record(heapq.heappop(best_heap))
        return True

    def _candidate_records(self) -> List[Tuple]:
        front_time: Optional[float] = None
        for heap in self._heaps:
            while heap and _is_dead(heap[0]):
                heapq.heappop(heap)
            if heap and (front_time is None or heap[0][0] < front_time):
                front_time = heap[0][0]
        if front_time is None:
            return []
        candidates: List[Tuple] = []
        for heap in self._heaps:
            while heap:
                record = heap[0]
                if _is_dead(record):
                    heapq.heappop(heap)
                    continue
                if record[0] == front_time:
                    candidates.append(heapq.heappop(heap))
                    continue
                break
        # Present candidates in the single-heap default firing order.
        candidates.sort(key=lambda record: (record[1], record[2]))
        return candidates

    def _peek_time(self) -> Optional[float]:
        earliest: Optional[float] = None
        for heap in self._heaps:
            while heap and _is_dead(heap[0]):
                heapq.heappop(heap)
            if heap and (earliest is None or heap[0][0] < earliest):
                earliest = heap[0][0]
        return earliest

    # -- maintenance ---------------------------------------------------------

    def _note_cancel(self) -> None:
        self._live -= 1
        total = sum(len(heap) for heap in self._heaps)
        dead = total - self._live
        if dead >= self.COMPACT_MIN_DEAD and dead * 2 >= total:
            for index, heap in enumerate(self._heaps):
                compacted = [rec for rec in heap if not _is_dead(rec)]
                heapq.heapify(compacted)
                self._heaps[index] = compacted
