"""Deterministic discrete-event simulation substrate."""

from repro.sim.engine import Engine, EventHandle, SimulationError, call_soon
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceEvent, Tracer

__all__ = ["Engine", "EventHandle", "RngRegistry", "SimulationError",
           "TraceEvent", "Tracer", "call_soon"]
