"""Deterministic discrete-event simulation engine.

The engine is a classic calendar loop: a binary heap of ``(time, priority,
sequence, ...)`` records.  Ties on time are broken first by an explicit
priority (lower runs first) and then by insertion order, which makes every
run with the same seed bit-for-bit reproducible — a property the recovery
tests rely on (deterministic replay must reconstruct identical states).

Two record shapes share the heap:

- **handle records** ``(time, priority, seq, EventHandle)`` — returned by
  :meth:`Engine.schedule`/:meth:`Engine.schedule_at`, cancellable;
- **raw records** ``(time, priority, seq, fn, args, label)`` — pushed by
  :meth:`Engine.schedule_at_raw` for fire-and-forget work (message
  arrivals).  No handle object, no closure: the hot network path schedules
  with zero per-event allocations beyond the heap tuple itself.

The two are discriminated by tuple length; the ``(time, priority, seq)``
prefix alone decides pop order, so mixing shapes never affects the firing
sequence.

Two hooks open the loop up to external control without touching the
default behaviour:

- a **tie-breaker** (:meth:`Engine.set_tie_breaker`) chooses which of
  several same-time events fires next — the systematic schedule explorer
  (:mod:`repro.check`) drives it to enumerate delivery orderings;
- a **post-step callback** (:attr:`Engine.post_step`) runs after every
  fired event — the invariant probe layer checks global properties there.

Events may carry a ``label`` so external choosers and dumped
counterexample traces can describe what each choice meant; producers on
hot paths consult :attr:`Engine.wants_labels` and skip building label
strings when no chooser is installed.

All ``schedule*`` methods accept an optional ``shard`` routing hint.  The
base engine ignores it; :class:`repro.sim.shard.ShardedEngine` uses it to
place the record on a per-worker heap (placement only — the deterministic
cross-shard merge keeps the firing order identical for any shard count).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: A tie-breaker: receives the same-time candidates in default firing
#: order and returns the index of the event to fire next.
TieBreaker = Callable[[List["EventHandle"]], int]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. events in the past)."""


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; supports cancellation."""

    __slots__ = ("time", "cancelled", "label", "_callback", "_engine")

    def __init__(self, time: float, callback: Callable[..., None],
                 label: Optional[str] = None):
        self.time = time
        self.cancelled = False
        self.label = label
        self._callback = callback
        self._engine: Optional["Engine"] = None

    def cancel(self) -> None:
        """Prevent the event from firing (a no-op if it already ran)."""
        if self.cancelled:
            return
        self.cancelled = True
        self._callback = None  # type: ignore[assignment]
        if self._engine is not None:
            self._engine._note_cancel()


def _is_dead(record: Tuple) -> bool:
    """True for a cancelled handle record (raw records cannot cancel)."""
    return len(record) == 4 and record[3].cancelled


class Engine:
    """A single-threaded discrete-event scheduler with virtual time."""

    #: Compaction thresholds: rebuild the heap once at least this many
    #: cancelled records linger AND they make up half the queue.
    COMPACT_MIN_DEAD = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._seq = 0
        self._queue: List[Tuple] = []
        self._live = 0
        self._events_executed = 0
        self._running = False
        self._tie_breaker: Optional[TieBreaker] = None
        #: Invoked (with no arguments) after every fired event; the
        #: checking harness hangs its invariant probes here.
        self.post_step: Optional[Callable[[], None]] = None

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled, not yet fired) scheduled events.

        Cancelled records linger in the heap until lazily popped or
        compacted, but they no longer count here.
        """
        return self._live

    @property
    def wants_labels(self) -> bool:
        """Whether event labels will be consumed (a tie-breaker is
        installed).  Hot-path producers skip label formatting otherwise."""
        return self._tie_breaker is not None

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority, label, shard)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` to fire at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (current time {self._now})"
            )
        handle = EventHandle(time, callback, label)
        handle._engine = self
        heapq.heappush(self._heap_for(shard), (time, priority, self._seq, handle))
        self._seq += 1
        self._live += 1
        return handle

    def schedule_at_raw(
        self,
        time: float,
        fn: Callable[..., None],
        args: Tuple = (),
        priority: int = 0,
        label: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` with no handle.

        The fire-and-forget fast path: no :class:`EventHandle`, no closure
        capture, not cancellable.  Used by the network for message
        arrivals, which are never revoked individually.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (current time {self._now})"
            )
        heapq.heappush(self._heap_for(shard),
                       (time, priority, self._seq, fn, args, label))
        self._seq += 1
        self._live += 1

    def _heap_for(self, shard: Optional[int]) -> List[Tuple]:
        """The heap a new record lands on (``shard`` ignored here)."""
        return self._queue

    def _note_cancel(self) -> None:
        """A queued handle was cancelled; maybe compact the heap.

        Cancelled records are deleted lazily, so a cancellation-heavy
        workload (ack/retransmit timers) can leave the heap mostly dead
        weight, inflating every push/pop.  Once the dead fraction reaches
        one half (and is big enough to be worth the rebuild), filter and
        re-heapify — pop order is decided entirely by the (time, priority,
        seq) prefix, so rebuilding never changes the firing sequence.
        """
        self._live -= 1
        dead = len(self._queue) - self._live
        if dead >= self.COMPACT_MIN_DEAD and dead * 2 >= len(self._queue):
            self._queue = [rec for rec in self._queue if not _is_dead(rec)]
            heapq.heapify(self._queue)

    # -- external schedule control --------------------------------------------

    def set_tie_breaker(self, chooser: Optional[TieBreaker]) -> None:
        """Install (or clear) an external same-time tie-breaker.

        When two or more pending events share the earliest time, the
        chooser receives them in default firing order — sorted by
        ``(priority, sequence)`` — and returns the index of the one to
        fire; the rest keep their place in the queue.  With no chooser
        installed the engine behaves exactly as before (priority, then
        insertion order), preserving bit-for-bit reproducibility.
        """
        self._tie_breaker = chooser

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        if self._tie_breaker is not None:
            fired = self._step_chosen()
            if fired is None:
                return False
            return fired
        queue = self._queue
        while queue:
            record = heapq.heappop(queue)
            if len(record) == 4:
                handle = record[3]
                if handle.cancelled:
                    continue
                self._fire(record[0], handle)
            else:
                self._fire_raw(record)
            return True
        return False

    def _candidate_records(self) -> List[Tuple]:
        """Pop every live record sharing the earliest time (tie-breaking)."""
        candidates: List[Tuple] = []
        front_time: Optional[float] = None
        queue = self._queue
        while queue:
            record = heapq.heappop(queue)
            if _is_dead(record):
                continue
            if front_time is None:
                front_time = record[0]
            elif record[0] > front_time:
                heapq.heappush(queue, record)
                break
            candidates.append(record)
        return candidates

    def _requeue(self, record: Tuple) -> None:
        """Return an unchosen candidate to its heap."""
        heapq.heappush(self._queue, record)

    def _step_chosen(self) -> Optional[bool]:
        """One step under an external tie-breaker.

        Returns True after firing, or None when the queue is empty.
        """
        candidates = self._candidate_records()
        if not candidates:
            return None
        index = 0
        if len(candidates) > 1:
            index = self._tie_breaker([_display_handle(r) for r in candidates])
            if not 0 <= index < len(candidates):
                raise SimulationError(
                    f"tie-breaker chose {index} among {len(candidates)} events"
                )
        chosen = candidates.pop(index)
        for record in candidates:
            self._requeue(record)
        self._fire_record(chosen)
        return True

    def _fire_record(self, record: Tuple) -> None:
        if len(record) == 4:
            self._fire(record[0], record[3])
        else:
            self._fire_raw(record)

    def _fire(self, time: float, handle: EventHandle) -> None:
        self._now = time
        callback = handle._callback
        handle.cancelled = True  # mark consumed; cancel() becomes no-op
        self._live -= 1
        self._events_executed += 1
        callback()  # type: ignore[misc]
        if self.post_step is not None:
            self.post_step()

    def _fire_raw(self, record: Tuple) -> None:
        self._now = record[0]
        self._live -= 1
        self._events_executed += 1
        record[3](*record[4])
        if self.post_step is not None:
            self.post_step()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at that virtual time (events scheduled
        later stay queued); ``max_events`` bounds the number of firings —
        a safety net for tests that might otherwise loop forever.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        fired = 0
        try:
            while True:
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                if self.step():
                    fired += 1
            # The clock advances to the horizon on every normal exit: queue
            # exhausted, all remaining records cancelled, or the next event
            # lying beyond ``until``.  (A queue holding only cancelled
            # records must behave exactly like an empty one.)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time`` without firing anything.

        Used by the epoch-parallel runner to align worker clocks at a
        barrier; refuses to jump over pending events (that would fire them
        in the past)."""
        if time <= self._now:
            return
        next_time = self._peek_time()
        if next_time is not None and next_time < time:
            raise SimulationError(
                f"cannot advance to {time}: event pending at {next_time}"
            )
        self._now = time

    def _peek_time(self) -> Optional[float]:
        queue = self._queue
        while queue:
            record = queue[0]
            if _is_dead(record):
                heapq.heappop(queue)
                continue
            return record[0]
        return None


def _display_handle(record: Tuple) -> EventHandle:
    """A handle view of any record, for tie-breaker/choice display.

    Raw records get a throwaway handle carrying their time and label —
    choosers only read those two fields; firing goes through the record.
    """
    if len(record) == 4:
        return record[3]
    return EventHandle(record[0], record[3], record[5])


def call_soon(engine: Engine, callback: Callable[[], None], priority: int = 0) -> EventHandle:
    """Schedule ``callback`` at the current time (after pending same-time events)."""
    return engine.schedule(0.0, callback, priority)
