"""Structured event tracing.

The tracer records what happened and when, in a machine-checkable form.
Integration tests (notably the Figure 1 re-enactment) assert against the
trace, and the experiment harness derives several metrics from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    ``category`` is a dotted tag such as ``"msg.deliver"`` or
    ``"recovery.rollback"``; ``process`` the process it happened at (or
    ``None`` for system-wide events); ``data`` free-form details.
    """

    time: float
    category: str
    process: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        where = f"P{self.process}" if self.process is not None else "sys"
        details = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.time:10.3f}] {where:>5} {self.category:<22} {details}"


class Tracer:
    """Collects :class:`TraceEvent` records; cheap to disable."""

    def __init__(self, enabled: bool = True, prefix: Optional[str] = None):
        self.enabled = enabled
        #: Only record categories with this dotted prefix (``None`` = all).
        #: Large runs set ``"dep."`` to keep certifier events without
        #: holding millions of msg/timer records in memory.
        self.prefix = prefix
        self.events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def record(
        self,
        time: float,
        category: str,
        process: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Append an event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self.prefix is not None and not category.startswith(self.prefix):
            return
        event = TraceEvent(time, category, process, data)
        self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    def select(
        self,
        category: Optional[str] = None,
        process: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Events matching a category prefix and/or a process id."""
        return list(self.iter_select(category=category, process=process))

    def iter_select(
        self,
        category: Optional[str] = None,
        process: Optional[int] = None,
    ) -> Iterator[TraceEvent]:
        for event in self.events:
            if category is not None and not event.category.startswith(category):
                continue
            if process is not None and event.process != process:
                continue
            yield event

    def count(self, category: str, process: Optional[int] = None) -> int:
        """Number of matching events."""
        return sum(1 for _ in self.iter_select(category=category, process=process))

    def clear(self) -> None:
        self.events.clear()

    def format(self, category: Optional[str] = None) -> str:
        """Human-readable dump, used by the example scripts."""
        return "\n".join(str(e) for e in self.iter_select(category=category))

    # -- persistence --------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write the trace as JSON lines; returns the event count.

        Only JSON-serializable data fields survive; non-serializable values
        are stringified (traces carry strings and numbers in practice).
        """
        import json

        def safe(value: Any) -> Any:
            try:
                json.dumps(value)
                return value
            except (TypeError, ValueError):
                return str(value)

        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps({
                    "time": event.time,
                    "category": event.category,
                    "process": event.process,
                    "data": {k: safe(v) for k, v in event.data.items()},
                }) + "\n")
        return len(self.events)

    @classmethod
    def load_jsonl(cls, path: str) -> "Tracer":
        """Reconstruct a tracer from a JSONL dump (for offline analysis,
        e.g. rendering timelines from archived runs)."""
        import json

        tracer = cls()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if not line.strip():
                    continue
                raw = json.loads(line)
                tracer.record(raw["time"], raw["category"], raw["process"],
                              **raw.get("data", {}))
        return tracer
