"""Seeded, named random-number streams.

Every stochastic component (channel latency, workload traffic, failure
injection, ...) draws from its own named stream so that changing one
component's consumption pattern never perturbs another's draws.  This is
what makes parameter sweeps comparable: the K=0 and K=N runs of an
experiment see the *same* workload and the *same* failure schedule.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(root_seed: int, name: str) -> int:
    """Stable (platform-independent) seed derivation for a named stream."""
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use, then cached)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def fresh(self, name: str) -> random.Random:
        """A brand-new, uncached stream (for deterministic replay contexts)."""
        return random.Random(_derive_seed(self.root_seed, name))
