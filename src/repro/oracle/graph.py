"""Ground-truth transitive-dependency oracle.

The simulator (not the protocol) feeds this graph with every interval
creation, delivery edge, stability transition and rollback.  Because it is
maintained from global knowledge, independently of the piggybacked vectors,
it can *check* the protocol's claims:

- **Theorem 3** — every transitive dependency on a non-stable interval is
  still present in a carried dependency vector;
- **Theorem 4** — when a message is released, at most K processes own
  non-stable intervals in its causal past;
- **global consistency** — after recovery quiesces, no surviving state
  interval depends on a rolled-back interval (no undetected orphans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.entry import Entry
from repro.types import ProcessId

#: Globally unique interval identity.
IntervalId = Tuple[ProcessId, int, int]  # (pid, inc, sii)


@dataclass
class IntervalNode:
    """One state interval in the ground-truth graph."""

    interval: IntervalId
    preds: List[IntervalId] = field(default_factory=list)
    stable: bool = False
    rolled_back: bool = False


class DependencyOracle:
    """Global happened-before graph over state intervals."""

    def __init__(self, n: int):
        self.n = n
        self._nodes: Dict[IntervalId, IntervalNode] = {}
        # The live chain of each process, in program order.
        self._chains: List[List[IntervalId]] = [[] for _ in range(n)]
        self.consistency_violations: List[str] = []

    # -- construction -------------------------------------------------------

    def start_process(self, pid: ProcessId) -> None:
        """Record the initial interval (pid, 0, 1); it is stable by fiat."""
        interval = (pid, 0, 1)
        self._nodes[interval] = IntervalNode(interval, stable=True)
        self._chains[pid] = [interval]

    def record_delivery(
        self,
        pid: ProcessId,
        interval: Entry,
        sender: Optional[ProcessId],
        sender_interval: Optional[Entry],
    ) -> None:
        """A (non-replay) delivery started ``interval`` at ``pid``.

        Predecessors: the process's previous live interval (program order)
        and, for internal messages, the sender's interval the message was
        sent from.
        """
        iid = (pid, interval.inc, interval.sii)
        node = IntervalNode(iid)
        chain = self._chains[pid]
        if chain:
            node.preds.append(chain[-1])
        if sender is not None and sender >= 0 and sender_interval is not None:
            node.preds.append((sender, sender_interval.inc, sender_interval.sii))
        self._nodes[iid] = node
        chain.append(iid)

    def record_recovery(self, pid: ProcessId, survivor: Entry, new_current: Entry) -> None:
        """A rollback or restart: the chain suffix beyond ``survivor`` is
        rolled back; ``new_current`` (the first interval of the new
        incarnation) continues the chain from the survivor."""
        chain = self._chains[pid]
        keep = 0
        for i, iid in enumerate(chain):
            _pid, _inc, sii = iid
            if sii <= survivor.sii:
                keep = i + 1
            else:
                break
        for iid in chain[keep:]:
            self._nodes[iid].rolled_back = True
        del chain[keep:]

        new_iid = (pid, new_current.inc, new_current.sii)
        node = IntervalNode(new_iid)
        if chain:
            node.preds.append(chain[-1])
        self._nodes[new_iid] = node
        chain.append(new_iid)

    def mark_stable(self, pid: ProcessId, through: Entry) -> None:
        """Everything on the live chain up to ``through.sii`` is now stable
        (a flush, checkpoint, or rollback-time forced log)."""
        for iid in self._chains[pid]:
            _pid, _inc, sii = iid
            if sii <= through.sii:
                self._nodes[iid].stable = True

    # -- queries ------------------------------------------------------------

    def node(self, interval: IntervalId) -> IntervalNode:
        return self._nodes[interval]

    def exists(self, interval: IntervalId) -> bool:
        return interval in self._nodes

    def causal_past(self, interval: IntervalId) -> Set[IntervalId]:
        """All intervals u with u -> interval (including interval itself)."""
        seen: Set[IntervalId] = set()
        stack = [interval]
        while stack:
            iid = stack.pop()
            if iid in seen or iid not in self._nodes:
                continue
            seen.add(iid)
            stack.extend(self._nodes[iid].preds)
        return seen

    def is_orphan(self, interval: IntervalId) -> bool:
        """Definition 1: some rolled-back interval is in the causal past."""
        return any(self._nodes[u].rolled_back for u in self.causal_past(interval))

    def potential_revokers(self, interval: IntervalId) -> Set[ProcessId]:
        """Processes whose failure could revoke a message sent from
        ``interval``: owners of non-stable, non-rolled-back intervals in the
        causal past (Theorem 4's quantity)."""
        revokers: Set[ProcessId] = set()
        for iid in self.causal_past(interval):
            node = self._nodes[iid]
            if not node.stable and not node.rolled_back:
                revokers.add(iid[0])
        return revokers

    def live_interval(self, pid: ProcessId) -> Optional[IntervalId]:
        chain = self._chains[pid]
        return chain[-1] if chain else None

    # -- read-only introspection (used by the invariant probe layer) ----------

    def live_chain(self, pid: ProcessId) -> Tuple[IntervalId, ...]:
        """The surviving program-order chain of ``pid`` (oldest first)."""
        return tuple(self._chains[pid])

    def non_stable_intervals(self) -> List[IntervalId]:
        """Every interval that is neither stable nor rolled back — the
        intervals whose owners are potential revokers (Theorem 4)."""
        return [iid for iid, node in self._nodes.items()
                if not node.stable and not node.rolled_back]

    def orphan_intervals(self) -> List[IntervalId]:
        """Live-chain intervals that are currently orphans.

        Non-empty mid-run is *not* a bug: optimistic logging creates
        orphans transiently and rolls them back once the failure
        announcement arrives.  Non-empty at quiescence is a bug
        (:meth:`check_consistency`).
        """
        return [iid
                for pid in range(self.n)
                for iid in self._chains[pid]
                if self.is_orphan(iid)]

    # -- invariant checks -----------------------------------------------------

    def chain_integrity_violations(self) -> List[str]:
        """Structural invariant that must hold after *every* step: a live
        chain never contains a rolled-back interval (recovery truncates
        the chain in the same oracle call that marks nodes rolled back)."""
        return [
            f"live chain of P{pid} contains rolled-back {iid}"
            for pid in range(self.n)
            for iid in self._chains[pid]
            if self._nodes[iid].rolled_back
        ]

    def check_consistency(self) -> List[str]:
        """No surviving interval may be an orphan.  Returns violations.

        Unlike :meth:`chain_integrity_violations` this is a *quiescent*
        invariant: while announcements are still in flight a process may
        transiently survive in an orphan state.
        """
        violations = []
        for pid in range(self.n):
            for iid in self._chains[pid]:
                if self._nodes[iid].rolled_back:
                    violations.append(f"live chain of P{pid} contains rolled-back {iid}")
                elif self.is_orphan(iid):
                    violations.append(f"surviving interval {iid} is an orphan")
        return violations

    @property
    def total_intervals(self) -> int:
        return len(self._nodes)

    @property
    def rolled_back_intervals(self) -> int:
        return sum(1 for node in self._nodes.values() if node.rolled_back)
