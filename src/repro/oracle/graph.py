"""Ground-truth transitive-dependency oracle.

The simulator (not the protocol) feeds this graph with every interval
creation, delivery edge, stability transition and rollback.  Because it is
maintained from global knowledge, independently of the piggybacked vectors,
it can *check* the protocol's claims:

- **Theorem 3** — every transitive dependency on a non-stable interval is
  still present in a carried dependency vector;
- **Theorem 4** — when a message is released, at most K processes own
  non-stable intervals in its causal past;
- **global consistency** — after recovery quiesces, no surviving state
  interval depends on a rolled-back interval (no undetected orphans).

Because the oracle runs on every release and at every quiescence check, it
is itself a simulation hot path.  Two acceleration structures keep the
checks from dominating wall-clock time (they did, before PR 4 profiled
them):

- **per-node causal vectors** — each node stores, per process, the highest
  *creation sequence number* of that process's intervals in its causal
  past.  The graph is append-only (a node's predecessor list is fixed at
  creation), so the vector is computed once as the elementwise max of the
  predecessors' vectors.  :meth:`potential_revokers` then answers in O(n)
  instead of a full past traversal: process j can revoke iff its first
  non-stable live-chain node has a sequence number covered by the vector
  (any extra node the vector over-approximates is provably rolled back,
  and rolled-back nodes are excluded from revoker sets anyway);
- **epoch-cached orphan sets** — rollbacks are the only events that can
  orphan an *existing* interval, so the full orphan set is recomputed once
  per rollback epoch in a single topological pass (creation order is a
  topological order) and extended incrementally for newly created nodes.
  Failure-free runs short-circuit on the rolled-back counter and never
  traverse at all.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core import columnar
from repro.core.entry import Entry
from repro.types import ProcessId

_np = columnar.NUMPY

#: Globally unique interval identity.
IntervalId = Tuple[ProcessId, int, int]  # (pid, inc, sii)

_EMPTY: FrozenSet[IntervalId] = frozenset()


class IntervalNode:
    """One state interval in the ground-truth graph.

    ``rolled_back`` is a property so that any mutation — including a test
    corrupting the graph behind the oracle's back — keeps the oracle's
    rolled-back counter and orphan-cache epoch coherent.
    """

    __slots__ = ("interval", "preds", "stable", "_rolled_back", "_owner")

    def __init__(
        self,
        interval: IntervalId,
        preds: Optional[List[IntervalId]] = None,
        stable: bool = False,
        rolled_back: bool = False,
    ):
        self.interval = interval
        self.preds: List[IntervalId] = preds if preds is not None else []
        self.stable = stable
        self._rolled_back = rolled_back
        self._owner: Optional["DependencyOracle"] = None

    @property
    def rolled_back(self) -> bool:
        return self._rolled_back

    @rolled_back.setter
    def rolled_back(self, value: bool) -> None:
        if value == self._rolled_back:
            return
        self._rolled_back = value
        if self._owner is not None:
            self._owner._note_rollback_flag(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IntervalNode({self.interval!r}, stable={self.stable}, "
                f"rolled_back={self._rolled_back})")


class DependencyOracle:
    """Global happened-before graph over state intervals."""

    def __init__(self, n: int):
        self.n = n
        self._nodes: Dict[IntervalId, IntervalNode] = {}
        # The live chain of each process, in program order.
        self._chains: List[List[IntervalId]] = [[] for _ in range(n)]
        self.consistency_violations: List[str] = []
        # -- acceleration structures (see module docstring) ---------------
        #: Per-process creation counter; sequence numbers start at 1.
        self._next_seq: List[int] = [1] * n
        self._seq_of: Dict[IntervalId, int] = {}
        #: Per-node causal vector: max creation seq per process in the past.
        #: Three representations, by scale: sparse ``{pid: seq}`` dicts at
        #: very large n (a dense vector per node is O(n * intervals) — the
        #: memory wall that blocked post-hoc certification of n=10k runs,
        #: while real causal pasts stay bounded by traffic reach); int64
        #: ndarrays when numpy is available and n is large enough for the
        #: vectorized max to beat the Python loop; plain lists otherwise.
        self._use_sparse = columnar.use_sparse_for(n)
        self._use_np = not self._use_sparse and columnar.use_numpy_for(n)
        self._vec: Dict[IntervalId, Any] = {}
        #: All nodes in creation order (a topological order of the DAG).
        self._creation_order: List[IntervalId] = []
        #: Per-process lower bound on the index of the first non-stable
        #: live-chain node (stability never reverts, so it only advances).
        self._stable_hint: List[int] = [0] * n
        self._rolled_back_count = 0
        #: Bumped whenever a rollback marks nodes; invalidates orphan cache.
        self._rollback_epoch = 0
        self._orphan_epoch = -1
        self._orphan_upto = 0
        self._orphan_set: Set[IntervalId] = set()

    # -- construction -------------------------------------------------------

    def _register(self, node: IntervalNode) -> None:
        """Index a new node: creation sequence, causal vector, topo order."""
        iid = node.interval
        pid = iid[0]
        seq = self._next_seq[pid]
        self._next_seq[pid] = seq + 1
        self._seq_of[iid] = seq
        if self._use_sparse:
            vec: Any = {}
            for pred in node.preds:
                pred_vec = self._vec.get(pred)
                if not pred_vec:
                    continue
                if not vec:
                    vec = dict(pred_vec)
                else:
                    for j, s in pred_vec.items():
                        if s > vec.get(j, 0):
                            vec[j] = s
            if seq > vec.get(pid, 0):
                vec[pid] = seq
        elif self._use_np:
            # Wide vectors: elementwise max in numpy instead of a Python
            # loop over n slots per predecessor.
            vec = None
            for pred in node.preds:
                pred_vec = self._vec.get(pred)
                if pred_vec is None:
                    continue
                if vec is None:
                    vec = pred_vec.copy()
                else:
                    _np.maximum(vec, pred_vec, out=vec)
            if vec is None:
                vec = _np.zeros(self.n, dtype=_np.int64)
            if seq > vec[pid]:
                vec[pid] = seq
        else:
            vec = [0] * self.n
            for pred in node.preds:
                pred_vec = self._vec.get(pred)
                if pred_vec is None:
                    continue
                for j in range(self.n):
                    if pred_vec[j] > vec[j]:
                        vec[j] = pred_vec[j]
            if seq > vec[pid]:
                vec[pid] = seq
        self._vec[iid] = vec
        node._owner = self
        self._nodes[iid] = node
        self._creation_order.append(iid)

    def _note_rollback_flag(self, value: bool) -> None:
        """A node's rolled-back flag changed; keep counter + cache epoch
        coherent (called from the :class:`IntervalNode` property setter)."""
        self._rolled_back_count += 1 if value else -1
        self._rollback_epoch += 1

    def start_process(self, pid: ProcessId) -> None:
        """Record the initial interval (pid, 0, 1); it is stable by fiat."""
        interval = (pid, 0, 1)
        node = IntervalNode(interval, stable=True)
        self._register(node)
        self._chains[pid] = [interval]

    def record_delivery(
        self,
        pid: ProcessId,
        interval: Entry,
        sender: Optional[ProcessId],
        sender_interval: Optional[Entry],
    ) -> None:
        """A (non-replay) delivery started ``interval`` at ``pid``.

        Predecessors: the process's previous live interval (program order)
        and, for internal messages, the sender's interval the message was
        sent from.
        """
        iid = (pid, interval.inc, interval.sii)
        node = IntervalNode(iid)
        chain = self._chains[pid]
        if chain:
            node.preds.append(chain[-1])
        if sender is not None and sender >= 0 and sender_interval is not None:
            node.preds.append((sender, sender_interval.inc, sender_interval.sii))
        self._register(node)
        chain.append(iid)

    def record_recovery(self, pid: ProcessId, survivor: Entry, new_current: Entry) -> None:
        """A rollback or restart: the chain suffix beyond ``survivor`` is
        rolled back; ``new_current`` (the first interval of the new
        incarnation) continues the chain from the survivor."""
        chain = self._chains[pid]
        keep = 0
        for i, iid in enumerate(chain):
            _pid, _inc, sii = iid
            if sii <= survivor.sii:
                keep = i + 1
            else:
                break
        for iid in chain[keep:]:
            # The property setter maintains the counter and cache epoch.
            self._nodes[iid].rolled_back = True
        del chain[keep:]
        if self._stable_hint[pid] > keep:
            self._stable_hint[pid] = keep

        new_iid = (pid, new_current.inc, new_current.sii)
        node = IntervalNode(new_iid)
        if chain:
            node.preds.append(chain[-1])
        self._register(node)
        chain.append(new_iid)

    def mark_stable(self, pid: ProcessId, through: Entry) -> None:
        """Everything on the live chain up to ``through.sii`` is now stable
        (a flush, checkpoint, or rollback-time forced log).

        Chain interval indices are strictly increasing and stability never
        reverts, so the scan resumes from the per-process hint instead of
        rescanning the whole chain."""
        chain = self._chains[pid]
        i = min(self._stable_hint[pid], len(chain))
        while i < len(chain):
            iid = chain[i]
            if iid[2] > through.sii:
                break
            self._nodes[iid].stable = True
            i += 1
        self._stable_hint[pid] = i

    # -- queries ------------------------------------------------------------

    def node(self, interval: IntervalId) -> IntervalNode:
        return self._nodes[interval]

    def exists(self, interval: IntervalId) -> bool:
        return interval in self._nodes

    def causal_past(self, interval: IntervalId) -> Set[IntervalId]:
        """All intervals u with u -> interval (including interval itself)."""
        seen: Set[IntervalId] = set()
        stack = [interval]
        while stack:
            iid = stack.pop()
            if iid in seen or iid not in self._nodes:
                continue
            seen.add(iid)
            stack.extend(self._nodes[iid].preds)
        return seen

    def _orphans(self) -> Set[IntervalId]:
        """The current orphan set, recomputed lazily per rollback epoch and
        extended incrementally for nodes created since the last call."""
        if self._rolled_back_count == 0:
            return _EMPTY  # type: ignore[return-value]
        if self._orphan_epoch != self._rollback_epoch:
            self._orphan_epoch = self._rollback_epoch
            self._orphan_set = set()
            self._orphan_upto = 0
        order = self._creation_order
        orphans = self._orphan_set
        nodes = self._nodes
        i = self._orphan_upto
        while i < len(order):
            iid = order[i]
            i += 1
            node = nodes.get(iid)
            if node is None:
                continue
            if node.rolled_back:
                orphans.add(iid)
            else:
                for pred in node.preds:
                    if pred in orphans:
                        orphans.add(iid)
                        break
        self._orphan_upto = i
        return orphans

    def is_orphan(self, interval: IntervalId) -> bool:
        """Definition 1: some rolled-back interval is in the causal past."""
        return interval in self._orphans()

    def _first_non_stable_seq(self, pid: ProcessId) -> Optional[int]:
        """Creation seq of ``pid``'s earliest non-stable live-chain node.

        Live-chain nodes are in creation order, so this is also the minimum
        sequence number over all non-stable, non-rolled-back nodes."""
        chain = self._chains[pid]
        i = min(self._stable_hint[pid], len(chain))
        nodes = self._nodes
        while i < len(chain) and nodes[chain[i]].stable:
            i += 1
        self._stable_hint[pid] = i
        if i < len(chain):
            return self._seq_of[chain[i]]
        return None

    def potential_revokers(self, interval: IntervalId) -> Set[ProcessId]:
        """Processes whose failure could revoke a message sent from
        ``interval``: owners of non-stable, non-rolled-back intervals in the
        causal past (Theorem 4's quantity)."""
        vec = self._vec.get(interval)
        if vec is None:
            # Unknown interval: fall back to the explicit traversal.
            revokers: Set[ProcessId] = set()
            for iid in self.causal_past(interval):
                node = self._nodes[iid]
                if not node.stable and not node.rolled_back:
                    revokers.add(iid[0])
            return revokers
        revokers = set()
        if self._use_sparse:
            for j, reach in vec.items():
                first = self._first_non_stable_seq(j)
                if first is not None and first <= reach:
                    revokers.add(j)
            return revokers
        if self._use_np:
            # Touch only the (sparse) nonzero slots.
            for j in _np.nonzero(vec)[0].tolist():
                first = self._first_non_stable_seq(j)
                if first is not None and first <= vec[j]:
                    revokers.add(j)
            return revokers
        for j in range(self.n):
            reach = vec[j]
            if not reach:
                continue
            first = self._first_non_stable_seq(j)
            if first is not None and first <= reach:
                revokers.add(j)
        return revokers

    def live_interval(self, pid: ProcessId) -> Optional[IntervalId]:
        chain = self._chains[pid]
        return chain[-1] if chain else None

    # -- read-only introspection (used by the invariant probe layer) ----------

    def live_chain(self, pid: ProcessId) -> Tuple[IntervalId, ...]:
        """The surviving program-order chain of ``pid`` (oldest first)."""
        return tuple(self._chains[pid])

    def non_stable_intervals(self) -> List[IntervalId]:
        """Every interval that is neither stable nor rolled back — the
        intervals whose owners are potential revokers (Theorem 4)."""
        return [iid for iid, node in self._nodes.items()
                if not node.stable and not node.rolled_back]

    def orphan_intervals(self) -> List[IntervalId]:
        """Live-chain intervals that are currently orphans.

        Non-empty mid-run is *not* a bug: optimistic logging creates
        orphans transiently and rolls them back once the failure
        announcement arrives.  Non-empty at quiescence is a bug
        (:meth:`check_consistency`).
        """
        orphans = self._orphans()
        if not orphans:
            return []
        return [iid
                for pid in range(self.n)
                for iid in self._chains[pid]
                if iid in orphans]

    # -- invariant checks -----------------------------------------------------

    def chain_integrity_violations(self) -> List[str]:
        """Structural invariant that must hold after *every* step: a live
        chain never contains a rolled-back interval (recovery truncates
        the chain in the same oracle call that marks nodes rolled back)."""
        if self._rolled_back_count == 0:
            return []
        return [
            f"live chain of P{pid} contains rolled-back {iid}"
            for pid in range(self.n)
            for iid in self._chains[pid]
            if self._nodes[iid].rolled_back
        ]

    def check_consistency(self) -> List[str]:
        """No surviving interval may be an orphan.  Returns violations.

        Unlike :meth:`chain_integrity_violations` this is a *quiescent*
        invariant: while announcements are still in flight a process may
        transiently survive in an orphan state.
        """
        violations = []
        orphans = self._orphans()
        for pid in range(self.n):
            for iid in self._chains[pid]:
                if self._nodes[iid].rolled_back:
                    violations.append(f"live chain of P{pid} contains rolled-back {iid}")
                elif iid in orphans:
                    violations.append(f"surviving interval {iid} is an orphan")
        return violations

    @property
    def total_intervals(self) -> int:
        return len(self._nodes)

    @property
    def rolled_back_intervals(self) -> int:
        return self._rolled_back_count
