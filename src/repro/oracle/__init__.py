"""Ground-truth verification oracle (independent of the protocol)."""

from repro.oracle.graph import DependencyOracle, IntervalId, IntervalNode

__all__ = ["DependencyOracle", "IntervalId", "IntervalNode"]
