"""Post-hoc certification of ``dep.*`` traces against the oracle.

A live serve run (:mod:`repro.backplane`) cannot carry the ground-truth
:class:`~repro.oracle.graph.DependencyOracle` inline: the oracle needs
*global* knowledge and the workers are separate OS processes.  Instead
every worker streams the ``dep.*`` event family (emitted by the shared
:class:`~repro.runtime.executor.EffectExecutor`) to an append-only JSONL
trace, and :func:`certify_traces` replays the merged event stream through
a fresh oracle after the run:

- ``dep.deliver`` registers the new state interval (with the program-order
  edge and, for internal messages, the sender-interval edge);
- ``dep.stable`` advances the stability frontier;
- ``dep.recover`` truncates the live chain past the survivor and starts
  the new incarnation;
- ``dep.release`` is a *claim* checked against Theorem 4 (at most K
  potential revokers at release);
- ``dep.commit`` is a *claim* checked against the output-commit rule
  (empty revoker set, not an orphan).

Events are merged in timestamp order.  All workers share one host clock
(``time.time``), and each causal edge's prerequisite is written before
the edge can exist — a sender records ``dep.deliver``/``dep.recover`` for
its current interval before releasing any message from it, and stability
is recorded before the notification that spreads it.  Timestamp *ties*
are still possible, so deliveries whose sender interval is not yet
registered are deferred until it is; a delivery whose sender interval
never appears is itself a violation (it would silently weaken orphan
detection).

Soundness note: the replayed oracle sees stability at its *source* time,
possibly earlier than the moment a remote protocol instance learned of
it.  Stability is monotone, so the replayed oracle is always at least as
advanced as any protocol instance's knowledge — it can under-count
revokers relative to a protocol's conservative view, never over-count
them relative to the truth, which is exactly the direction a checker of
Theorem 4 and the commit rule needs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.entry import Entry
from repro.oracle.graph import DependencyOracle


@dataclass
class Certification:
    """The verdict of one post-hoc trace certification."""

    violations: List[str] = field(default_factory=list)
    #: Payloads of committed outputs, in commit-time order.
    committed: List[Any] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def load_trace_events(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """Merge JSONL trace files into one time-ordered event list.

    Unparsable lines are skipped (a SIGKILLed worker may leave one
    truncated final line); the skip count rides along in the events under
    the key ``None`` — use :func:`certify_traces` rather than reading it.
    Ties are broken by (file, line) so the merge is deterministic.
    """
    events: List[Tuple[float, int, int, Dict[str, Any]]] = []
    skipped = 0
    for findex, path in enumerate(paths):
        with open(path, encoding="utf-8") as fh:
            for lindex, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(record, dict) or "category" not in record:
                    skipped += 1
                    continue
                events.append((float(record.get("time", 0.0)),
                               findex, lindex, record))
    events.sort(key=lambda item: item[:3])
    merged = [record for _, _, _, record in events]
    if merged or skipped:
        merged.insert(0, {"category": "_meta", "skipped_lines": skipped})
    return merged


class _Ingest:
    """Replays one merged event stream through a fresh oracle."""

    def __init__(self, n: int, k: int):
        self.n = n
        self.k = k
        self.oracle = DependencyOracle(n)
        for pid in range(n):
            self.oracle.start_process(pid)
        self.violations: List[str] = []
        self.committed: List[Any] = []
        self.counts = {
            "deliveries": 0, "releases": 0, "commits": 0,
            "recoveries": 0, "stable": 0, "deferred": 0, "skipped_lines": 0,
        }
        #: dep.deliver events waiting for their sender interval.
        self._deferred: List[Dict[str, Any]] = []

    # -- event application ---------------------------------------------------

    def apply(self, record: Dict[str, Any]) -> None:
        category = record.get("category")
        if category == "_meta":
            self.counts["skipped_lines"] = int(record.get("skipped_lines", 0))
            return
        if not isinstance(category, str) or not category.startswith("dep."):
            return
        pid = record.get("process")
        data = record.get("data", {})
        if not isinstance(pid, int) or not 0 <= pid < self.n:
            self.violations.append(
                f"trace event {category} with invalid process {pid!r}")
            return
        if category == "dep.deliver":
            self._deliver(pid, data)
        elif category == "dep.stable":
            self.counts["stable"] += 1
            self.oracle.mark_stable(
                pid, Entry(int(data["inc"]), int(data["sii"])))
        elif category == "dep.recover":
            self.counts["recoveries"] += 1
            self.oracle.record_recovery(
                pid,
                Entry(int(data["s_inc"]), int(data["s_sii"])),
                Entry(int(data["n_inc"]), int(data["n_sii"])),
            )
            self._retry_deferred()
        elif category == "dep.release":
            self._release(pid, data)
        elif category == "dep.commit":
            self._commit(pid, data)

    def _deliver(self, pid: int, data: Dict[str, Any],
                 deferred: bool = False) -> bool:
        src = int(data.get("src", -1))
        sender: Optional[int] = None
        sender_interval: Optional[Entry] = None
        if src >= 0 and "src_inc" in data:
            sender = src
            sender_interval = Entry(int(data["src_inc"]),
                                    int(data["src_sii"]))
            if not self.oracle.exists(
                    (sender, sender_interval.inc, sender_interval.sii)):
                # Timestamp tie: the sender's own interval event sorts
                # later.  Defer; _register would silently drop the edge.
                if not deferred:
                    self.counts["deferred"] += 1
                    self._deferred.append({"process": pid, "data": data})
                return False
        self.counts["deliveries"] += 1
        self.oracle.record_delivery(
            pid, Entry(int(data["inc"]), int(data["sii"])),
            sender, sender_interval)
        if not deferred:
            # The fixpoint loop in _retry_deferred handles cascades; a
            # deferred application must not re-enter it mid-iteration.
            self._retry_deferred()
        return True

    def _retry_deferred(self) -> None:
        # A registration can unblock deferred deliveries, whose application
        # can unblock more: iterate to fixpoint, preserving stream order.
        progress = True
        while progress and self._deferred:
            progress = False
            remaining = []
            for event in self._deferred:
                if self._deliver(event["process"], event["data"],
                                 deferred=True):
                    progress = True
                else:
                    remaining.append(event)
            self._deferred = remaining

    def _release(self, pid: int, data: Dict[str, Any]) -> None:
        self.counts["releases"] += 1
        if data.get("replayed"):
            return  # replay re-send of a pre-crash interval; already checked
        interval = (pid, int(data["inc"]), int(data["sii"]))
        if not self.oracle.exists(interval):
            return
        revokers = self.oracle.potential_revokers(interval)
        # A release claim carrying its own bound (Section 4.2 per-message
        # K, recorded by the executor) is certified against that bound.
        k = int(data["k"]) if "k" in data else self.k
        if len(revokers) > k:
            self.violations.append(
                f"Theorem 4 violated: {data.get('msg')} released by P{pid} "
                f"with {len(revokers)} potential revokers "
                f"{sorted(revokers)} > K={k}"
            )

    def _commit(self, pid: int, data: Dict[str, Any]) -> None:
        self.counts["commits"] += 1
        interval = (pid, int(data["inc"]), int(data["sii"]))
        output = data.get("output")
        if not self.oracle.exists(interval):
            self.violations.append(
                f"output {output} committed from unknown interval "
                f"{interval} at P{pid}"
            )
            return
        revokers = self.oracle.potential_revokers(interval)
        if revokers:
            self.violations.append(
                f"output {output} committed with live revokers "
                f"{sorted(revokers)}"
            )
        if self.oracle.is_orphan(interval):
            self.violations.append(
                f"output {output} committed from orphan interval {interval}"
            )
        self.committed.append(data.get("payload"))

    # -- finalization --------------------------------------------------------

    def finish(self) -> Certification:
        for event in self._deferred:
            data = event["data"]
            self.violations.append(
                f"delivery at P{event['process']} interval "
                f"({data.get('inc')},{data.get('sii')}) references sender "
                f"interval (P{data.get('src')},{data.get('src_inc')},"
                f"{data.get('src_sii')}) that never appeared in any trace"
            )
        self.violations.extend(self.oracle.check_consistency())
        return Certification(
            violations=self.violations,
            committed=self.committed,
            counts=self.counts,
        )


def certify_events(events: Sequence[Dict[str, Any]], n: int,
                   k: int) -> Certification:
    """Certify an already-merged, time-ordered event stream."""
    ingest = _Ingest(n, k)
    for record in events:
        ingest.apply(record)
    return ingest.finish()


def certify_tracer(tracer: Any, n: int, k: int) -> Certification:
    """Certify an in-memory simulation :class:`~repro.sim.trace.Tracer`.

    Simulation events are already in execution order (which refines the
    virtual-time order), so no merge or sort is needed — this is the sim
    side of the differential sim-vs-serve test.
    """
    events = [{"time": e.time, "category": e.category,
               "process": e.process, "data": e.data}
              for e in tracer.events]
    return certify_events(events, n, k)


def certify_traces(paths: Iterable[str], n: int, k: int) -> Certification:
    """Certify the ``dep.*`` traces of one run (one JSONL file per worker).

    Returns a :class:`Certification`; an empty ``violations`` list means
    the run exhibited no Theorem-4 violation, no orphan or premature
    output commit, and a consistent (orphan-free) surviving state.
    """
    return certify_events(load_trace_events(paths), n, k)
