"""K-optimistic logging: a reproduction of Wang, Damani & Garg (ICDCS 1997).

Public API highlights:

- :class:`repro.core.KOptimisticProcess` — the protocol (Figures 2-3)
- :mod:`repro.core.baselines` — pessimistic, Strom-Yemini, fully-async
- :class:`repro.runtime.SimConfig` / :class:`repro.runtime.SimulationHarness`
  — build and run a simulated deployment
- :mod:`repro.workloads` — deterministic traffic generators
- :class:`repro.failures.FailureSchedule` — crash injection
- :mod:`repro.experiments` — regenerate every exhibit of the paper
"""

from repro.core import DependencyVector, Entry, KOptimisticProcess
from repro.runtime import SimConfig, SimulationHarness

__version__ = "1.0.0"

__all__ = [
    "DependencyVector",
    "Entry",
    "KOptimisticProcess",
    "SimConfig",
    "SimulationHarness",
    "__version__",
]
