"""Setup shim: enables legacy editable installs (`pip install -e .`) on
environments whose setuptools lacks PEP 660 editable-wheel support."""

from setuptools import setup

setup()
