"""Unit tests for the workload generators and their behaviours."""

import pytest

from repro.app.behavior import AppContext
from repro.workloads.base import Workload, poisson_times
from repro.workloads.client_server import SERVER, ClientServerBehavior, ClientServerWorkload
from repro.workloads.pipeline import PipelineBehavior, PipelineWorkload
from repro.workloads.random_peers import RandomPeersWorkload, TokenBehavior
from repro.workloads.telecom import SwitchBehavior, TelecomWorkload

import random


def ctx(pid=0, n=4, sii=2):
    return AppContext(pid, n, 0, sii, seed=0)


class TestPoissonTimes:
    def test_times_increase_within_horizon(self):
        times = list(poisson_times(random.Random(0), rate=1.0, until=50.0))
        assert times == sorted(times)
        assert all(0 < t < 50.0 for t in times)

    def test_zero_rate_yields_nothing(self):
        assert list(poisson_times(random.Random(0), 0.0, 50.0)) == []

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            Workload().behavior()
        with pytest.raises(NotImplementedError):
            Workload().install(None, 1.0)


class TestTokenBehavior:
    def test_forwards_until_hops_exhausted(self):
        behavior = TokenBehavior()
        state = behavior.initial_state(0, 4)
        c = ctx()
        behavior.on_message(state, {"token": 1, "hops": 2}, c)
        assert len(c.sends) == 1
        dst, payload = c.sends[0]
        assert dst != 0
        assert payload["hops"] == 1

    def test_last_hop_emits_output_when_flagged(self):
        behavior = TokenBehavior()
        state = behavior.initial_state(0, 4)
        c = ctx()
        behavior.on_message(state, {"token": 1, "hops": 0, "emit_output": True}, c)
        assert not c.sends
        assert len(c.outputs) == 1

    def test_no_output_without_flag(self):
        behavior = TokenBehavior()
        c = ctx()
        behavior.on_message(behavior.initial_state(0, 4),
                            {"token": 1, "hops": 0}, c)
        assert not c.outputs

    def test_deterministic_forwarding(self):
        behavior = TokenBehavior()
        sends = []
        for _ in range(2):
            c = ctx()
            behavior.on_message(behavior.initial_state(0, 4),
                                {"token": 5, "hops": 3}, c)
            sends.append(c.sends)
        assert sends[0] == sends[1]

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            RandomPeersWorkload(min_hops=5, max_hops=2)
        with pytest.raises(ValueError):
            RandomPeersWorkload(output_fraction=1.5)


class TestClientServerBehavior:
    def test_stimulus_starts_conversation(self):
        behavior = ClientServerBehavior()
        c = ctx(pid=1)
        behavior.on_message(behavior.initial_state(1, 4),
                            {"kind": "stimulus", "conversation": 7, "rounds": 2},
                            c)
        assert c.sends[0][0] == SERVER
        assert c.sends[0][1]["rounds_left"] == 1

    def test_server_replies_and_accumulates(self):
        behavior = ClientServerBehavior()
        state = behavior.initial_state(SERVER, 4)
        c = ctx(pid=SERVER)
        behavior.on_message(state, {"kind": "request", "client": 2,
                                    "conversation": 7, "rounds_left": 1,
                                    "value": 3}, c)
        assert state["applied"] == 1
        assert c.sends[0][0] == 2
        assert c.sends[0][1]["kind"] == "reply"

    def test_client_final_reply_emits_output(self):
        behavior = ClientServerBehavior()
        state = behavior.initial_state(1, 4)
        c = ctx(pid=1)
        behavior.on_message(state, {"kind": "reply", "conversation": 7,
                                    "rounds_left": 0, "result": 9}, c)
        assert state["completed"] == 1
        assert c.outputs and c.outputs[0]["result"] == 9

    def test_client_intermediate_reply_continues(self):
        behavior = ClientServerBehavior()
        c = ctx(pid=1)
        behavior.on_message(behavior.initial_state(1, 4),
                            {"kind": "reply", "conversation": 7,
                             "rounds_left": 2, "result": 9}, c)
        assert c.sends[0][0] == SERVER
        assert not c.outputs

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientServerWorkload(rounds=0)


class TestPipelineBehavior:
    def test_intermediate_stage_forwards(self):
        behavior = PipelineBehavior()
        c = ctx(pid=1, n=4)
        behavior.on_message(behavior.initial_state(1, 4),
                            {"item": 0, "value": 5}, c)
        assert c.sends[0][0] == 2
        assert not c.outputs

    def test_final_stage_outputs(self):
        behavior = PipelineBehavior()
        c = ctx(pid=3, n=4)
        behavior.on_message(behavior.initial_state(3, 4),
                            {"item": 0, "value": 5}, c)
        assert not c.sends
        assert c.outputs


class TestSwitchBehavior:
    def test_transit_forwards_along_path(self):
        behavior = SwitchBehavior()
        c = ctx(pid=1, n=4)
        behavior.on_message(behavior.initial_state(1, 4),
                            {"call": 0, "path": [1, 3, 2], "position": 0,
                             "units": 10}, c)
        assert c.sends[0][0] == 3
        assert c.sends[0][1]["position"] == 1

    def test_egress_bills(self):
        behavior = SwitchBehavior()
        state = behavior.initial_state(2, 4)
        c = ctx(pid=2, n=4)
        behavior.on_message(state, {"call": 0, "path": [1, 3, 2],
                                    "position": 2, "units": 10}, c)
        assert not c.sends
        assert c.outputs[0]["billing_record"] == 0
        assert state["billed"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TelecomWorkload(min_transit=3, max_transit=1)


class TestInstallation:
    """Workloads schedule deterministic injections on a harness."""

    def _harness(self, workload, n=4, seed=5):
        from helpers import build_sim

        return build_sim(n=n, seed=seed, workload=workload, until=50.0,
                         trace_enabled=False, check_invariants=False)

    @pytest.mark.parametrize("workload", [
        RandomPeersWorkload(rate=0.5),
        ClientServerWorkload(rate=0.5),
        PipelineWorkload(rate=0.5),
        TelecomWorkload(rate=0.5),
    ])
    def test_injections_drive_deliveries(self, workload):
        harness = self._harness(workload)
        harness.run(100.0)
        metrics = harness.metrics()
        assert metrics.messages_delivered > 0
        assert not metrics.violations

    def test_same_seed_same_traffic(self):
        m1 = self._harness(RandomPeersWorkload(rate=0.5)).engine.pending
        m2 = self._harness(RandomPeersWorkload(rate=0.5)).engine.pending
        assert m1 == m2

    def test_client_server_needs_two_processes(self):
        with pytest.raises(ValueError):
            self._harness(ClientServerWorkload(), n=1)
