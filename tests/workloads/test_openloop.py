"""Open-loop arrival generator and workload: shape, determinism, and the
end-to-end ``t0`` latency stamps."""

import random

import pytest

from repro.workloads.openloop import (OpenLoopBehavior, OpenLoopWorkload,
                                      open_loop_times)

from helpers import build_sim


def times(seed=1, rate=1.0, until=500.0, **kwargs):
    return list(open_loop_times(random.Random(seed), rate, until, **kwargs))


class _NullWorkload:
    def __init__(self, behavior):
        self._behavior = behavior

    def behavior(self):
        return self._behavior

    def install(self, harness, until):
        pass


class TestOpenLoopTimes:
    def test_deterministic_in_the_rng(self):
        assert times(seed=42) == times(seed=42)
        assert times(seed=42) != times(seed=43)

    def test_times_sorted_and_in_range(self):
        ts = times()
        assert ts, "generator produced no arrivals"
        assert ts == sorted(ts)
        assert all(0.0 <= t < 500.0 for t in ts)

    def test_zero_rate_yields_nothing(self):
        assert times(rate=0.0) == []

    def test_mean_rate_tracks_the_target(self):
        # Heavy-tailed but finite-mean: over a long horizon the count is
        # within a loose band of rate * horizon.
        ts = times(seed=5, rate=1.0, until=5000.0)
        assert 0.5 * 5000 <= len(ts) <= 2.0 * 5000

    def test_bursts_make_clumps(self):
        calm = times(seed=7, burst_probability=0.0)
        bursty = times(seed=7, burst_probability=0.1, burst_multiplier=10.0)
        min_gap = lambda ts: min(b - a for a, b in zip(ts, ts[1:]))  # noqa: E731
        assert min_gap(bursty) < min_gap(calm)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            times(alpha=1.0)
        with pytest.raises(ValueError):
            times(diurnal_amplitude=1.0)


class TestOpenLoopWorkload:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            OpenLoopWorkload(min_hops=3, max_hops=2)
        with pytest.raises(ValueError):
            OpenLoopWorkload(output_fraction=1.5)

    def test_outputs_carry_injection_stamps(self):
        harness = build_sim(n=6, k=3, seed=2,
                            workload=OpenLoopWorkload(rate=0.8),
                            until=150.0)
        harness.run(250.0)
        assert harness.metrics().violations == []
        outputs = [rec.payload for _, rec in harness.committed_outputs]
        assert outputs, "no outputs committed"
        for payload in outputs:
            assert "t0" in payload and payload["t0"] >= 0.0
        harness.close()

    def test_e2e_latency_samples_use_t0(self):
        harness = build_sim(n=6, k=3, seed=2,
                            workload=OpenLoopWorkload(rate=0.8),
                            until=150.0)
        harness.run(250.0)
        stamps = {round(rec.payload["t0"], 9)
                  for when, rec in harness.committed_outputs}
        spans = [when - rec.payload["t0"]
                 for when, rec in harness.committed_outputs]
        # Samples are injection-to-commit: strictly positive, and the
        # metrics see exactly one sample per committed output.
        assert all(span > 0 for span in spans)
        assert len(harness.output_latency_samples) == len(spans)
        assert stamps, "stamps should be nonempty"
        harness.close()

    def test_unstamped_outputs_fall_back_to_buffer_wait(self):
        # Behaviours that do not stamp t0 still produce latency samples
        # (buffer residence time) instead of crashing or skewing stats.
        from repro.workloads.random_peers import RandomPeersWorkload

        harness = build_sim(n=4, k=2, seed=3,
                            workload=RandomPeersWorkload(rate=0.5),
                            until=100.0)
        harness.run(150.0)
        committed = len(harness.committed_outputs)
        assert committed > 0
        assert len(harness.output_latency_samples) == committed
        assert all(s >= 0.0 for s in harness.output_latency_samples)
        harness.close()

    def test_behavior_chain_preserves_t0(self):
        from repro.app.behavior import AppContext

        behavior = OpenLoopBehavior()
        state = behavior.initial_state(0, 4)
        ctx = AppContext(0, 4, 0, 1, seed=0)
        behavior.on_message(state, {"token": 9, "hops": 2,
                                    "emit_output": True, "t0": 12.5}, ctx)
        ((_, payload, _),) = ctx.sends_with_limits
        assert payload["t0"] == 12.5
        assert payload["hops"] == 1


class TestLoadgenProfiles:
    def test_openloop_profile_deterministic(self):
        from repro.backplane.loadgen import generate_stimuli

        a = generate_stimuli(6, 1, 100.0, 1.0, profile="openloop")
        b = generate_stimuli(6, 1, 100.0, 1.0, profile="openloop")
        assert a == b
        assert a and a == sorted(a, key=lambda s: s["time"])

    def test_unknown_profile_rejected(self):
        from repro.backplane.loadgen import generate_stimuli

        with pytest.raises(ValueError):
            generate_stimuli(6, 1, 100.0, 1.0, profile="poisson")

    def test_uniform_profile_unchanged_by_the_refactor(self):
        # The historical closed form, byte for byte: evenly spaced times,
        # then (dst, hops) drawn from random.Random(f"loadgen/{seed}").
        from repro.backplane.loadgen import generate_stimuli

        stimuli = generate_stimuli(4, 9, 50.0, 0.2, profile="uniform")
        rng = random.Random("loadgen/9")
        count = 10
        expected_times = [(i + 1) * 50.0 / (count + 1) for i in range(count)]
        assert [s["time"] for s in stimuli] == expected_times
        for s in stimuli:
            assert s["dst"] == rng.choice([0, 1, 2, 3])
            assert s["payload"]["hops"] == rng.randint(1, 3)
