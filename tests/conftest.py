"""Pytest configuration: make the tests/ directory importable so test
modules can use the shared helpers."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
