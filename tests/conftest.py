"""Pytest configuration: make the tests/ directory importable so test
modules can use the shared helpers, and register hypothesis profiles.

Profiles are selected with ``HYPOTHESIS_PROFILE`` (default: ``default``):

- ``default`` — hypothesis defaults; what tier-1 and local runs use.
- ``nightly`` — 10x examples for the property suites; the nightly CI job
  runs the differential property tests under this profile.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pass
else:
    settings.register_profile("default", settings())
    settings.register_profile("nightly", max_examples=1000, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
