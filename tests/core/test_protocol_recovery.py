"""Protocol conformance: Restart and Rollback (Figure 3) — crash-replay
determinism, announcement contents, incarnation management."""

import pytest

from repro.app.behavior import AppBehavior
from repro.core.effects import (
    BroadcastAnnouncement,
    MessageDelivered,
    MessageDiscarded,
    ReleaseMessage,
    RestartPerformed,
    RollbackPerformed,
)
from repro.core.entry import Entry
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class CountingBehavior(AppBehavior):
    """Deterministic state evolution that is easy to compare across replays."""

    def initial_state(self, pid, n):
        return {"count": 0, "hash": pid + 1}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        value = payload.get("v", 0) if isinstance(payload, dict) else 0
        state["hash"] = (state["hash"] * 31 + value) % 1_000_003
        if isinstance(payload, dict):
            for dst in payload.get("send_to", []):
                ctx.send(dst, {"v": state["hash"]})
        return state


class TestRestart:
    def test_restart_requires_crash(self):
        proc = make_proc()
        with pytest.raises(RuntimeError):
            proc.restart()

    def test_crashed_process_rejects_events(self):
        proc = make_proc()
        proc.crash()
        with pytest.raises(RuntimeError):
            proc.on_receive(make_msg(1, 0))

    def test_unlogged_work_is_lost(self):
        proc = make_proc(behavior=CountingBehavior())
        deliver_env(proc, {"v": 1})
        deliver_env(proc, {"v": 2})
        proc.crash()
        proc.restart()
        assert proc.app_state["count"] == 0
        assert proc.current == Entry(1, 2)  # inc 0 ended at (0,1)

    def test_logged_work_is_replayed_deterministically(self):
        proc = make_proc(behavior=CountingBehavior())
        deliver_env(proc, {"v": 1})
        deliver_env(proc, {"v": 2})
        pre_crash = dict(proc.app_state)
        proc.flush()
        proc.crash()
        effects = proc.restart()
        assert proc.app_state == pre_crash  # bit-identical reconstruction
        replays = [e for e in effects_of(effects, MessageDelivered) if e.replay]
        assert len(replays) == 2

    def test_announcement_carries_end_of_failed_incarnation(self):
        proc = make_proc(behavior=CountingBehavior())
        deliver_env(proc, {"v": 1})   # (0,2)
        deliver_env(proc, {"v": 2})   # (0,3)
        proc.flush()
        deliver_env(proc, {"v": 3})   # (0,4), volatile only -> lost
        proc.crash()
        effects = proc.restart()
        anns = effects_of(effects, BroadcastAnnouncement)
        assert len(anns) == 1
        assert anns[0].announcement.end == Entry(0, 3)
        assert proc.current == Entry(1, 4)

    def test_restart_inserts_own_iet_and_log(self):
        proc = make_proc(behavior=CountingBehavior())
        deliver_env(proc, {"v": 1})
        proc.crash()
        proc.restart()
        assert proc.iet.lookup(proc.pid, 0) == 1
        assert proc.log.covers(proc.pid, Entry(0, 1))

    def test_restart_replay_regenerates_unreleased_sends(self):
        proc = make_proc(pid=0, n=4, k=4, behavior=CountingBehavior())
        effects = deliver_env(proc, {"v": 1, "send_to": [2]})
        first = effects_of(effects, ReleaseMessage)[0].message
        proc.flush()
        proc.crash()
        effects = proc.restart()
        redone = effects_of(effects, ReleaseMessage)
        assert len(redone) == 1
        # Deterministic replay regenerates the *same* message identity, so
        # the receiver can deduplicate.
        assert redone[0].message.msg_id == first.msg_id
        assert redone[0].message.payload == first.payload

    def test_checkpoint_bounds_replay(self):
        proc = make_proc(behavior=CountingBehavior())
        for v in range(5):
            deliver_env(proc, {"v": v})
        proc.checkpoint()
        deliver_env(proc, {"v": 99})
        proc.flush()
        state = dict(proc.app_state)
        proc.crash()
        effects = proc.restart()
        replays = [e for e in effects_of(effects, MessageDelivered) if e.replay]
        assert len(replays) == 1  # only the post-checkpoint message
        assert proc.app_state == state

    def test_double_failure(self):
        proc = make_proc(behavior=CountingBehavior())
        deliver_env(proc, {"v": 1})
        proc.flush()
        proc.crash()
        proc.restart()                 # inc 1
        deliver_env(proc, {"v": 2})    # (1,3), volatile
        proc.crash()
        effects = proc.restart()       # inc 2
        ann = effects_of(effects, BroadcastAnnouncement)[0].announcement
        assert ann.end == Entry(1, 2)
        assert proc.current == Entry(2, 3)

    def test_restart_respects_logged_announcements(self):
        # A logged announcement says our logged suffix is orphaned: replay
        # must stop before it rather than resurrect orphan state.
        proc = make_proc(pid=0, n=4, behavior=CountingBehavior())
        deliver_env(proc, {"v": 1})                              # (0,2) clean
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                 payload={"v": 2}))              # (0,3) dep on P2
        proc.flush()
        # P2's failure ends its incarnation 0 at 3: our (0,3) is orphaned,
        # but we crash before we can roll back.
        proc.on_failure_announcement(make_announcement(2, 0, 3))
        # The announcement handler already rolled us back; simulate the
        # nastier order instead: fresh process, announcement logged, then
        # crash mid-rollback is equivalent to replay-with-iet.
        proc2 = make_proc(pid=1, n=4, behavior=CountingBehavior())
        deliver_env(proc2, {"v": 1})
        proc2.on_receive(make_msg(2, 1, entries={2: Entry(0, 7)},
                                  payload={"v": 2}))
        proc2.flush()
        proc2.storage.log_announcement(make_announcement(2, 0, 3))
        proc2.crash()
        effects = proc2.restart()
        replays = [e for e in effects_of(effects, MessageDelivered) if e.replay]
        assert len(replays) == 1  # stops before the orphaned delivery
        discarded = effects_of(effects, MessageDiscarded)
        assert any(d.reason == "orphan-in-log" for d in discarded)


class TestRollback:
    def _orphaned_proc(self, k=4):
        """A process whose state depends on (0,7)_2 (plus a clean prefix)."""
        proc = make_proc(pid=0, n=4, k=k, behavior=CountingBehavior())
        deliver_env(proc, {"v": 1})                                    # (0,2) clean
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                 payload={"v": 2}))                    # (0,3) orphan-to-be
        deliver_env(proc, {"v": 3})                                    # (0,4) orphan by program order
        return proc

    def test_rollback_restores_last_clean_interval(self):
        proc = self._orphaned_proc()
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        rb = effects_of(effects, RollbackPerformed)[0]
        assert rb.restored_to == Entry(0, 2)
        assert rb.intervals_undone == 2
        assert rb.new_current == Entry(1, 3)
        # The clean env message beyond the orphan point was requeued and
        # re-delivered in the new incarnation ("delivered again"), so the
        # process ends at (1,4) having processed 2 clean messages.
        assert proc.current == Entry(1, 4)
        assert proc.app_state["count"] == 2

    def test_rollback_forces_log_then_replays(self):
        proc = self._orphaned_proc()
        sync_before = proc.storage.sync_writes
        proc.on_failure_announcement(make_announcement(2, 0, 3))
        # one sync for the announcement, one for the forced log, one for
        # the incarnation marker
        assert proc.storage.sync_writes >= sync_before + 2

    def test_orphan_suffix_popped_from_log(self):
        proc = self._orphaned_proc()
        proc.flush()
        assert proc.storage.log_size == 3
        proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert proc.storage.log_size == 1  # only the clean prefix remains

    def test_non_orphan_logged_messages_requeued(self):
        # The clean env message delivered *after* the orphan one must be
        # delivered again in the new incarnation.
        proc = make_proc(pid=0, n=4, behavior=CountingBehavior())
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                 payload={"v": 2}))      # (0,2) orphan-to-be
        deliver_env(proc, {"v": 3})                       # (0,3) clean payload
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        rb = effects_of(effects, RollbackPerformed)[0]
        assert rb.requeued == 1
        # The requeued message was re-delivered in incarnation 1.
        assert proc.current == Entry(1, 3)
        assert proc.app_state["count"] == 1
        assert proc.stats.messages_requeued == 1

    def test_rollback_new_incarnation_is_persistent(self):
        # A crash right after a rollback must not reuse the incarnation.
        proc = self._orphaned_proc()
        proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert proc.current.inc == 1
        proc.crash()
        proc.restart()
        assert proc.current.inc == 2

    def test_orphaned_checkpoints_are_discarded(self):
        proc = make_proc(pid=0, n=4, behavior=CountingBehavior(),
                         gc_on_checkpoint=False)
        deliver_env(proc, {"v": 1})                       # (0,2) clean
        proc.checkpoint()
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                 payload={"v": 2}))       # (0,3)
        proc.checkpoint()                                 # orphaned checkpoint
        assert len(proc.storage.checkpoints) == 3
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        rb = effects_of(effects, RollbackPerformed)[0]
        assert rb.restored_to == Entry(0, 2)
        assert len(proc.storage.checkpoints) == 2  # initial + (0,2)

    def test_rollback_logs_progress_of_survived_prefix(self):
        proc = self._orphaned_proc()
        proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert proc.log.covers(proc.pid, Entry(0, 2))

    def test_own_entry_updated_after_rollback(self):
        proc = self._orphaned_proc()
        proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert proc.tdv.get(proc.pid) == proc.current

    def test_stale_dependency_dropped_by_rollback(self):
        # After rolling back, the dependency on the orphaned (0,7)_2 is gone.
        proc = self._orphaned_proc()
        proc.on_failure_announcement(make_announcement(2, 0, 3))
        dep = proc.tdv.get(2)
        assert dep is None or dep.sii <= 3
