"""Baseline conformance: the Section-2 completely asynchronous protocol and
its multi-incarnation dependency vector."""

import pytest

from repro.app.behavior import AppBehavior
from repro.core.baselines.fully_async import FullyAsyncProcess, MultiIncarnationVector
from repro.core.effects import (
    BroadcastAnnouncement,
    MessageDelivered,
    ReleaseMessage,
    RollbackPerformed,
)
from repro.core.entry import Entry
from helpers import deliver_env, effects_of, make_announcement, make_msg


class Forwarder(AppBehavior):
    def initial_state(self, pid, n):
        return {"count": 0}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {})
        return state


def fa(pid=0, n=6):
    proc = FullyAsyncProcess(pid, n, behavior=Forwarder())
    proc.initialize()
    return proc


class TestMultiIncarnationVector:
    def test_tracks_each_incarnation_separately(self):
        v = MultiIncarnationVector(6)
        v.set(1, Entry(0, 4))
        v.set(1, Entry(1, 5))
        assert v.entries_for(1) == [Entry(0, 4), Entry(1, 5)]
        assert v.non_null_count() == 2

    def test_same_incarnation_keeps_max(self):
        v = MultiIncarnationVector(6)
        v.set(1, Entry(0, 4))
        v.set(1, Entry(0, 2))
        assert v.entries_for(1) == [Entry(0, 4)]

    def test_get_returns_lexicographic_max(self):
        v = MultiIncarnationVector(6)
        v.set(1, Entry(0, 9))
        v.set(1, Entry(1, 2))
        assert v.get(1) == Entry(1, 2)
        assert v.get(2) is None

    def test_merge(self):
        a = MultiIncarnationVector(4)
        a.set(0, Entry(0, 3))
        b = MultiIncarnationVector(4)
        b.set(0, Entry(0, 5))
        b.set(0, Entry(1, 1))
        a.merge(b)
        assert a.entries_for(0) == [Entry(0, 5), Entry(1, 1)]

    def test_nullify_drops_all_incarnations(self):
        v = MultiIncarnationVector(4)
        v.set(0, Entry(0, 3))
        v.set(0, Entry(1, 4))
        v.nullify(0)
        assert v.non_null_count() == 0

    def test_nullify_entry_drops_one_incarnation(self):
        v = MultiIncarnationVector(4)
        v.set(0, Entry(0, 3))
        v.set(0, Entry(1, 4))
        v.nullify_entry(0, Entry(0, 3))
        assert v.entries_for(0) == [Entry(1, 4)]

    def test_copy_independent(self):
        a = MultiIncarnationVector(4)
        a.set(0, Entry(0, 3))
        b = a.copy()
        b.set(1, Entry(0, 1))
        assert a.non_null_count() == 1
        assert b.non_null_count() == 2

    def test_can_exceed_n_entries(self):
        # The scalability problem the paper's Section 2 calls out.
        v = MultiIncarnationVector(2)
        for inc in range(5):
            v.set(0, Entry(inc, inc + 1))
        assert v.non_null_count() == 5

    def test_items_sorted(self):
        v = MultiIncarnationVector(4)
        v.set(2, Entry(1, 1))
        v.set(0, Entry(0, 2))
        assert list(v.items()) == [(0, Entry(0, 2)), (2, Entry(1, 1))]

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(MultiIncarnationVector(2))


class TestFullyAsyncProtocol:
    def test_delivers_immediately_across_incarnations(self):
        # No coupling: both incarnations of P1 may be depended on at once.
        proc = fa(pid=4)
        proc.on_receive(make_msg(3, 4, n=6, entries={1: Entry(0, 4)}))
        effects = proc.on_receive(make_msg(2, 4, n=6, entries={1: Entry(1, 5)}))
        assert effects_of(effects, MessageDelivered)
        assert proc.tdv.entries_for(1) == [Entry(0, 4), Entry(1, 5)]

    def test_messages_released_immediately(self):
        proc = fa()
        effects = deliver_env(proc, {"to": 1})
        assert effects_of(effects, ReleaseMessage)
        assert not proc.send_buffer

    def test_rollback_broadcasts(self):
        proc = fa(pid=0)
        proc.on_receive(make_msg(2, 0, n=6, entries={2: Entry(0, 7)}))
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert effects_of(effects, RollbackPerformed)
        own = [e for e in effects_of(effects, BroadcastAnnouncement)
               if e.announcement.origin == 0]
        assert len(own) == 1

    def test_any_invalidated_incarnation_triggers_rollback(self):
        # The lex-max entry (1,2) survives the announcement, but the older
        # (0,7) entry is invalidated: the process must still roll back.
        proc = fa(pid=0)
        proc.on_receive(make_msg(2, 0, n=6, entries={2: Entry(0, 7)}))
        proc.on_receive(make_msg(3, 0, n=6, entries={2: Entry(1, 2)}))
        assert proc.tdv.entries_for(2) == [Entry(0, 7), Entry(1, 2)]
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert effects_of(effects, RollbackPerformed)

    def test_orphan_messages_detected(self):
        proc = fa(pid=0)
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        from repro.core.effects import MessageDiscarded
        effects = proc.on_receive(make_msg(2, 0, n=6, entries={1: Entry(0, 5)}))
        assert effects_of(effects, MessageDiscarded)

    def test_crash_replay_reconstructs_multi_inc_vector(self):
        proc = fa(pid=0)
        proc.on_receive(make_msg(3, 0, n=6, entries={1: Entry(0, 4)}))
        proc.on_receive(make_msg(2, 0, n=6, entries={1: Entry(1, 5)}))
        entries_before = proc.tdv.entries_for(1)
        proc.flush()
        proc.crash()
        proc.restart()
        assert proc.tdv.entries_for(1) == entries_before
