"""Protocol conformance: Receive_message, Deliver_message,
Check_deliverability (Figure 2)."""

import pytest

from repro.core.effects import DuplicateDropped, MessageDelivered, MessageDiscarded
from repro.core.entry import Entry
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class TestInitialize:
    def test_corollary_3_no_dependency_entries(self):
        proc = make_proc()
        assert proc.tdv.non_null_count() == 0

    def test_first_interval_is_0_1(self):
        proc = make_proc()
        assert proc.current == Entry(0, 1)

    def test_initial_checkpoint_written(self):
        proc = make_proc()
        assert proc.storage.checkpoints_taken == 1
        assert proc.storage.latest_checkpoint().entry == Entry(0, 1)

    def test_first_interval_recorded_stable(self):
        # "the first state interval is always stable".
        proc = make_proc()
        assert proc.log.covers(proc.pid, Entry(0, 1))

    def test_double_initialize_rejected(self):
        proc = make_proc()
        with pytest.raises(RuntimeError):
            proc.initialize()

    def test_use_before_initialize_rejected(self):
        from repro.app.behavior import EchoBehavior
        from repro.core.protocol import KOptimisticProcess

        proc = KOptimisticProcess(0, 4, 4, EchoBehavior())
        with pytest.raises(RuntimeError):
            proc.on_receive(make_msg(1, 0))

    def test_negative_k_rejected(self):
        from repro.app.behavior import EchoBehavior
        from repro.core.protocol import KOptimisticProcess

        with pytest.raises(ValueError):
            KOptimisticProcess(0, 4, -1, EchoBehavior())


class TestDeliverMessage:
    def test_delivery_starts_next_interval(self):
        proc = make_proc()
        deliver_env(proc)
        assert proc.current == Entry(0, 2)

    def test_own_entry_tracks_current(self):
        proc = make_proc()
        deliver_env(proc)
        assert proc.tdv.get(proc.pid) == Entry(0, 2)

    def test_piggybacked_dependencies_merged(self):
        proc = make_proc(pid=0, n=4)
        msg = make_msg(1, 0, entries={1: Entry(0, 5), 2: Entry(1, 3)})
        proc.on_receive(msg)
        assert proc.tdv.get(1) == Entry(0, 5)
        assert proc.tdv.get(2) == Entry(1, 3)

    def test_merge_is_lexicographic_max(self):
        proc = make_proc(pid=0, n=4)
        proc.on_receive(make_msg(1, 0, entries={2: Entry(0, 9)}))
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 6), 2: Entry(0, 4)}))
        assert proc.tdv.get(2) == Entry(0, 9)

    def test_delivery_effect_emitted(self):
        proc = make_proc()
        effects = deliver_env(proc)
        delivered = effects_of(effects, MessageDelivered)
        assert len(delivered) == 1
        assert delivered[0].interval == Entry(0, 2)
        assert not delivered[0].replay

    def test_delivery_appends_to_volatile_buffer(self):
        proc = make_proc()
        deliver_env(proc)
        deliver_env(proc)
        assert len(proc.volatile) == 2

    def test_app_handler_runs(self):
        proc = make_proc()
        deliver_env(proc, payload={"x": 1})
        assert proc.app_state["delivered"] == 1
        assert proc.app_state["log"] == [{"x": 1}]

    def test_duplicate_dropped(self):
        proc = make_proc()
        msg = make_msg(1, 0, entries={1: Entry(0, 2)})
        proc.on_receive(msg)
        effects = proc.on_receive(msg)
        assert effects_of(effects, DuplicateDropped)
        assert proc.stats.duplicates_dropped == 1
        assert proc.stats.deliveries == 1


class TestCheckDeliverability:
    """Delay only when two incarnations of the same process conflict and the
    smaller one is not known stable."""

    def test_no_conflict_delivers_immediately(self):
        proc = make_proc(pid=0, n=4)
        effects = proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 5)}))
        assert effects_of(effects, MessageDelivered)

    def test_corollary_1_no_local_entry_means_no_delay(self):
        # The P5/m7 case: a dependency on a *newer* incarnation of P1 is
        # adopted without waiting because there is nothing to overwrite.
        proc = make_proc(pid=5, n=6)
        m7 = make_msg(1, 5, n=6, entries={1: Entry(1, 5)})
        effects = proc.on_receive(m7)
        assert effects_of(effects, MessageDelivered)
        assert proc.tdv.get(1) == Entry(1, 5)

    def test_conflicting_incarnations_delay(self):
        # The P4/m6 case: local (0,4)_1 vs incoming (1,5)_1, with (0,4)_1
        # not yet known stable: hold the message.
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={1: Entry(0, 4)}))
        m6 = make_msg(2, 4, n=6, entries={1: Entry(1, 5)})
        effects = proc.on_receive(m6)
        assert not effects_of(effects, MessageDelivered)
        assert len(proc.receive_buffer) == 1

    def test_held_message_released_by_failure_announcement(self):
        # r1 doubles as a logging progress notification for (0,4)_1
        # (Corollary 1), which unblocks m6.
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={1: Entry(0, 4)}))
        proc.on_receive(make_msg(2, 4, n=6, entries={1: Entry(1, 5)}))
        effects = proc.on_failure_announcement(make_announcement(1, 0, 4))
        assert effects_of(effects, MessageDelivered)
        assert proc.tdv.get(1) == Entry(1, 5)  # lexicographic max applied
        assert not proc.receive_buffer

    def test_held_message_released_by_log_notification(self):
        from repro.net.message import LogProgressNotification

        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={1: Entry(0, 4)}))
        proc.on_receive(make_msg(2, 4, n=6, entries={1: Entry(1, 5)}))
        table = [{} for _ in range(6)]
        table[1] = {0: 4}  # incarnation 0 of P1 stable through 4
        effects = proc.on_log_notification(LogProgressNotification(1, table))
        assert effects_of(effects, MessageDelivered)

    def test_smaller_incoming_incarnation_also_gated(self):
        # Local (1,5)_1, incoming (0,9)_1: the *incoming* entry is smaller
        # and must be known stable before delivery.
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={1: Entry(1, 5)}))
        late = make_msg(2, 4, n=6, entries={1: Entry(0, 9)})
        effects = proc.on_receive(late)
        assert not effects_of(effects, MessageDelivered)

    def test_same_incarnation_never_delays(self):
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={1: Entry(0, 4)}))
        effects = proc.on_receive(make_msg(2, 4, n=6, entries={1: Entry(0, 9)}))
        assert effects_of(effects, MessageDelivered)
        assert proc.tdv.get(1) == Entry(0, 9)

    def test_deliver_loop_cascades(self):
        # Delivering one message can unblock another held one.
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={1: Entry(0, 4)}))
        held = proc.on_receive(make_msg(2, 4, n=6, entries={1: Entry(1, 5)}))
        assert not effects_of(held, MessageDelivered)
        # Announcement unblocks; both the announcement handler's delivery
        # loop and subsequent receives keep draining the buffer.
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        effects = proc.on_receive(make_msg(2, 4, n=6, entries={1: Entry(1, 6)}))
        assert effects_of(effects, MessageDelivered)
        assert not proc.receive_buffer
