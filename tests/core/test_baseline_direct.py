"""Baseline conformance: direct dependency tracking (Section 5)."""

import pytest

from repro.app.behavior import AppBehavior
from repro.core.baselines.direct import DirectDependencyProcess
from repro.core.effects import (
    BroadcastAnnouncement,
    MessageDiscarded,
    ReleaseMessage,
    RollbackPerformed,
)
from repro.core.entry import Entry
from helpers import deliver_env, effects_of, make_announcement, make_msg


class Forwarder(AppBehavior):
    def initial_state(self, pid, n):
        return {"count": 0}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {})
        if isinstance(payload, dict) and payload.get("output"):
            ctx.output(payload["output"])
        return state


def direct(pid=0, n=4):
    proc = DirectDependencyProcess(pid, n, behavior=Forwarder())
    proc.initialize()
    return proc


class TestDirectTracking:
    def test_piggyback_is_exactly_one_entry(self):
        proc = direct()
        # Accumulate transitive context first...
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 3), 2: Entry(0, 5)}))
        # ...the outgoing message still carries only the sender's interval.
        effects = proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 6)},
                                           payload={"to": 1}))
        msg = effects_of(effects, ReleaseMessage)[0].message
        assert msg.piggyback_size() == 1
        assert msg.tdv.get(0) == msg.send_interval

    def test_local_state_tracks_only_direct_dependencies(self):
        proc = direct()
        # A message from P1 carrying (transitively) P2's entry would never
        # exist under direct tracking; senders piggyback only themselves.
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 3)}))
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 5)}))
        assert proc.tdv.get(1) == Entry(0, 3)
        assert proc.tdv.get(2) == Entry(0, 5)
        assert proc.tdv.get(3) is None

    def test_direct_orphan_detected(self):
        proc = direct()
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 5)}))
        effects = proc.on_failure_announcement(make_announcement(1, 0, 4))
        assert effects_of(effects, RollbackPerformed)

    def test_rollback_announces_for_the_cascade(self):
        proc = direct()
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 5)}))
        effects = proc.on_failure_announcement(make_announcement(1, 0, 4))
        own = [e for e in effects_of(effects, BroadcastAnnouncement)
               if e.announcement.origin == 0]
        assert len(own) == 1

    def test_transitive_orphan_found_via_cascade(self):
        # P0 <- P2 <- P1(fails).  P0 never saw a P1 entry; it learns of its
        # orphanhood only from P2's cascaded announcement.
        p0 = direct(pid=0)
        p2 = direct(pid=2)
        p2.on_receive(make_msg(1, 2, entries={1: Entry(0, 5)}))
        effects = p2.on_receive(make_msg(-1 + 4, 2))  # filler from P3
        fwd = p2.on_receive(make_msg(3, 2, entries={3: Entry(0, 2)},
                                     payload={"to": 0}))
        msg_to_p0 = effects_of(fwd, ReleaseMessage)[0].message
        p0.on_receive(msg_to_p0)
        assert p0.tdv.get(1) is None  # no transitive knowledge of P1

        # P1's failure: P0 is unaffected directly...
        ann = make_announcement(1, 0, 4)
        assert not effects_of(p0.on_failure_announcement(ann),
                              RollbackPerformed)
        # ...P2 rolls back and announces; that announcement reaches P0.
        cascade = effects_of(p2.on_failure_announcement(ann),
                             BroadcastAnnouncement)
        own = [e.announcement for e in cascade if e.announcement.origin == 2]
        assert own
        effects = p0.on_failure_announcement(own[0])
        assert effects_of(effects, RollbackPerformed)

    def test_outputs_rejected(self):
        proc = direct()
        with pytest.raises(NotImplementedError):
            deliver_env(proc, {"output": "X"})

    def test_messages_never_held(self):
        proc = direct()
        deliver_env(proc, {"to": 1})
        assert not proc.send_buffer
        assert proc.stats.send_hold_time_total == 0.0
