"""Edge cases: interleaved failures, stale announcements, re-crashes.

These drive protocol instances directly (sans-IO) through adversarial
orderings that the randomized simulations reach only by luck.
"""

from repro.app.behavior import AppBehavior
from repro.core.effects import (
    BroadcastAnnouncement,
    MessageDelivered,
    MessageDiscarded,
    ReleaseMessage,
    RollbackPerformed,
)
from repro.core.entry import Entry
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class Forwarder(AppBehavior):
    def initial_state(self, pid, n):
        return {"count": 0}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {})
        return state


class TestInterleavedFailures:
    def test_two_announcements_back_to_back(self):
        # State depends on two processes; both fail; both dependencies are
        # handled — one rollback per announcement at most, final state clean.
        proc = make_proc(pid=0, n=4, behavior=Forwarder())
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 5)}))
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        effects1 = proc.on_failure_announcement(make_announcement(1, 0, 4))
        assert effects_of(effects1, RollbackPerformed)
        effects2 = proc.on_failure_announcement(make_announcement(2, 0, 6))
        # After the first rollback the P2 dependency may or may not have
        # survived the replay; either way the handler is clean and the
        # final state depends on nothing invalidated.
        for pid, entry in proc.tdv.items():
            assert not proc.iet.invalidates(pid, entry)

    def test_rollback_then_crash_then_second_announcement(self):
        # The nasty ordering: rollback (no broadcast), crash (volatile state
        # gone), restart, and only then a second announcement arrives that
        # would have mattered pre-crash.  Everything must be reconstructed
        # from the synchronously logged announcement + incarnation marker.
        proc = make_proc(pid=0, n=4, behavior=Forwarder())
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 5)}))
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        inc_after_rollback = proc.current.inc
        proc.crash()
        proc.restart()
        assert proc.current.inc > inc_after_rollback
        # The old announcement is still effective after the crash.
        assert proc.iet.invalidates(1, Entry(0, 5))
        effects = proc.on_receive(make_msg(2, 0, entries={1: Entry(0, 5)}))
        assert effects_of(effects, MessageDiscarded)

    def test_stale_announcement_after_newer_incarnations(self):
        # An announcement for an old incarnation arrives late; dependencies
        # on newer incarnations are unaffected.
        proc = make_proc(pid=0, n=4, behavior=Forwarder())
        proc.on_receive(make_msg(1, 0, entries={1: Entry(2, 9)}))
        effects = proc.on_failure_announcement(make_announcement(1, 0, 4))
        assert not effects_of(effects, RollbackPerformed)
        assert proc.tdv.get(1) == Entry(2, 9) or proc.tdv.get(1) is None

    def test_simultaneous_failures_of_both_dependencies(self):
        # Announcements from two failed processes arrive in both orders on
        # two replicas of the same state; both converge to non-orphan state.
        def build():
            proc = make_proc(pid=0, n=4, behavior=Forwarder())
            proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 5)},
                                     payload={}))
            proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                     payload={}))
            return proc

        ann1 = make_announcement(1, 0, 4)
        ann2 = make_announcement(2, 0, 6)
        a = build()
        a.on_failure_announcement(ann1)
        a.on_failure_announcement(ann2)
        b = build()
        b.on_failure_announcement(ann2)
        b.on_failure_announcement(ann1)
        for proc in (a, b):
            for pid, entry in proc.tdv.items():
                assert not proc.iet.invalidates(pid, entry)
            assert proc.iet.lookup(1, 0) == 4
            assert proc.iet.lookup(2, 0) == 6

    def test_repeated_crash_restart_cycles(self):
        proc = make_proc(behavior=Forwarder())
        for round_number in range(5):
            deliver_env(proc)
            if round_number % 2 == 0:
                proc.flush()
            proc.crash()
            effects = proc.restart()
            anns = effects_of(effects, BroadcastAnnouncement)
            assert len(anns) == 1
        # Incarnations strictly increase; each announcement names a
        # distinct incarnation.
        incs = [a.end.inc for a in
                (ann for ann in proc.storage.announcements
                 if ann.origin == proc.pid)]
        assert incs == sorted(set(incs))
        assert proc.current.inc == 5

    def test_announcement_for_my_own_old_incarnation(self):
        # After my restart, my own announcement comes back to me (e.g. via
        # a broadcast echo); it must be idempotent.
        proc = make_proc(behavior=Forwarder())
        deliver_env(proc)
        proc.crash()
        effects = proc.restart()
        my_ann = effects_of(effects, BroadcastAnnouncement)[0].announcement
        before = proc.current
        result = proc.on_failure_announcement(my_ann)
        assert not effects_of(result, RollbackPerformed)
        assert proc.current == before


class TestMessagesAcrossIncarnations:
    def test_old_incarnation_message_arrives_after_restart(self):
        # A message sent from a later-lost interval of P1 reaches us after
        # P1's announcement: discarded, even though a message from P1's new
        # incarnation was already delivered.
        proc = make_proc(pid=0, n=4, behavior=Forwarder())
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        fresh = proc.on_receive(make_msg(1, 0, entries={1: Entry(1, 6)}))
        assert effects_of(fresh, MessageDelivered)
        stale = proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 6)}))
        assert effects_of(stale, MessageDiscarded)

    def test_mixed_incarnation_chain_via_third_party(self):
        # P2 relays P1 state from both sides of P1's failure; the receiver
        # ends with the lexicographic max of the surviving entries.
        proc = make_proc(pid=0, n=4, behavior=Forwarder())
        proc.on_receive(make_msg(2, 0, entries={1: Entry(0, 3),
                                                2: Entry(0, 2)}))
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        proc.on_receive(make_msg(2, 0, entries={1: Entry(1, 6),
                                                2: Entry(0, 4)}))
        assert proc.tdv.get(1) == Entry(1, 6)

    def test_release_order_respects_per_message_limits_under_churn(self):
        # Messages with different k_limits queued across a rollback: the
        # surviving ones release exactly when their own limit allows.
        class TwoSends(AppBehavior):
            def initial_state(self, pid, n):
                return {}

            def on_message(self, state, payload, ctx):
                ctx.send(1, {"cls": "strict"}, k=0)
                ctx.send(1, {"cls": "loose"}, k=4)
                return state

        proc = make_proc(pid=0, n=4, k=0, behavior=TwoSends())
        effects = proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        released = [e.message.payload["cls"]
                    for e in effects_of(effects, ReleaseMessage)]
        assert released == ["loose"]
        # The strict one is orphaned along with our state when P2 fails.
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert not any(m.payload["cls"] == "strict" for m in
                       (e.message for e in effects_of(effects, ReleaseMessage)))
        assert not proc.send_buffer
