"""Unit tests for the variable-size dependency vector."""

import pytest

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry


class TestConstruction:
    def test_starts_empty(self):
        v = DependencyVector(4)
        assert v.non_null_count() == 0
        assert all(v.get(i) is None for i in range(4))

    def test_initial_entries(self):
        v = DependencyVector(4, {0: Entry(1, 3), 2: Entry(0, 5)})
        assert v.get(0) == Entry(1, 3)
        assert v.get(2) == Entry(0, 5)
        assert v.non_null_count() == 2

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            DependencyVector(0)

    def test_pid_bounds_checked(self):
        v = DependencyVector(3)
        with pytest.raises(IndexError):
            v.get(3)
        with pytest.raises(IndexError):
            v.set(-1, Entry(0, 1))


class TestSetNullify:
    def test_set_and_get(self):
        v = DependencyVector(4)
        v.set(1, Entry(0, 7))
        assert v.get(1) == Entry(0, 7)

    def test_set_none_clears(self):
        v = DependencyVector(4, {1: Entry(0, 7)})
        v.set(1, None)
        assert v.get(1) is None

    def test_nullify(self):
        v = DependencyVector(4, {1: Entry(0, 7)})
        v.nullify(1)
        assert v.non_null_count() == 0

    def test_nullify_absent_is_noop(self):
        v = DependencyVector(4)
        v.nullify(2)
        assert v.non_null_count() == 0

    def test_nullify_entry_matches_single_entry_semantics(self):
        v = DependencyVector(4, {1: Entry(0, 7)})
        v.nullify_entry(1, Entry(0, 7))
        assert v.get(1) is None


class TestMerge:
    def test_merge_takes_lexicographic_max(self):
        a = DependencyVector(4, {0: Entry(0, 4), 1: Entry(1, 2)})
        b = DependencyVector(4, {0: Entry(1, 1), 1: Entry(1, 1), 2: Entry(0, 9)})
        a.merge(b)
        assert a.get(0) == Entry(1, 1)   # higher incarnation wins
        assert a.get(1) == Entry(1, 2)   # local entry was larger
        assert a.get(2) == Entry(0, 9)   # adopted from the message

    def test_merge_with_empty_is_identity(self):
        a = DependencyVector(4, {0: Entry(0, 4)})
        a.merge(DependencyVector(4))
        assert a.as_dict() == {0: Entry(0, 4)}

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DependencyVector(4).merge(DependencyVector(5))

    def test_paper_deliver_example(self):
        # Figure 1: P4 at {(1,3)_0,(0,4)_1,(2,6)_3,(0,2)_4} merging m6's
        # {(1,5)_1,(0,3)_2} yields the (1,5) entry for P1 by lex max.
        p4 = DependencyVector(6, {0: Entry(1, 3), 1: Entry(0, 4),
                                  3: Entry(2, 6), 4: Entry(0, 2)})
        m6 = DependencyVector(6, {1: Entry(1, 5), 2: Entry(0, 3)})
        p4.merge(m6)
        assert p4.get(1) == Entry(1, 5)
        assert p4.get(2) == Entry(0, 3)
        assert p4.non_null_count() == 5


class TestCopy:
    def test_copy_is_independent(self):
        a = DependencyVector(4, {0: Entry(0, 4)})
        b = a.copy()
        b.set(1, Entry(0, 1))
        a.nullify(0)
        assert a.non_null_count() == 0
        assert b.as_dict() == {0: Entry(0, 4), 1: Entry(0, 1)}

    def test_equality(self):
        a = DependencyVector(4, {0: Entry(0, 4)})
        b = DependencyVector(4, {0: Entry(0, 4)})
        assert a == b
        b.set(1, Entry(0, 1))
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DependencyVector(2))


class TestIteration:
    def test_items_sorted_by_pid(self):
        v = DependencyVector(5, {3: Entry(0, 1), 1: Entry(0, 2)})
        assert list(v.items()) == [(1, Entry(0, 2)), (3, Entry(0, 1))]

    def test_processes(self):
        v = DependencyVector(5, {3: Entry(0, 1), 1: Entry(0, 2)})
        assert list(v.processes()) == [1, 3]

    def test_len(self):
        v = DependencyVector(5, {3: Entry(0, 1)})
        assert len(v) == 1

    def test_repr_uses_paper_notation(self):
        v = DependencyVector(5, {3: Entry(2, 6)})
        assert repr(v) == "{(2,6)_3}"
