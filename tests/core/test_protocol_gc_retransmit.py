"""Tests for garbage collection (Theorem-3-based reclamation) and
sender-side retransmission (footnote 3)."""

from repro.app.behavior import AppBehavior
from repro.core.effects import (
    DuplicateDropped,
    MessageDelivered,
    ReleaseMessage,
    RestartPerformed,
)
from repro.core.entry import Entry
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class Forwarder(AppBehavior):
    def initial_state(self, pid, n):
        return {"count": 0}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {"n": state["count"]})
        return state


class TestGarbageCollection:
    def test_fully_stable_checkpoint_reclaims_history(self):
        proc = make_proc(behavior=Forwarder())
        for _ in range(3):
            deliver_env(proc)
        proc.checkpoint()
        # The new checkpoint's vector is empty (only own entry, stable):
        # the initial checkpoint and the logged prefix are reclaimed.
        assert len(proc.storage.checkpoints) == 1
        assert proc.storage.log_size == 0
        assert proc.storage.gc_reclaimed >= 4  # initial ckpt + 3 records

    def test_unstable_dependency_blocks_gc(self):
        proc = make_proc(pid=0, n=4, behavior=Forwarder())
        deliver_env(proc)
        proc.checkpoint()  # reclaims down to this checkpoint
        assert len(proc.storage.checkpoints) == 1
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        proc.checkpoint()  # depends on non-stable (0,7)_2: cannot be the bar
        # The older (fully stable) checkpoint remains the reclamation bar.
        assert len(proc.storage.checkpoints) == 2

    def test_gc_unblocked_by_log_notification(self):
        from repro.net.message import LogProgressNotification

        proc = make_proc(pid=0, n=4, behavior=Forwarder())
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        proc.checkpoint()
        assert len(proc.storage.checkpoints) == 2
        table = [{} for _ in range(4)]
        table[2] = {0: 7}
        proc.on_log_notification(LogProgressNotification(2, table))
        proc.checkpoint()
        assert len(proc.storage.checkpoints) == 1

    def test_recovery_still_works_after_gc(self):
        proc = make_proc(behavior=Forwarder())
        for _ in range(3):
            deliver_env(proc)
        proc.checkpoint()
        deliver_env(proc)   # volatile
        state = dict(proc.app_state)
        proc.flush()
        proc.crash()
        effects = proc.restart()
        assert proc.app_state == state
        replays = [e for e in effects_of(effects, MessageDelivered) if e.replay]
        assert len(replays) == 1  # replay starts at the GC-surviving ckpt

    def test_rollback_still_works_after_gc(self):
        proc = make_proc(pid=0, n=4, behavior=Forwarder())
        deliver_env(proc)
        proc.checkpoint()   # GC: single fully-stable checkpoint remains
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        from repro.core.effects import RollbackPerformed
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        rb = effects_of(effects, RollbackPerformed)
        assert rb and rb[0].restored_to == Entry(0, 2)

    def test_gc_disabled(self):
        proc = make_proc(behavior=Forwarder(), gc_on_checkpoint=False)
        deliver_env(proc)
        proc.checkpoint()
        assert len(proc.storage.checkpoints) == 2
        assert proc.storage.gc_reclaimed == 0


class TestRetransmission:
    def _sender_receiver(self, window=8):
        sender = make_proc(pid=0, n=4, k=4, behavior=Forwarder(),
                           retransmit_window=window)
        receiver = make_proc(pid=1, n=4, k=4, behavior=Forwarder())
        return sender, receiver

    def test_sent_log_retains_window(self):
        sender, _ = self._sender_receiver(window=2)
        for _ in range(5):
            deliver_env(sender, {"to": 1})
        assert len(sender._sent_log[1]) == 2

    def test_retransmit_on_restart_announcement(self):
        sender, receiver = self._sender_receiver()
        effects = deliver_env(sender, {"to": 1})
        msg = effects_of(effects, ReleaseMessage)[0].message
        # The message is lost: the receiver crashes before it arrives.
        receiver.crash()
        restart = receiver.restart()
        ann = [e.announcement for e in restart
               if hasattr(e, "announcement")][0]
        effects = sender.on_failure_announcement(ann)
        resent = effects_of(effects, ReleaseMessage)
        assert [e.message.msg_id for e in resent] == [msg.msg_id]
        assert sender.stats.retransmissions == 1
        # Delivery at the restarted receiver now succeeds.
        delivered = receiver.on_receive(resent[0].message)
        assert effects_of(delivered, MessageDelivered)

    def test_duplicate_retransmission_dropped(self):
        sender, receiver = self._sender_receiver()
        effects = deliver_env(sender, {"to": 1})
        msg = effects_of(effects, ReleaseMessage)[0].message
        receiver.on_receive(msg)  # delivered the first time
        receiver.flush()          # ...and logged: survives the crash
        receiver.crash()
        restart_effects = receiver.restart()
        ann = [e.announcement for e in restart_effects
               if hasattr(e, "announcement")][0]
        resent = effects_of(sender.on_failure_announcement(ann), ReleaseMessage)
        effects = receiver.on_receive(resent[0].message)
        assert effects_of(effects, DuplicateDropped)

    def test_orphan_copies_pruned(self):
        # A buffered copy that became an orphan is not retransmitted.
        sender = make_proc(pid=0, n=4, k=4, behavior=Forwarder(),
                           retransmit_window=8)
        sender.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                   payload={"to": 1}))
        assert len(sender._sent_log[1]) == 1
        # P2's failure orphans the sent message AND rolls the sender back.
        sender.on_failure_announcement(make_announcement(2, 0, 3))
        # A later restart announcement from P1 retransmits nothing stale.
        effects = sender.on_failure_announcement(make_announcement(1, 0, 1))
        resent = effects_of(effects, ReleaseMessage)
        assert all(not sender._is_orphan_message(m.message) for m in resent)

    def test_disabled_by_default(self):
        sender = make_proc(pid=0, n=4, k=4, behavior=Forwarder())
        deliver_env(sender, {"to": 1})
        assert sender._sent_log == {}
        effects = sender.on_failure_announcement(make_announcement(1, 0, 1))
        assert not effects_of(effects, ReleaseMessage)

    def test_harness_end_to_end_recovers_lost_messages(self):
        # Pipeline: messages lost in transit to the down stage come from
        # upstream and are causally independent of its lost state, so
        # retransmission recovers them and strictly more items complete.
        from repro.failures.injector import FailureSchedule
        from repro.runtime.config import SimConfig
        from repro.runtime.harness import SimulationHarness
        from repro.workloads.pipeline import PipelineWorkload

        def run(window):
            config = SimConfig(n=4, k=None, seed=13, restart_delay=50.0,
                               retransmit_window=window, trace_enabled=False)
            workload = PipelineWorkload(rate=1.0)
            harness = SimulationHarness(
                config, workload.behavior(),
                failures=FailureSchedule.single(150.0, 2))
            workload.install(harness, until=250.0)
            harness.run(350.0)
            return harness.metrics()

        without = run(0)
        with_retransmit = run(64)
        assert without.app_messages_lost > 0
        assert with_retransmit.retransmissions > 0
        assert with_retransmit.violations == []
        # Strictly more pipeline items reach the final stage.
        assert (with_retransmit.outputs_committed
                > without.outputs_committed)
