"""Protocol conformance: Send_message / Check_send_buffer and the K bound
(Figure 2, Theorem 4's mechanism)."""

from repro.app.behavior import AppBehavior
from repro.core.effects import ReleaseMessage
from repro.core.entry import Entry
from repro.net.message import LogProgressNotification
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class ForwardingBehavior(AppBehavior):
    """Sends one message to the payload's 'to' process on each delivery."""

    def initial_state(self, pid, n):
        return {}

    def on_message(self, state, payload, ctx):
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], payload.get("inner", {}))
        return state


def notification(n, pid, inc, sii):
    table = [{} for _ in range(n)]
    table[pid] = {inc: sii}
    return LogProgressNotification(pid, table)


class TestSendBuffering:
    def test_send_enters_buffer(self):
        proc = make_proc(k=0, behavior=ForwardingBehavior())
        effects = deliver_env(proc, payload={"to": 1})
        # K=0 and the own-interval entry is non-NULL: the message is held.
        assert not effects_of(effects, ReleaseMessage)
        assert len(proc.send_buffer) == 1
        assert proc.stats.messages_enqueued == 1

    def test_large_k_releases_immediately(self):
        proc = make_proc(k=4, behavior=ForwardingBehavior())
        effects = deliver_env(proc, payload={"to": 1})
        released = effects_of(effects, ReleaseMessage)
        assert len(released) == 1
        assert proc.stats.messages_released == 1

    def test_released_message_carries_dependency_vector(self):
        proc = make_proc(pid=0, k=4, behavior=ForwardingBehavior())
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7), 3: Entry(1, 2)},
                                 payload={"to": 1}))
        msg = effects_of(proc._check_send_buffer() or [], ReleaseMessage)
        # Already released during delivery; inspect the network-bound copy.
        # Re-derive: the send interval is (0,2) and the vector holds the
        # merged dependencies plus the sender's own entry.
        sent = proc.stats.messages_released
        assert sent == 1

    def test_message_vector_snapshot_includes_own_interval(self):
        proc = make_proc(pid=0, k=4, behavior=ForwardingBehavior())
        effects = deliver_env(proc, payload={"to": 1})
        msg = effects_of(effects, ReleaseMessage)[0].message
        assert msg.tdv.get(0) == Entry(0, 2)
        assert msg.send_interval == Entry(0, 2)

    def test_k_counts_non_null_entries(self):
        # Message depends on three processes; K=2 holds it, K=3 releases.
        for k, expect_release in ((2, False), (3, True)):
            proc = make_proc(pid=0, n=4, k=k, behavior=ForwardingBehavior())
            effects = proc.on_receive(
                make_msg(2, 0, entries={2: Entry(0, 7), 3: Entry(1, 2)},
                         payload={"to": 1}))
            assert bool(effects_of(effects, ReleaseMessage)) is expect_release


class TestCheckSendBufferNullification:
    def test_log_notification_nullifies_and_releases(self):
        proc = make_proc(pid=0, n=4, k=1, behavior=ForwardingBehavior())
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                 payload={"to": 1}))
        # Held: entries for P2 (0,7) and own (0,2) -> 2 > K=1.
        assert len(proc.send_buffer) == 1
        effects = proc.on_log_notification(notification(4, 2, 0, 7))
        released = effects_of(effects, ReleaseMessage)
        assert len(released) == 1
        assert released[0].message.tdv.get(2) is None  # nullified in place

    def test_failure_announcement_is_stability_info_for_send_buffer(self):
        # Corollary 1: the announcement (t,x') marks (t,x') stable and can
        # release held messages.
        proc = make_proc(pid=0, n=4, k=1, behavior=ForwardingBehavior())
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                 payload={"to": 1}))
        effects = proc.on_failure_announcement(make_announcement(2, 0, 7))
        assert effects_of(effects, ReleaseMessage)

    def test_own_checkpoint_releases_corollary_2(self):
        proc = make_proc(pid=0, n=4, k=0, behavior=ForwardingBehavior())
        deliver_env(proc, payload={"to": 1})
        assert len(proc.send_buffer) == 1  # own entry non-NULL
        effects = proc.checkpoint()
        assert effects_of(effects, ReleaseMessage)
        assert not proc.send_buffer

    def test_own_flush_releases_when_enabled(self):
        proc = make_proc(pid=0, n=4, k=0, behavior=ForwardingBehavior())
        deliver_env(proc, payload={"to": 1})
        effects = proc.flush()
        assert effects_of(effects, ReleaseMessage)

    def test_flush_does_not_release_when_strict(self):
        proc = make_proc(pid=0, n=4, k=0, behavior=ForwardingBehavior(),
                         nullify_own_on_flush=False)
        deliver_env(proc, payload={"to": 1})
        effects = proc.flush()
        assert not effects_of(effects, ReleaseMessage)
        # Only a checkpoint (Corollary 2) drops the own entry.
        effects = proc.checkpoint()
        assert effects_of(effects, ReleaseMessage)

    def test_partial_stability_not_enough(self):
        proc = make_proc(pid=0, n=5, k=1, behavior=ForwardingBehavior())
        proc.on_receive(make_msg(2, 0,
                                 n=5,
                                 entries={2: Entry(0, 7), 3: Entry(0, 4)},
                                 payload={"to": 1}))
        # Three non-NULL entries (P2, P3, own). One notification is not
        # enough for K=1...
        effects = proc.on_log_notification(notification(5, 2, 0, 7))
        assert not effects_of(effects, ReleaseMessage)
        # ...nullifying the second external entry still leaves own + none:
        # 1 <= K, so it releases.
        effects = proc.on_log_notification(notification(5, 3, 0, 4))
        assert effects_of(effects, ReleaseMessage)

    def test_hold_time_recorded(self):
        clock = {"now": 0.0}
        proc = make_proc(pid=0, n=4, k=0, behavior=ForwardingBehavior(),
                         now_fn=lambda: clock["now"])
        deliver_env(proc, payload={"to": 1})
        clock["now"] = 7.5
        proc.flush()
        assert proc.stats.messages_released == 1
        assert proc.stats.send_hold_time_total == 7.5


class TestDegenerateCases:
    def test_k0_released_messages_have_empty_vectors(self):
        # K=0 semantics: a released message can never be revoked.
        proc = make_proc(pid=0, n=4, k=0, behavior=ForwardingBehavior())
        deliver_env(proc, payload={"to": 1})
        effects = proc.checkpoint()
        for release in effects_of(effects, ReleaseMessage):
            assert release.message.tdv.non_null_count() == 0

    def test_kn_never_holds(self):
        proc = make_proc(pid=0, n=4, k=4, behavior=ForwardingBehavior())
        for _ in range(5):
            deliver_env(proc, payload={"to": 1})
        assert proc.stats.messages_released == 5
        assert not proc.send_buffer
