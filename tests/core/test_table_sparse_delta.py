"""Sparse table backend, delta changelog, and batched-merge regressions.

Three families:

- the int64 sum-overflow regression in ``_merge_columns`` change detection
  (offsetting changes across a batched merge wrapped the column sum and
  the version bump was silently skipped);
- the sparse dict-of-rows backend must be observationally equivalent to
  the dense columnar backend;
- changelog/delta encoding: ``delta_since`` carries exactly the changed
  entries, stale cursors demand a full snapshot, compaction bumps the
  epoch.
"""

import pytest

from repro.core import columnar
from repro.core.entry import Entry
from repro.core.tables import (
    EntrySetTable,
    IncarnationEndTable,
    LoggingProgressTable,
    SparseSnapshot,
    TableSnapshot,
)

np = columnar.NUMPY


@pytest.mark.skipif(np is None, reason="regression is in the numpy merge path")
def test_merge_change_detection_survives_int64_sum_wrap():
    """Four slots each growing by 2^62 add 2^64 to the column sum — which
    wraps to *zero* in int64.  The old sum-based change detection concluded
    nothing changed and skipped the version bump, so scan-skip caches kept
    serving stale results."""
    table = EntrySetTable(64)
    assert table._use_np and table._stride == 4
    cols = np.full(64 * 4, -1, dtype=np.int64)
    for pid in range(4):
        cols[pid * 4] = (1 << 62) - 1
    snap = TableSnapshot(64, 4, cols)
    before = int(table._cols.sum())
    table.merge_snapshot(snap)
    after = int(table._cols.sum())
    # Precondition: the sum really is unchanged mod 2**64 — the exact
    # blind spot of the old detector.
    assert before == after
    assert table.version == 1
    assert table.lookup(0, 0) == (1 << 62) - 1


@pytest.mark.skipif(np is None, reason="batch path is numpy-only")
def test_batched_merge_change_detection_survives_sum_wrap():
    table = EntrySetTable(64)
    cols_a = np.full(64 * 4, -1, dtype=np.int64)
    cols_b = np.full(64 * 4, -1, dtype=np.int64)
    for pid in range(2):
        cols_a[pid * 4] = (1 << 62) - 1
    for pid in range(2, 4):
        cols_b[pid * 4] = (1 << 62) - 1
    table.merge_snapshots([TableSnapshot(64, 4, cols_a),
                           TableSnapshot(64, 4, cols_b)])
    assert table.version >= 1
    assert table.lookup(3, 0) == (1 << 62) - 1


def _fill(table, ops):
    for pid, inc, sii in ops:
        table.insert(pid, Entry(inc, sii))


OPS = [(0, 0, 3), (1, 1, 7), (1, 0, 2), (5, 2, 4), (7, 0, 1), (1, 1, 5),
       (6, 3, 11), (0, 0, 9)]


def test_sparse_backend_matches_dense_logging_table():
    dense = LoggingProgressTable(8, sparse=False)
    sparse = LoggingProgressTable(8, sparse=True)
    _fill(dense, OPS)
    _fill(sparse, OPS)
    assert sparse.snapshot() == dense.snapshot()
    for pid in range(8):
        assert list(sparse.entries(pid)) == list(dense.entries(pid))
        assert sparse.row_size(pid) == dense.row_size(pid)
        for inc in range(5):
            assert sparse.lookup(pid, inc) == dense.lookup(pid, inc)
            for sii in (0, 1, 4, 9, 12):
                e = Entry(inc, sii)
                assert sparse.covers(pid, e) == dense.covers(pid, e)
                packed = columnar.pack(inc, sii)
                assert (sparse.covers_packed(pid, packed)
                        == dense.covers_packed(pid, packed))


def test_sparse_backend_matches_dense_iet():
    dense = IncarnationEndTable(8, sparse=False)
    sparse = IncarnationEndTable(8, sparse=True)
    _fill(dense, OPS)
    _fill(sparse, OPS)
    for pid in range(8):
        assert (sparse.highest_ended_incarnation(pid)
                == dense.highest_ended_incarnation(pid))
        for inc in range(5):
            for sii in (0, 1, 4, 9, 12):
                e = Entry(inc, sii)
                assert sparse.invalidates(pid, e) == dense.invalidates(pid, e)
                packed = columnar.pack(inc, sii)
                assert (sparse.invalidates_packed(pid, packed)
                        == dense.invalidates_packed(pid, packed))
    assert list(sparse.all_pairs()) == list(dense.all_pairs())


def test_sparse_snapshot_cross_merges_both_directions():
    sparse = LoggingProgressTable(8, sparse=True)
    dense = LoggingProgressTable(8, sparse=False)
    _fill(sparse, OPS[:4])
    _fill(dense, OPS[4:])
    snap_sparse = sparse.snapshot_columns()
    snap_dense = dense.snapshot_columns()
    assert isinstance(snap_sparse, SparseSnapshot)
    assert isinstance(snap_dense, TableSnapshot)
    sparse.merge_snapshot(snap_dense)
    dense.merge_snapshot(snap_sparse)
    assert sparse.snapshot() == dense.snapshot()


def test_sparse_snapshot_restrict_and_rows():
    table = LoggingProgressTable(6, sparse=True)
    _fill(table, [(2, 0, 4), (3, 1, 5)])
    snap = table.snapshot_columns()
    own = snap.restrict(2)
    assert own.rows() == [{}, {}, {0: 4}, {}, {}, {}]
    assert own[2] == {0: 4} and own[3] == {}
    assert len(snap) == 6


def test_large_n_defaults_to_sparse():
    assert EntrySetTable(columnar.SPARSE_MIN_N)._rows is not None
    assert EntrySetTable(columnar.SPARSE_MIN_N - 1)._rows is None


@pytest.mark.parametrize("sparse", [False, True])
def test_delta_since_carries_exactly_the_changes(sparse):
    table = LoggingProgressTable(8, sparse=sparse)
    table.enable_changelog()
    table.insert(0, Entry(0, 1))
    pos = table.changelog_position
    table.insert(1, Entry(0, 5))
    table.insert(0, Entry(0, 3))  # same position changed twice -> latest value
    table.insert(0, Entry(0, 2))  # no-op: below the recorded maximum
    delta = table.delta_since(pos)
    assert delta is not None and not delta.full
    assert sorted(delta.entries) == [(0, 0, 3), (1, 0, 5)]
    # Applying the delta on top of the peer's as-of state == full merge.
    peer = LoggingProgressTable(8, sparse=sparse)
    peer.insert(0, Entry(0, 1))
    peer.merge_snapshot(delta)
    assert peer.snapshot() == table.snapshot()
    # Nothing new since: the delta is empty, and merging it is a no-op.
    empty = table.delta_since(table.changelog_position)
    assert empty is not None and empty.entries == ()


def test_delta_since_stale_epoch_returns_none():
    table = LoggingProgressTable(8)
    table.enable_changelog()
    pos = table.changelog_position
    for i in range(table.CHANGELOG_LIMIT + 1):
        table.insert(i % 8, Entry(0, i + 1))
    assert table.changelog_epoch > 0
    assert table.delta_since(pos) is None  # stale cursor -> full snapshot
    assert table.delta_since((0, 10**9)) is None
    untracked = LoggingProgressTable(8)
    assert untracked.delta_since((0, 0)) is None


def test_merge_records_changelog_entries():
    table = LoggingProgressTable(128)  # numpy dense path
    table.enable_changelog()
    pos = table.changelog_position
    other = LoggingProgressTable(128)
    other.insert(3, Entry(1, 9))
    other.insert(100, Entry(0, 2))
    table.merge_snapshot(other.snapshot_columns())
    delta = table.delta_since(pos)
    assert sorted(delta.entries) == [(3, 1, 9), (100, 0, 2)]


@pytest.mark.parametrize("n", [8, 128])
def test_merge_snapshots_equals_sequential(n):
    sources = []
    for s in range(4):
        src = LoggingProgressTable(n)
        for i in range(6):
            src.insert((s * 5 + i * 3) % n, Entry(i % 3, s + i))
        sources.append(src.snapshot_columns())
    batched = LoggingProgressTable(n)
    batched.merge_snapshots(sources)
    sequential = LoggingProgressTable(n)
    for snap in sources:
        sequential.merge_snapshot(snap)
    assert batched.snapshot() == sequential.snapshot()
    assert (batched.version > 0) == (sequential.version > 0)
