"""Small behaviours not covered elsewhere: stats helpers, introspection
properties, repr formats, scale sanity."""

from repro.core.entry import Entry
from repro.core.protocol import ProtocolStats
from repro.core.tables import EntrySetTable
from helpers import deliver_env, make_msg, make_proc


class TestProtocolStats:
    def test_mean_send_hold_empty(self):
        assert ProtocolStats().mean_send_hold() == 0.0

    def test_mean_send_hold(self):
        stats = ProtocolStats()
        stats.messages_released = 4
        stats.send_hold_time_total = 10.0
        assert stats.mean_send_hold() == 2.5

    def test_mean_output_wait_empty(self):
        assert ProtocolStats().mean_output_wait() == 0.0


class TestIntrospection:
    def test_stable_interval_tracks_flush(self):
        proc = make_proc()
        deliver_env(proc)
        deliver_env(proc)
        assert proc.stable_interval == Entry(0, 1)  # only the initial ckpt
        proc.flush()
        assert proc.stable_interval == Entry(0, 3)

    def test_repr_mentions_k_and_current(self):
        proc = make_proc(pid=2, k=3)
        text = repr(proc)
        assert "P2" in text and "K=3" in text and "(0,1)" in text

    def test_table_repr(self):
        table = EntrySetTable(3)
        table.insert(1, Entry(0, 4))
        assert "P1" in repr(table)
        assert "(0,4)" in repr(table)


class TestScaleSanity:
    def test_thirty_two_processes(self):
        # A quick guard against accidental O(N^2)-per-event blowups.
        from repro.runtime.config import SimConfig
        from repro.runtime.harness import SimulationHarness
        from repro.workloads.random_peers import RandomPeersWorkload

        config = SimConfig(n=32, k=4, seed=2, trace_enabled=False,
                           check_invariants=False)
        workload = RandomPeersWorkload(rate=2.0)
        harness = SimulationHarness(config, workload.behavior())
        workload.install(harness, until=80.0)
        harness.run(120.0)
        metrics = harness.metrics()
        assert metrics.messages_delivered > 100
        assert metrics.max_piggyback_entries <= 4

    def test_single_process_system(self):
        # Degenerate n=1: no peers to send to, but the machinery holds up.
        from repro.runtime.config import SimConfig
        from repro.runtime.harness import SimulationHarness
        from repro.app.behavior import EchoBehavior
        from repro.failures.injector import FailureSchedule

        config = SimConfig(n=1, k=0, seed=0, trace_enabled=False)
        harness = SimulationHarness(config, EchoBehavior(),
                                    failures=FailureSchedule.single(50.0, 0))
        for t in (10.0, 20.0, 30.0):
            harness.inject_at(t, 0, {"tick": t})
        harness.run(100.0)
        metrics = harness.metrics()
        assert metrics.crashes == 1
        assert metrics.violations == []
