"""Unit tests for the logging progress table and incarnation end table."""

import pytest

from repro.core.entry import Entry
from repro.core.tables import EntrySetTable, IncarnationEndTable, LoggingProgressTable


class TestInsertSemantics:
    """The paper's Insert keeps one entry per incarnation, max index."""

    def test_insert_new_incarnation(self):
        t = EntrySetTable(3)
        t.insert(0, Entry(0, 5))
        assert list(t.entries(0)) == [Entry(0, 5)]

    def test_insert_keeps_maximum(self):
        t = EntrySetTable(3)
        t.insert(0, Entry(0, 5))
        t.insert(0, Entry(0, 3))
        assert t.lookup(0, 0) == 5
        t.insert(0, Entry(0, 9))
        assert t.lookup(0, 0) == 9

    def test_separate_incarnations_coexist(self):
        t = EntrySetTable(3)
        t.insert(1, Entry(0, 5))
        t.insert(1, Entry(1, 2))
        assert list(t.entries(1)) == [Entry(0, 5), Entry(1, 2)]
        assert t.row_size(1) == 2

    def test_rows_are_per_process(self):
        t = EntrySetTable(3)
        t.insert(0, Entry(0, 5))
        assert t.lookup(1, 0) is None

    def test_bad_pid(self):
        t = EntrySetTable(3)
        with pytest.raises(IndexError):
            t.insert(3, Entry(0, 1))

    def test_bad_size(self):
        with pytest.raises(ValueError):
            EntrySetTable(0)


class TestSnapshotMerge:
    def test_roundtrip(self):
        t = EntrySetTable(3)
        t.insert(0, Entry(0, 5))
        t.insert(2, Entry(1, 7))
        u = EntrySetTable(3)
        u.merge_snapshot(t.snapshot())
        assert u.lookup(0, 0) == 5
        assert u.lookup(2, 1) == 7

    def test_merge_takes_max(self):
        t = EntrySetTable(2)
        t.insert(0, Entry(0, 9))
        u = EntrySetTable(2)
        u.insert(0, Entry(0, 4))
        u.merge_snapshot(t.snapshot())
        assert u.lookup(0, 0) == 9

    def test_snapshot_is_deep(self):
        t = EntrySetTable(2)
        t.insert(0, Entry(0, 1))
        snap = t.snapshot()
        t.insert(0, Entry(0, 5))
        assert snap[0][0] == 1

    def test_size_mismatch_rejected(self):
        t = EntrySetTable(2)
        with pytest.raises(ValueError):
            t.merge_snapshot([{}])


class TestLoggingProgressCovers:
    def test_covers_lower_index_same_incarnation(self):
        log = LoggingProgressTable(2)
        log.insert(1, Entry(0, 6))
        assert log.covers(1, Entry(0, 6))
        assert log.covers(1, Entry(0, 3))

    def test_does_not_cover_higher_index(self):
        log = LoggingProgressTable(2)
        log.insert(1, Entry(0, 6))
        assert not log.covers(1, Entry(0, 7))

    def test_does_not_cover_other_incarnations(self):
        # covers() is per-incarnation, exactly like the pseudo-code's
        # "(t, x') in log[j] and x <= x'".
        log = LoggingProgressTable(2)
        log.insert(1, Entry(1, 9))
        assert not log.covers(1, Entry(0, 2))

    def test_empty_table_covers_nothing(self):
        log = LoggingProgressTable(2)
        assert not log.covers(0, Entry(0, 1))


class TestIncarnationEndInvalidates:
    def test_invalidates_same_incarnation_beyond_end(self):
        # iet announces incarnation 0 of P1 ended at 4: (0,5) is orphaned.
        iet = IncarnationEndTable(2)
        iet.insert(1, Entry(0, 4))
        assert iet.invalidates(1, Entry(0, 5))
        assert not iet.invalidates(1, Entry(0, 4))
        assert not iet.invalidates(1, Entry(0, 3))

    def test_invalidates_earlier_incarnations_too(self):
        # The end of incarnation 2 at index 6 also kills (0,9) and (1,7):
        # everything beyond index 6 of incarnation <= 2 was rolled back.
        iet = IncarnationEndTable(2)
        iet.insert(1, Entry(2, 6))
        assert iet.invalidates(1, Entry(0, 9))
        assert iet.invalidates(1, Entry(1, 7))
        assert not iet.invalidates(1, Entry(2, 6))

    def test_does_not_invalidate_newer_incarnations(self):
        iet = IncarnationEndTable(2)
        iet.insert(1, Entry(0, 4))
        assert not iet.invalidates(1, Entry(1, 5))

    def test_multiple_ends(self):
        iet = IncarnationEndTable(2)
        iet.insert(0, Entry(0, 4))
        iet.insert(0, Entry(1, 10))
        assert iet.invalidates(0, Entry(1, 11))
        assert iet.invalidates(0, Entry(0, 5))
        assert not iet.invalidates(0, Entry(2, 12))

    def test_highest_ended_incarnation(self):
        iet = IncarnationEndTable(3)
        assert iet.highest_ended_incarnation(0) == -1
        iet.insert(0, Entry(0, 4))
        iet.insert(0, Entry(2, 9))
        assert iet.highest_ended_incarnation(0) == 2

    def test_all_pairs(self):
        iet = IncarnationEndTable(3)
        iet.insert(0, Entry(0, 4))
        iet.insert(2, Entry(1, 2))
        assert list(iet.all_pairs()) == [(0, Entry(0, 4)), (2, Entry(1, 2))]

    def test_figure1_r1(self):
        # r1 carries (0,4)_1: P3's dependency (0,5)_1 is invalidated,
        # P4's dependency (0,4)_1 is not.
        iet = IncarnationEndTable(6)
        iet.insert(1, Entry(0, 4))
        assert iet.invalidates(1, Entry(0, 5))      # P3 must roll back
        assert not iet.invalidates(1, Entry(0, 4))  # P4 is fine
