"""Protocol conformance: Checkpoint, asynchronous flush, Receive_log
(Figure 3, Corollaries 1-3, Theorem 2)."""

from repro.core.entry import Entry
from repro.net.message import LogProgressNotification
from helpers import deliver_env, make_announcement, make_msg, make_proc


def notification(n, pid, entries):
    table = [{} for _ in range(n)]
    table[pid] = dict(entries)
    return LogProgressNotification(pid, table)


class TestCheckpoint:
    def test_checkpoint_flushes_volatile_buffer(self):
        # "stable state intervals are always continuous."  (GC off so the
        # logged prefix stays observable.)
        proc = make_proc(gc_on_checkpoint=False)
        deliver_env(proc)
        deliver_env(proc)
        assert len(proc.volatile) == 2
        proc.checkpoint()
        assert len(proc.volatile) == 0
        assert proc.storage.log_size == 2

    def test_checkpoint_is_synchronous(self):
        proc = make_proc()
        deliver_env(proc)
        before = proc.storage.sync_writes
        proc.checkpoint()
        assert proc.storage.sync_writes == before + 2  # log batch + checkpoint

    def test_corollary_2_own_entry_nullified(self):
        proc = make_proc()
        deliver_env(proc)
        assert proc.tdv.get(proc.pid) == Entry(0, 2)
        proc.checkpoint()
        assert proc.tdv.get(proc.pid) is None

    def test_checkpoint_records_own_progress(self):
        proc = make_proc()
        deliver_env(proc)
        proc.checkpoint()
        assert proc.log.covers(proc.pid, Entry(0, 2))

    def test_other_entries_survive_checkpoint(self):
        proc = make_proc(pid=0, n=4)
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 5)}))
        proc.checkpoint()
        assert proc.tdv.get(1) == Entry(0, 5)

    def test_next_delivery_restores_own_entry(self):
        proc = make_proc()
        deliver_env(proc)
        proc.checkpoint()
        deliver_env(proc)
        assert proc.tdv.get(proc.pid) == Entry(0, 3)


class TestFlush:
    def test_flush_is_asynchronous(self):
        proc = make_proc()
        deliver_env(proc)
        deliver_env(proc)
        sync_before = proc.storage.sync_writes
        proc.flush()
        assert proc.storage.sync_writes == sync_before
        assert proc.storage.async_writes == 1
        assert proc.storage.log_size == 2

    def test_flush_batches_messages_in_one_operation(self):
        # "writes several messages to stable storage in a single operation"
        proc = make_proc()
        for _ in range(5):
            deliver_env(proc)
        proc.flush()
        assert proc.storage.async_writes == 1
        assert proc.storage.messages_logged == 5

    def test_empty_flush_writes_nothing(self):
        proc = make_proc()
        proc.flush()
        assert proc.storage.async_writes == 0

    def test_flush_records_progress_by_default(self):
        proc = make_proc()
        deliver_env(proc)
        proc.flush()
        assert proc.log.covers(proc.pid, Entry(0, 2))
        assert proc.tdv.get(proc.pid) is None

    def test_strict_flush_does_not_advance_log_table(self):
        proc = make_proc(nullify_own_on_flush=False)
        deliver_env(proc)
        proc.flush()
        assert not proc.log.covers(proc.pid, Entry(0, 2))
        assert proc.tdv.get(proc.pid) == Entry(0, 2)


class TestReceiveLog:
    def test_merges_stability_info(self):
        proc = make_proc(pid=0, n=4)
        proc.on_log_notification(notification(4, 2, {0: 7, 1: 9}))
        assert proc.log.covers(2, Entry(0, 7))
        assert proc.log.covers(2, Entry(1, 9))
        assert not proc.log.covers(2, Entry(1, 10))

    def test_theorem_2_nullifies_stable_dependencies(self):
        # The paper's running example: P4 drops (2,6)_3 after P3's
        # notification.
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={3: Entry(2, 6)}))
        assert proc.tdv.get(3) == Entry(2, 6)
        proc.on_log_notification(notification(6, 3, {2: 6}))
        assert proc.tdv.get(3) is None

    def test_partial_stability_keeps_entry(self):
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={3: Entry(2, 6)}))
        proc.on_log_notification(notification(6, 3, {2: 5}))
        assert proc.tdv.get(3) == Entry(2, 6)

    def test_orphan_detection_survives_nullification(self):
        # Theorem 2's subtlety: after dropping (2,6)_3, P4's orphan status
        # w.r.t. a P0 failure is still detectable via the (1,3)_0 entry.
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6,
                                 entries={0: Entry(1, 3), 3: Entry(2, 6)}))
        proc.on_log_notification(notification(6, 3, {2: 6}))
        assert proc.tdv.get(3) is None
        assert proc.tdv.get(0) == Entry(1, 3)
        from repro.core.effects import RollbackPerformed
        effects = proc.on_failure_announcement(make_announcement(0, 1, 2))
        assert [e for e in effects if isinstance(e, RollbackPerformed)]

    def test_gossip_spreads_transitively(self):
        # P1 learns about P2's stability from P3's notification.
        proc = make_proc(pid=1, n=4)
        table = [{}, {}, {0: 9}, {0: 4}]
        proc.on_log_notification(LogProgressNotification(3, table))
        assert proc.log.covers(2, Entry(0, 9))
        assert proc.log.covers(3, Entry(0, 4))

    def test_own_row_notification(self):
        proc = make_proc(pid=0, n=4)
        deliver_env(proc)
        proc.flush()
        notif = proc.make_log_notification(own_only=True)
        assert notif.table[0]  # own row present
        assert all(not row for pid, row in enumerate(notif.table) if pid != 0)

    def test_full_notification_contains_all_rows(self):
        proc = make_proc(pid=0, n=4)
        proc.on_log_notification(notification(4, 2, {0: 7}))
        notif = proc.make_log_notification()
        assert notif.table[2] == {0: 7}
