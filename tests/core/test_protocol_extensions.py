"""Tests for the paper's in-text extensions: per-message K (Section 4.2)
and output-driven logging (Section 2)."""

from repro.app.behavior import AppBehavior
from repro.core.effects import (
    CommitOutput,
    ReleaseMessage,
    RequestLogging,
    SendNotification,
)
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.net.message import LoggingRequest
from helpers import deliver_env, effects_of, make_msg, make_proc


class PerMessageKBehavior(AppBehavior):
    """Sends one normal message and one 'precious' k=0 message."""

    def initial_state(self, pid, n):
        return {}

    def on_message(self, state, payload, ctx):
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {"class": "normal"})
            ctx.send(payload["to"], {"class": "precious"}, k=payload.get("k", 0))
        return state


class OutputBehavior(AppBehavior):
    def initial_state(self, pid, n):
        return {}

    def on_message(self, state, payload, ctx):
        if isinstance(payload, dict) and "output" in payload:
            ctx.output(payload["output"])
        return state


class TestPerMessageK:
    def test_mixed_k_in_one_system(self):
        # System K=N releases the normal message immediately; the k=0
        # message waits for full stability (Section 4.2: different K values
        # for different messages in the same system).
        proc = make_proc(pid=0, n=4, k=4, behavior=PerMessageKBehavior())
        effects = deliver_env(proc, {"to": 1, "k": 0})
        released = [e.message.payload["class"]
                    for e in effects_of(effects, ReleaseMessage)]
        assert released == ["normal"]
        assert len(proc.send_buffer) == 1
        assert proc.send_buffer[0].payload["class"] == "precious"

    def test_precious_message_released_on_stability(self):
        proc = make_proc(pid=0, n=4, k=4, behavior=PerMessageKBehavior())
        deliver_env(proc, {"to": 1, "k": 0})
        effects = proc.checkpoint()  # own interval becomes stable
        released = [e.message.payload["class"]
                    for e in effects_of(effects, ReleaseMessage)]
        assert released == ["precious"]
        assert effects_of(effects, ReleaseMessage)[0].message.tdv.non_null_count() == 0

    def test_per_message_k_looser_than_system(self):
        # A message may also be *more* optimistic than the system default.
        proc = make_proc(pid=0, n=4, k=0, behavior=PerMessageKBehavior())
        effects = deliver_env(proc, {"to": 1, "k": 4})
        released = [e.message.payload["class"]
                    for e in effects_of(effects, ReleaseMessage)]
        assert released == ["precious"]  # k=4 escapes the K=0 hold
        assert proc.send_buffer[0].payload["class"] == "normal"

    def test_negative_per_message_k_rejected(self):
        import pytest

        from repro.app.behavior import AppContext

        ctx = AppContext(0, 4, 0, 2, seed=0)
        with pytest.raises(ValueError):
            ctx.send(1, {}, k=-1)

    def test_outputs_equal_k0_messages(self):
        # An output and a k=0 message to a peer commit/release at the same
        # stability point — the paper's "an output can be viewed as a
        # 0-optimistic message".
        proc = make_proc(pid=0, n=4, k=4, behavior=PerMessageKBehavior())
        deliver_env(proc, {"to": 1, "k": 0})
        assert len(proc.send_buffer) == 1
        effects = proc.flush()
        assert effects_of(effects, ReleaseMessage)


class TestOutputDrivenLogging:
    def test_request_emitted_for_dependencies(self):
        proc = make_proc(pid=0, n=4, k=4, behavior=OutputBehavior(),
                         output_driven_logging=True)
        effects = proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7),
                                                          3: Entry(0, 4)},
                                           payload={"output": "X"}))
        requests = effects_of(effects, RequestLogging)
        assert len(requests) == 1
        assert set(requests[0].targets) == {2, 3}

    def test_no_request_without_flag(self):
        proc = make_proc(pid=0, n=4, k=4, behavior=OutputBehavior())
        effects = proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                           payload={"output": "X"}))
        assert not effects_of(effects, RequestLogging)

    def test_no_request_when_no_remote_dependencies(self):
        proc = make_proc(pid=0, n=4, k=4, behavior=OutputBehavior(),
                         output_driven_logging=True)
        effects = deliver_env(proc, {"output": "X"})
        assert not effects_of(effects, RequestLogging)

    def test_request_handler_flushes_and_replies(self):
        server = make_proc(pid=2, n=4, k=4)
        deliver_env(server)  # something to flush
        effects = server.on_logging_request(LoggingRequest(origin=0))
        replies = effects_of(effects, SendNotification)
        assert len(replies) == 1
        assert replies[0].dst == 0
        assert replies[0].notification.table[2]  # own progress included
        assert server.storage.async_writes == 1

    def test_round_trip_commits_output(self):
        # Requester -> target flush -> notification -> commit.
        requester = make_proc(pid=0, n=4, k=4, behavior=OutputBehavior(),
                              output_driven_logging=True)
        target = make_proc(pid=2, n=4, k=4)
        deliver_env(target)  # target's interval (0,2) exists but is volatile
        effects = requester.on_receive(
            make_msg(2, 0, entries={2: Entry(0, 2)}, payload={"output": "X"}))
        request = effects_of(effects, RequestLogging)[0]
        assert request.targets == [2]
        requester.flush()  # own side stable
        reply = effects_of(
            target.on_logging_request(LoggingRequest(origin=0)),
            SendNotification)[0]
        effects = requester.on_log_notification(reply.notification)
        assert effects_of(effects, CommitOutput)

    def test_harness_end_to_end(self):
        from repro.runtime.config import SimConfig
        from repro.runtime.harness import SimulationHarness
        from repro.workloads.telecom import TelecomWorkload

        def run(flag):
            config = SimConfig(n=6, k=None, seed=9, notify_interval=200.0,
                               flush_interval=200.0, trace_enabled=False,
                               output_driven_logging=flag)
            workload = TelecomWorkload(rate=0.5)
            harness = SimulationHarness(config, workload.behavior())
            workload.install(harness, until=400.0)
            harness.run(600.0)
            return harness.metrics()

        lazy = run(False)
        driven = run(True)
        assert driven.violations == [] and lazy.violations == []
        # With rare periodic notifications, output-driven logging commits
        # outputs dramatically sooner.
        assert driven.mean_output_latency < lazy.mean_output_latency / 2
