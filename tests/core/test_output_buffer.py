"""Unit tests for the output-commit buffer (0-optimistic messages)."""

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.core.output import OutputBuffer
from repro.core.tables import IncarnationEndTable, LoggingProgressTable
from repro.net.message import OutputRecord
from repro.types import OutputId


def make_record(pid=0, sii=2, seq=0):
    return OutputRecord(OutputId(pid, 0, sii, seq), pid, f"out-{seq}", Entry(0, sii))


class TestOutputBuffer:
    def test_add_snapshots_vector(self):
        buf = OutputBuffer()
        tdv = DependencyVector(4, {1: Entry(0, 5)})
        buf.add(make_record(), tdv)
        tdv.set(2, Entry(0, 9))
        assert buf.pending[0].tdv.get(2) is None

    def test_update_releases_when_all_null(self):
        buf = OutputBuffer()
        buf.add(make_record(), DependencyVector(4, {1: Entry(0, 5)}))
        log = LoggingProgressTable(4)
        assert buf.update(log) == []
        log.insert(1, Entry(0, 5))
        ready = buf.update(log)
        assert len(ready) == 1
        assert len(buf) == 0

    def test_update_nullifies_incrementally(self):
        buf = OutputBuffer()
        buf.add(make_record(),
                DependencyVector(4, {1: Entry(0, 5), 2: Entry(0, 3)}))
        log = LoggingProgressTable(4)
        log.insert(1, Entry(0, 5))
        assert buf.update(log) == []
        assert buf.pending[0].tdv.non_null_count() == 1
        log.insert(2, Entry(0, 3))
        assert len(buf.update(log)) == 1

    def test_empty_vector_releases_immediately(self):
        buf = OutputBuffer()
        buf.add(make_record(), DependencyVector(4))
        assert len(buf.update(LoggingProgressTable(4))) == 1

    def test_discard_orphans(self):
        buf = OutputBuffer()
        buf.add(make_record(seq=0), DependencyVector(4, {1: Entry(0, 5)}))
        buf.add(make_record(seq=1), DependencyVector(4, {1: Entry(0, 3)}))
        iet = IncarnationEndTable(4)
        iet.insert(1, Entry(0, 4))
        orphans = buf.discard_orphans(iet)
        assert len(orphans) == 1
        assert orphans[0].record.payload == "out-0"
        assert len(buf) == 1

    def test_discard_all(self):
        buf = OutputBuffer()
        buf.add(make_record(), DependencyVector(4))
        buf.discard_all()
        assert len(buf) == 0

    def test_release_order_preserved(self):
        buf = OutputBuffer()
        for seq in range(3):
            buf.add(make_record(seq=seq), DependencyVector(4))
        ready = buf.update(LoggingProgressTable(4))
        assert [p.record.payload for p in ready] == ["out-0", "out-1", "out-2"]

    def test_enqueue_time_kept(self):
        buf = OutputBuffer()
        buf.add(make_record(), DependencyVector(4), now=42.0)
        ready = buf.update(LoggingProgressTable(4))
        assert ready[0].enqueued_at == 42.0
