"""Protocol conformance: output commit (Section 4.2 — outputs are
0-optimistic messages)."""

from repro.app.behavior import AppBehavior
from repro.core.effects import CommitOutput, OutputDiscarded
from repro.core.entry import Entry
from repro.net.message import LogProgressNotification
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class OutputBehavior(AppBehavior):
    def initial_state(self, pid, n):
        return {"n": 0}

    def on_message(self, state, payload, ctx):
        state["n"] += 1
        if isinstance(payload, dict) and "output" in payload:
            ctx.output(payload["output"])
        return state


def notification(n, pid, entries):
    table = [{} for _ in range(n)]
    table[pid] = dict(entries)
    return LogProgressNotification(pid, table)


class TestOutputCommit:
    def test_output_waits_for_own_stability(self):
        proc = make_proc(k=4, behavior=OutputBehavior())
        effects = deliver_env(proc, {"output": "A"})
        assert not effects_of(effects, CommitOutput)
        assert len(proc.output_buffer) == 1
        effects = proc.flush()
        commits = effects_of(effects, CommitOutput)
        assert len(commits) == 1
        assert commits[0].record.payload == "A"

    def test_output_waits_for_remote_dependencies(self):
        # The paper's P4 example: the output from (0,2)_4 commits only when
        # (1,3)_0, (0,4)_1, (2,6)_3 AND (0,2)_4 are all stable.
        proc = make_proc(pid=4, n=6, k=6, behavior=OutputBehavior())
        proc.on_receive(make_msg(3, 4, n=6,
                                 entries={0: Entry(1, 3), 1: Entry(0, 4),
                                          3: Entry(2, 6)},
                                 payload={"output": "OUT"}))
        assert not effects_of(proc.flush(), CommitOutput)           # own stable
        assert not effects_of(
            proc.on_log_notification(notification(6, 0, {1: 3})), CommitOutput)
        assert not effects_of(
            proc.on_log_notification(notification(6, 3, {2: 6})), CommitOutput)
        # (0,4)_1's stability arrives via r1 (Corollary 1): commits now.
        effects = proc.on_failure_announcement(make_announcement(1, 0, 4))
        assert effects_of(effects, CommitOutput)

    def test_output_commit_recorded_stably(self):
        proc = make_proc(k=4, behavior=OutputBehavior())
        deliver_env(proc, {"output": "A"})
        effects = proc.flush()
        record = effects_of(effects, CommitOutput)[0].record
        assert proc.storage.output_committed(record.output_id)

    def test_replay_does_not_recommit(self):
        proc = make_proc(k=4, behavior=OutputBehavior())
        deliver_env(proc, {"output": "A"})
        proc.flush()  # commits
        assert proc.stats.outputs_committed == 1
        proc.crash()
        effects = proc.restart()
        assert not effects_of(effects, CommitOutput)
        assert proc.stats.outputs_committed == 1
        assert proc.storage.committed_output_count == 1

    def test_uncommitted_output_reappears_after_replay(self):
        # Output enqueued, logged, NOT committed before the crash: replay
        # regenerates it and it can commit afterwards.
        proc = make_proc(pid=4, n=6, k=6, behavior=OutputBehavior())
        proc.on_receive(make_msg(3, 4, n=6, entries={3: Entry(2, 6)},
                                 payload={"output": "OUT"}))
        proc.flush()
        proc.crash()
        effects = proc.restart()
        assert not effects_of(effects, CommitOutput)
        assert len(proc.output_buffer) == 1
        effects = proc.on_log_notification(notification(6, 3, {2: 6}))
        assert effects_of(effects, CommitOutput)

    def test_orphan_output_discarded(self):
        proc = make_proc(pid=4, n=6, k=6, behavior=OutputBehavior())
        proc.on_receive(make_msg(3, 4, n=6, entries={3: Entry(2, 6)},
                                 payload={"output": "OUT"}))
        effects = proc.on_failure_announcement(make_announcement(3, 2, 5))
        assert effects_of(effects, OutputDiscarded)
        assert proc.stats.outputs_discarded == 1
        assert len(proc.output_buffer) == 0

    def test_committed_output_cannot_be_revoked(self):
        # Once committed, a later announcement does not (cannot) touch it:
        # all of its dependencies were stable, hence never rolled back.
        proc = make_proc(k=4, behavior=OutputBehavior())
        deliver_env(proc, {"output": "A"})
        proc.flush()
        proc.on_failure_announcement(make_announcement(1, 0, 1))
        assert proc.stats.outputs_committed == 1
        assert proc.stats.outputs_discarded == 0

    def test_output_wait_time_tracked(self):
        clock = {"now": 0.0}
        proc = make_proc(k=4, behavior=OutputBehavior(),
                         now_fn=lambda: clock["now"])
        deliver_env(proc, {"output": "A"})
        clock["now"] = 12.0
        proc.flush()
        assert proc.stats.output_wait_total == 12.0
        assert proc.stats.mean_output_wait() == 12.0

    def test_multiple_outputs_one_interval(self):
        class MultiOutput(AppBehavior):
            def initial_state(self, pid, n):
                return {}

            def on_message(self, state, payload, ctx):
                ctx.output("first")
                ctx.output("second")
                return state

        proc = make_proc(k=4, behavior=MultiOutput())
        deliver_env(proc, {})
        effects = proc.flush()
        commits = effects_of(effects, CommitOutput)
        assert [c.record.payload for c in commits] == ["first", "second"]
        ids = {c.record.output_id for c in commits}
        assert len(ids) == 2
