"""Duplicate suppression, including across crash/restart.

On an unreliable network the same application message can reach a process
twice for two different reasons: the channel duplicated it, or the sender's
retransmission timer re-sent it.  Both copies carry the same ``msg_id``;
``received_ids`` — checkpointed, and reconstructed during replay — must
suppress the second delivery even when a crash intervenes.
"""

from repro.core.effects import DuplicateDropped, MessageDelivered
from repro.core.entry import Entry
from helpers import effects_of, make_msg, make_proc


class TestChannelDuplicates:
    def test_duplicate_copy_never_delivered_twice(self):
        proc = make_proc()
        msg = make_msg(1, 0, entries={1: Entry(0, 2)})
        first = proc.on_receive(msg)
        assert effects_of(first, MessageDelivered)
        second = proc.on_receive(msg)
        assert effects_of(second, DuplicateDropped)
        assert not effects_of(second, MessageDelivered)
        assert proc.stats.duplicates_dropped == 1
        assert proc.stats.deliveries == 1

    def test_duplicate_of_buffered_message_dropped(self):
        proc = make_proc()
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 2)}))
        held = make_msg(1, 0, entries={1: Entry(1, 5)})
        proc.on_receive(held)
        assert held in proc.receive_buffer
        effects = proc.on_receive(held)
        assert effects_of(effects, DuplicateDropped)
        assert proc.receive_buffer.count(held) == 1


class TestDuplicatesAcrossRestart:
    def test_checkpointed_ids_survive_crash(self):
        """A retransmitted copy of a message delivered before the crash is
        deduplicated via the checkpoint-restored received_ids."""
        proc = make_proc()
        msg = make_msg(1, 0, entries={1: Entry(0, 2)})
        proc.on_receive(msg)
        proc.checkpoint()  # received_ids snapshot includes msg
        proc.crash()
        proc.restart()
        assert msg.msg_id in proc.received_ids
        effects = proc.on_receive(msg)  # the sender's timer re-sends it
        assert effects_of(effects, DuplicateDropped)
        assert not effects_of(effects, MessageDelivered)
        assert proc.stats.duplicates_dropped == 1

    def test_replayed_ids_survive_crash_without_checkpoint(self):
        """Without a covering checkpoint the message is replayed from the
        log — and the replay re-registers its id."""
        proc = make_proc()
        msg = make_msg(1, 0, entries={1: Entry(0, 2)})
        proc.on_receive(msg)
        proc.flush()  # logged, but not checkpointed
        delivered_before = proc.app_state["delivered"]
        proc.crash()
        proc.restart()
        assert proc.app_state["delivered"] == delivered_before
        effects = proc.on_receive(msg)
        assert effects_of(effects, DuplicateDropped)
        assert proc.stats.deliveries == proc.stats.replayed_deliveries + 1

    def test_requeued_ids_survive_crash(self):
        """Logged messages popped into the receive buffer during recovery
        keep their ids deduplicated too."""
        proc = make_proc()
        a = make_msg(1, 0, entries={1: Entry(0, 2)})
        b = make_msg(2, 0, entries={2: Entry(0, 3)})
        proc.on_receive(a)
        proc.on_receive(b)
        proc.flush()
        proc.crash()
        proc.restart()
        # Whether replayed or requeued, both ids must be known.
        assert a.msg_id in proc.received_ids
        assert b.msg_id in proc.received_ids
        assert effects_of(proc.on_receive(a), DuplicateDropped)
        assert effects_of(proc.on_receive(b), DuplicateDropped)
