"""Regression tests for buffer bookkeeping (wait-time dicts) and the
deliver-loop rewrite.

The bookkeeping bugs: ``_scrub_orphans`` popped ``_send_enqueue_times``
for send-buffer discards but leaked ``_receive_times`` entries for
receive-buffer discards forever, and ``_rollback`` pruned neither dict.
"""

from repro.app.behavior import AppBehavior
from repro.core.effects import MessageDelivered, MessageDiscarded
from repro.core.entry import Entry
from repro.net.message import LogProgressNotification
from helpers import (
    deliver_env,
    effects_of,
    make_announcement,
    make_msg,
    make_proc,
)


class ForwardingBehavior(AppBehavior):
    def initial_state(self, pid, n):
        return {}

    def on_message(self, state, payload, ctx):
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], payload.get("inner", {}))
        return state


def held_receive(proc, src=1):
    """Put one message into proc's receive buffer and keep it there.

    First a delivery establishes ``tdv[src]`` at incarnation 0; a second
    message from ``src``'s incarnation 1 then trips Check_deliverability
    (two incarnations, smaller one not known stable) and is buffered.
    """
    proc.on_receive(make_msg(src, proc.pid, entries={src: Entry(0, 2)}))
    held = make_msg(src, proc.pid, entries={src: Entry(1, 5)})
    proc.on_receive(held)
    assert held in proc.receive_buffer
    return held


class TestScrubBookkeeping:
    def test_receive_buffer_discard_pops_receive_times(self):
        proc = make_proc()
        held = held_receive(proc)
        assert held.wire_id in proc._receive_times
        # Announce that src's incarnation 1 ended at 3: the held message
        # (which depends on (1,5) of src) becomes an orphan.
        effects = proc.on_failure_announcement(make_announcement(1, 1, 3))
        discarded = effects_of(effects, MessageDiscarded)
        assert [d.message for d in discarded] == [held]
        assert held not in proc.receive_buffer
        # The regression: this entry used to leak forever.
        assert held.wire_id not in proc._receive_times

    def test_send_buffer_discard_pops_enqueue_times(self):
        proc = make_proc(k=0, behavior=ForwardingBehavior())
        msg = make_msg(1, 0, entries={1: Entry(0, 4)}, payload={"to": 2})
        proc.on_receive(msg)
        (pending,) = proc.send_buffer
        assert pending.wire_id in proc._send_enqueue_times
        proc.on_failure_announcement(make_announcement(1, 0, 2))
        assert proc.send_buffer == []
        assert pending.wire_id not in proc._send_enqueue_times

    def test_rollback_prunes_both_wait_dicts(self):
        proc = make_proc(behavior=ForwardingBehavior(), k=0)
        # Deliver a message that makes our state depend on P1's (0, 5);
        # its triggered send is held (K=0) in the send buffer.
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 5)},
                                 payload={"to": 2}))
        held = make_msg(2, 0, entries={2: Entry(0, 2), 1: Entry(1, 9)})
        proc.on_receive(held)  # two incarnations of P1 in play: buffered
        assert proc.send_buffer and held in proc.receive_buffer
        # P1's incarnation 0 ended at 3: our state (dep on (0,5)) is an
        # orphan, so Rollback runs; the held receive-buffer message
        # (dep on P1 (1,9)) survives the iet check and is kept.
        proc.on_failure_announcement(make_announcement(1, 0, 3))
        assert set(proc._send_enqueue_times) == {
            m.wire_id for m in proc.send_buffer
        }
        assert set(proc._receive_times) <= {
            m.wire_id for m in proc.receive_buffer
        }


class TestDeliverLoop:
    def test_single_pass_cascade(self):
        """A delivery can unlock a message buffered *before* it without
        restarting the scan: the second message merges P1's incarnation-1
        entry into our vector, making the held message's entry same-inc."""
        proc = make_proc()
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 2)}))
        held = make_msg(1, 0, entries={1: Entry(1, 5)})
        proc.on_receive(held)
        assert held in proc.receive_buffer
        # Stability of (1, (0,2)) lets the held message through.
        table = [{} for _ in range(proc.n)]
        table[1] = {0: 2}
        effects = proc.on_log_notification(LogProgressNotification(1, table))
        delivered = effects_of(effects, MessageDelivered)
        assert [d.message for d in delivered] == [held]
        assert proc.receive_buffer == []

    def test_multi_round_delivery_converges(self):
        """Messages whose deliverability is unlocked by a later delivery in
        the same call are all delivered; undeliverable ones stay put."""
        proc = make_proc(n=6, k=6)
        proc.on_receive(make_msg(1, 0, n=6, entries={1: Entry(0, 2)}))
        blocked = make_msg(1, 0, n=6, entries={1: Entry(1, 7)})
        proc.on_receive(blocked)
        stuck = make_msg(2, 0, n=6, entries={2: Entry(0, 3)})
        proc.on_receive(stuck)
        proc.on_receive(make_msg(2, 0, n=6, entries={2: Entry(1, 9)}))
        assert len(proc.receive_buffer) == 2
        # Stability for P1 unlocks `blocked`; P2's gap stays open.
        table = [{} for _ in range(6)]
        table[1] = {0: 2}
        effects = proc.on_log_notification(LogProgressNotification(1, table))
        delivered = [d.message for d in effects_of(effects, MessageDelivered)]
        assert blocked in delivered
        assert [m.msg_id for m in proc.receive_buffer] != []

    def test_deliveries_count_matches(self):
        proc = make_proc()
        for sii in (2, 3, 4):
            deliver_env(proc)
        assert proc.stats.deliveries == 3
        assert proc.receive_buffer == []
