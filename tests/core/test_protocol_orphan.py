"""Protocol conformance: Check_orphan and Receive_failure_ann
(Figures 2-3, Theorem 1)."""

from repro.app.behavior import AppBehavior
from repro.core.effects import (
    MessageDelivered,
    MessageDiscarded,
    OutputDiscarded,
    ReleaseMessage,
    RollbackPerformed,
)
from repro.core.entry import Entry
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class SendAndOutputBehavior(AppBehavior):
    def initial_state(self, pid, n):
        return {}

    def on_message(self, state, payload, ctx):
        if isinstance(payload, dict):
            for dst in payload.get("send_to", []):
                ctx.send(dst, {})
            if payload.get("output"):
                ctx.output(payload["output"])
        return state


class TestOrphanOnReceive:
    def test_orphan_message_discarded(self):
        proc = make_proc(pid=0, n=4)
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        effects = proc.on_receive(make_msg(2, 0, entries={1: Entry(0, 5)}))
        discarded = effects_of(effects, MessageDiscarded)
        assert discarded and discarded[0].reason == "orphan-on-receive"
        assert proc.stats.orphans_discarded == 1
        assert not proc.receive_buffer

    def test_non_orphan_passes(self):
        proc = make_proc(pid=0, n=4)
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        effects = proc.on_receive(make_msg(2, 0, entries={1: Entry(0, 4)}))
        assert effects_of(effects, MessageDelivered)

    def test_earlier_incarnation_beyond_end_is_orphan(self):
        proc = make_proc(pid=0, n=4)
        proc.on_failure_announcement(make_announcement(1, 2, 6))
        effects = proc.on_receive(make_msg(2, 0, entries={1: Entry(0, 9)}))
        assert effects_of(effects, MessageDiscarded)

    def test_newer_incarnation_not_orphan(self):
        proc = make_proc(pid=0, n=4)
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        effects = proc.on_receive(make_msg(2, 0, entries={1: Entry(1, 9)}))
        assert effects_of(effects, MessageDelivered)


class TestReceiveFailureAnnouncement:
    def test_announcement_is_synchronously_logged(self):
        proc = make_proc(pid=0, n=4)
        before = proc.storage.sync_writes
        ann = make_announcement(1, 0, 4)
        proc.on_failure_announcement(ann)
        assert proc.storage.sync_writes == before + 1
        assert ann in proc.storage.announcements

    def test_iet_and_log_updated(self):
        proc = make_proc(pid=0, n=4)
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        assert proc.iet.lookup(1, 0) == 4
        assert proc.log.covers(1, Entry(0, 4))  # Corollary 1

    def test_receive_buffer_scrubbed(self):
        # A message held for deliverability turns out to be an orphan.
        proc = make_proc(pid=4, n=6)
        proc.on_receive(make_msg(3, 4, n=6, entries={1: Entry(0, 4)}))
        proc.on_receive(make_msg(2, 4, n=6, entries={1: Entry(1, 9)}))
        assert len(proc.receive_buffer) == 1
        # P1's incarnation 1 ended at 5: the buffered (1,9) message dies.
        effects = proc.on_failure_announcement(make_announcement(1, 1, 5))
        reasons = [e.reason for e in effects_of(effects, MessageDiscarded)]
        assert "orphan-in-receive_buffer" in reasons
        assert not proc.receive_buffer

    def test_send_buffer_scrubbed(self):
        proc = make_proc(pid=0, n=4, k=0, behavior=SendAndOutputBehavior())
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                 payload={"send_to": [1]}))
        assert len(proc.send_buffer) == 1
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        # Our own state depended on (0,7)_2 so we roll back AND the held
        # message is gone (it was sent from an orphaned interval).
        assert effects_of(effects, RollbackPerformed)
        assert not proc.send_buffer

    def test_output_buffer_scrubbed(self):
        proc = make_proc(pid=0, n=4, k=0, behavior=SendAndOutputBehavior())
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)},
                                 payload={"output": "X"}))
        assert len(proc.output_buffer) == 1
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert effects_of(effects, OutputDiscarded)
        assert len(proc.output_buffer) == 0
        assert proc.stats.outputs_discarded == 1

    def test_duplicate_announcement_is_idempotent(self):
        proc = make_proc(pid=0, n=4)
        ann = make_announcement(1, 0, 4)
        proc.on_failure_announcement(ann)
        effects = proc.on_failure_announcement(ann)
        assert not effects_of(effects, RollbackPerformed)
        assert proc.iet.lookup(1, 0) == 4

    def test_rollback_condition_boundaries(self):
        # tdv[j].inc <= t and tdv[j].sii > x'  triggers rollback.
        cases = [
            (Entry(0, 5), make_announcement(1, 0, 4), True),   # beyond end
            (Entry(0, 4), make_announcement(1, 0, 4), False),  # exactly end
            (Entry(1, 9), make_announcement(1, 0, 4), False),  # newer inc
            (Entry(0, 9), make_announcement(1, 1, 4), True),   # older inc
        ]
        for dep, ann, expect in cases:
            proc = make_proc(pid=0, n=4)
            proc.on_receive(make_msg(2, 0, entries={1: dep}))
            effects = proc.on_failure_announcement(ann)
            assert bool(effects_of(effects, RollbackPerformed)) is expect, (dep, ann)

    def test_no_dependency_no_rollback(self):
        proc = make_proc(pid=0, n=4)
        deliver_env(proc)
        effects = proc.on_failure_announcement(make_announcement(1, 0, 1))
        assert not effects_of(effects, RollbackPerformed)
        assert proc.current == Entry(0, 2)


class TestTheorem1Transitivity:
    """Only failures are announced; orphans of orphans are still caught."""

    def test_transitive_orphan_detected_via_original_failure(self):
        # P2 delivered (0,5)_1 then sent to us: its message carries the
        # (0,5)_1 dependency transitively, so P1's announcement alone
        # suffices to discard it — P2 never announces its own rollback.
        proc = make_proc(pid=0, n=4)
        proc.on_failure_announcement(make_announcement(1, 0, 4))
        msg_via_p2 = make_msg(2, 0, entries={1: Entry(0, 5), 2: Entry(0, 9)})
        effects = proc.on_receive(msg_via_p2)
        assert effects_of(effects, MessageDiscarded)

    def test_rollback_does_not_broadcast(self):
        from repro.core.effects import BroadcastAnnouncement

        proc = make_proc(pid=0, n=4)
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert effects_of(effects, RollbackPerformed)
        assert not effects_of(effects, BroadcastAnnouncement)

    def test_rollback_still_increments_incarnation(self):
        # Required so logging progress notifications stay per-incarnation.
        proc = make_proc(pid=0, n=4)
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        assert proc.current == Entry(0, 2)
        proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert proc.current.inc == 1
