"""Baseline conformance: pessimistic (synchronous) logging."""

from repro.app.behavior import AppBehavior
from repro.core.baselines.pessimistic import PessimisticProcess
from repro.core.effects import (
    BroadcastAnnouncement,
    MessageDelivered,
    ReleaseMessage,
    RollbackPerformed,
)
from repro.core.entry import Entry
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class Forwarder(AppBehavior):
    def initial_state(self, pid, n):
        return {"count": 0}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {})
        return state


def pess(pid=0, n=4):
    return make_proc(pid=pid, n=n, k=0, cls=PessimisticProcess,
                     behavior=Forwarder())


class TestPessimisticLogging:
    def test_every_delivery_is_synced(self):
        proc = pess()
        before = proc.storage.sync_writes
        deliver_env(proc)
        deliver_env(proc)
        assert proc.storage.sync_writes == before + 2
        assert len(proc.volatile) == 0
        assert proc.storage.log_size == 2

    def test_messages_carry_empty_vectors(self):
        proc = pess()
        effects = deliver_env(proc, {"to": 1})
        released = effects_of(effects, ReleaseMessage)
        assert len(released) == 1
        assert released[0].message.piggyback_size() == 0

    def test_messages_released_immediately(self):
        proc = pess()
        deliver_env(proc, {"to": 1})
        assert not proc.send_buffer
        assert proc.stats.send_hold_time_total == 0.0

    def test_flush_is_noop(self):
        proc = pess()
        deliver_env(proc)
        async_before = proc.storage.async_writes
        proc.flush()
        assert proc.storage.async_writes == async_before

    def test_no_work_lost_on_crash(self):
        # The pessimistic guarantee: everything delivered is recoverable.
        proc = pess()
        for _ in range(5):
            deliver_env(proc)
        state = dict(proc.app_state)
        proc.crash()
        effects = proc.restart()
        assert proc.app_state == state
        replays = [e for e in effects_of(effects, MessageDelivered) if e.replay]
        assert len(replays) == 5

    def test_announcement_reports_nothing_lost(self):
        proc = pess()
        deliver_env(proc)
        deliver_env(proc)
        proc.crash()
        effects = proc.restart()
        ann = effects_of(effects, BroadcastAnnouncement)[0].announcement
        assert ann.end == Entry(0, 3)  # the last interval reached pre-crash

    def test_receivers_of_pessimistic_messages_never_roll_back(self):
        sender = pess(pid=0)
        receiver = pess(pid=1)
        effects = deliver_env(sender, {"to": 1})
        msg = effects_of(effects, ReleaseMessage)[0].message
        receiver.on_receive(msg)
        # The sender now fails; the receiver processes the announcement.
        sender.crash()
        ann = effects_of(sender.restart(), BroadcastAnnouncement)[0].announcement
        effects = receiver.on_failure_announcement(ann)
        assert not effects_of(effects, RollbackPerformed)
        assert receiver.app_state["count"] == 1

    def test_is_zero_optimistic(self):
        assert pess().k == 0
