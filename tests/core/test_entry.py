"""Unit tests for dependency entries and the NULL-aware lexicographic ops."""

import pytest

from repro.core.entry import Entry, entry_str, lex_max, lex_min


class TestEntryOrdering:
    def test_equal_entries(self):
        assert Entry(1, 5) == Entry(1, 5)

    def test_higher_incarnation_dominates(self):
        assert Entry(1, 2) > Entry(0, 99)

    def test_same_incarnation_compares_by_index(self):
        assert Entry(2, 7) > Entry(2, 6)

    def test_strict_ordering_is_total(self):
        entries = [Entry(1, 5), Entry(0, 9), Entry(1, 4), Entry(2, 1)]
        assert sorted(entries) == [Entry(0, 9), Entry(1, 4), Entry(1, 5), Entry(2, 1)]

    def test_entries_are_hashable_and_frozen(self):
        entry = Entry(3, 4)
        assert {entry: "x"}[Entry(3, 4)] == "x"
        with pytest.raises(AttributeError):
            entry.sii = 9  # type: ignore[misc]


class TestEntrySuccessors:
    def test_next_interval_keeps_incarnation(self):
        assert Entry(2, 5).next_interval() == Entry(2, 6)

    def test_next_incarnation_bumps_both(self):
        # Restart/Rollback do current.inc++ and current.sii++.
        assert Entry(0, 4).next_incarnation() == Entry(1, 5)


class TestLexMax:
    def test_null_is_smaller_than_anything(self):
        assert lex_max(None, Entry(0, 1)) == Entry(0, 1)
        assert lex_max(Entry(0, 1), None) == Entry(0, 1)

    def test_both_null(self):
        assert lex_max(None, None) is None

    def test_picks_larger(self):
        assert lex_max(Entry(0, 9), Entry(1, 2)) == Entry(1, 2)

    def test_strom_yemini_example(self):
        # Section 3: "(0,4) and (1,5) ... update the entry to (1,5)".
        assert lex_max(Entry(0, 4), Entry(1, 5)) == Entry(1, 5)


class TestLexMin:
    def test_null_wins(self):
        assert lex_min(None, Entry(5, 5)) is None
        assert lex_min(Entry(5, 5), None) is None

    def test_picks_smaller(self):
        assert lex_min(Entry(0, 9), Entry(1, 2)) == Entry(0, 9)

    def test_equal(self):
        assert lex_min(Entry(1, 1), Entry(1, 1)) == Entry(1, 1)


class TestRendering:
    def test_entry_str(self):
        assert str(Entry(2, 6)) == "(2,6)"

    def test_null_renders_as_null(self):
        assert entry_str(None) == "NULL"
        assert entry_str(Entry(0, 1)) == "(0,1)"
