"""Timer-driven app-message retransmission (the protocol side).

The protocol stays sans-IO: releasing a message with a retransmission
timeout configured also emits a :class:`ScheduleRetransmit` effect; the
harness turns it into an engine timer and calls ``on_retransmit_timer``
when it fires.  ``on_ack`` stops the cycle.
"""

from repro.app.behavior import AppBehavior
from repro.core.effects import ReleaseMessage, ScheduleRetransmit
from repro.core.entry import Entry
from repro.net.message import AppAck
from helpers import deliver_env, effects_of, make_announcement, make_msg, make_proc


class ForwardingBehavior(AppBehavior):
    def initial_state(self, pid, n):
        return {}

    def on_message(self, state, payload, ctx):
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], payload.get("inner", {}))
        return state


def proc_with_timer(**kwargs):
    return make_proc(k=4, behavior=ForwardingBehavior(),
                     retransmit_timeout=4.0, retransmit_backoff=2.0,
                     retransmit_budget=3, **kwargs)


def release_one(proc):
    effects = deliver_env(proc, payload={"to": 1})
    (released,) = effects_of(effects, ReleaseMessage)
    (timer,) = effects_of(effects, ScheduleRetransmit)
    return released.message, timer


class TestRelease:
    def test_release_schedules_first_timer(self):
        proc = proc_with_timer()
        msg, timer = release_one(proc)
        assert timer.msg_id == msg.msg_id
        assert timer.delay == 4.0
        assert msg.msg_id in proc._unacked

    def test_no_timer_when_disabled(self):
        proc = make_proc(k=4, behavior=ForwardingBehavior())
        effects = deliver_env(proc, payload={"to": 1})
        assert effects_of(effects, ReleaseMessage)
        assert not effects_of(effects, ScheduleRetransmit)
        assert proc._unacked == {}


class TestTimerFiring:
    def test_timer_resends_with_backoff(self):
        proc = proc_with_timer()
        msg, timer = release_one(proc)
        effects = proc.on_retransmit_timer(msg.msg_id)
        (resent,) = effects_of(effects, ReleaseMessage)
        assert resent.message is msg
        (next_timer,) = effects_of(effects, ScheduleRetransmit)
        assert next_timer.delay == 8.0  # 4.0 * backoff
        assert proc.stats.timer_retransmissions == 1
        later = proc.on_retransmit_timer(msg.msg_id)
        assert effects_of(later, ScheduleRetransmit)[0].delay == 16.0

    def test_ack_stops_retransmission(self):
        proc = proc_with_timer()
        msg, _ = release_one(proc)
        assert proc.on_ack(AppAck(msg.msg_id, 1, proc.pid)) == []
        assert proc.stats.acks_received == 1
        assert msg.msg_id not in proc._unacked
        assert proc.on_retransmit_timer(msg.msg_id) == []
        assert proc.stats.timer_retransmissions == 0

    def test_duplicate_ack_ignored(self):
        proc = proc_with_timer()
        msg, _ = release_one(proc)
        proc.on_ack(AppAck(msg.msg_id, 1, proc.pid))
        proc.on_ack(AppAck(msg.msg_id, 1, proc.pid))
        assert proc.stats.acks_received == 1

    def test_budget_exhaustion_abandons_message(self):
        proc = proc_with_timer()
        msg, _ = release_one(proc)
        for _ in range(3):  # budget
            assert effects_of(proc.on_retransmit_timer(msg.msg_id),
                              ReleaseMessage)
        assert proc.on_retransmit_timer(msg.msg_id) == []
        assert proc.stats.retransmit_budget_exhausted == 1
        assert msg.msg_id not in proc._unacked

    def test_crash_clears_unacked(self):
        proc = proc_with_timer()
        msg, _ = release_one(proc)
        proc.crash()
        proc.restart()
        assert proc._unacked == {}
        assert proc.on_retransmit_timer(msg.msg_id) == []

    def test_orphaned_pending_message_not_retransmitted(self):
        proc = proc_with_timer()
        # The send depends on P2's interval (0, 5) piggybacked on the
        # triggering message.
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 5)},
                                 payload={"to": 1}))
        pending_ids = list(proc._unacked)
        assert pending_ids
        # P2's incarnation 0 ends at 2: our state rolls back and the
        # pending send is an orphan — the scrub already pruned it.
        proc.on_failure_announcement(make_announcement(2, 0, 2))
        for msg_id in pending_ids:
            assert proc.on_retransmit_timer(msg_id) == []
        assert proc.stats.timer_retransmissions == 0
