"""Baseline conformance: Strom & Yemini classical optimistic recovery."""

from repro.app.behavior import AppBehavior
from repro.core.baselines.strom_yemini import StromYeminiProcess
from repro.core.effects import (
    BroadcastAnnouncement,
    MessageDelivered,
    ReleaseMessage,
    RollbackPerformed,
)
from repro.core.entry import Entry
from repro.net.message import LogProgressNotification
from helpers import deliver_env, effects_of, make_announcement, make_msg


class Forwarder(AppBehavior):
    def initial_state(self, pid, n):
        return {"count": 0}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {})
        return state


def sy(pid=0, n=4):
    proc = StromYeminiProcess(pid, n, behavior=Forwarder())
    proc.initialize()
    return proc


class TestStromYemini:
    def test_messages_released_immediately(self):
        proc = sy()
        effects = deliver_env(proc, {"to": 1})
        assert effects_of(effects, ReleaseMessage)
        assert not proc.send_buffer

    def test_no_commit_dependency_tracking(self):
        # A logging progress notification does NOT shrink the vector.
        proc = sy(pid=0, n=4)
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        table = [{} for _ in range(4)]
        table[2] = {0: 7}
        proc.on_log_notification(LogProgressNotification(2, table))
        assert proc.tdv.get(2) == Entry(0, 7)

    def test_released_vector_keeps_stable_entries(self):
        proc = sy(pid=0, n=4)
        table = [{} for _ in range(4)]
        table[2] = {0: 7}
        proc.on_log_notification(LogProgressNotification(2, table))
        effects = proc.on_receive(
            make_msg(2, 0, entries={2: Entry(0, 7)}, payload={"to": 1}))
        msg = effects_of(effects, ReleaseMessage)[0].message
        assert msg.tdv.get(2) == Entry(0, 7)  # still carried

    def test_incarnation_gated_delivery(self):
        # A dependency on incarnation 1 of P2 is NOT deliverable until the
        # announcement ending incarnation 0 of P2 arrives.
        proc = sy(pid=0, n=4)
        effects = proc.on_receive(make_msg(2, 0, entries={2: Entry(1, 9)}))
        assert not effects_of(effects, MessageDelivered)
        assert len(proc.receive_buffer) == 1
        effects = proc.on_failure_announcement(make_announcement(2, 0, 5))
        assert effects_of(effects, MessageDelivered)

    def test_incarnation_zero_never_gated(self):
        proc = sy(pid=0, n=4)
        effects = proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 9)}))
        assert effects_of(effects, MessageDelivered)

    def test_rollback_broadcasts_announcement(self):
        # Pre-Theorem-1 behaviour: every rollback is announced.
        proc = sy(pid=0, n=4)
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 7)}))
        effects = proc.on_failure_announcement(make_announcement(2, 0, 3))
        assert effects_of(effects, RollbackPerformed)
        own = [e for e in effects_of(effects, BroadcastAnnouncement)
               if e.announcement.origin == 0]
        assert len(own) == 1
        assert own[0].announcement.end.inc == 0

    def test_vector_size_tracks_all_dependencies(self):
        # With 3 upstream processes, the piggybacked vector carries
        # one entry per process + self: the size-N behaviour.
        proc = sy(pid=0, n=4)
        proc.on_receive(make_msg(1, 0, entries={1: Entry(0, 2)}))
        proc.on_receive(make_msg(2, 0, entries={2: Entry(0, 3)}))
        effects = proc.on_receive(
            make_msg(3, 0, entries={3: Entry(0, 4)}, payload={"to": 1}))
        msg = effects_of(effects, ReleaseMessage)[0].message
        assert msg.piggyback_size() == 4

    def test_k_equals_n(self):
        assert sy(n=4).k == 4
