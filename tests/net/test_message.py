"""Unit tests for wire message types and identities."""

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import (
    AppMessage,
    FailureAnnouncement,
    LoggingRequest,
    LogProgressNotification,
    OutputRecord,
)
from repro.types import MessageId, OutputId


def msg(entries=None, n=4):
    return AppMessage(
        msg_id=MessageId(0, 0, 1, 0),
        src=0, dst=1, payload={},
        tdv=DependencyVector(n, entries or {}),
        send_interval=Entry(0, 1),
    )


class TestMessageId:
    def test_identity_includes_incarnation(self):
        # Replay of a stable interval regenerates the same id; re-execution
        # in a new incarnation produces a different one.
        a = MessageId(0, 0, 5, 0)
        b = MessageId(0, 0, 5, 0)
        c = MessageId(0, 1, 5, 0)
        assert a == b
        assert a != c

    def test_ordering_and_hashing(self):
        ids = {MessageId(0, 0, 1, 0), MessageId(0, 0, 1, 1)}
        assert len(ids) == 2
        assert MessageId(0, 0, 1, 0) < MessageId(0, 0, 1, 1)

    def test_str(self):
        assert str(MessageId(3, 1, 5, 2)) == "m(3:1.5.2)"

    def test_output_id_str(self):
        assert str(OutputId(3, 1, 5, 2)) == "o(3:1.5.2)"


class TestAppMessage:
    def test_piggyback_size(self):
        assert msg().piggyback_size() == 0
        assert msg({0: Entry(0, 1), 2: Entry(1, 3)}).piggyback_size() == 2

    def test_wire_ids_unique(self):
        assert msg().wire_id != msg().wire_id

    def test_default_flags(self):
        m = msg()
        assert m.replayed is False
        assert m.deliver is False
        assert m.k_limit is None

    def test_str_mentions_route(self):
        text = str(msg({0: Entry(0, 1)}))
        assert "0->1" in text


class TestControlMessages:
    def test_failure_announcement_is_frozen_and_hashable(self):
        ann = FailureAnnouncement(1, Entry(0, 4))
        assert ann == FailureAnnouncement(1, Entry(0, 4))
        assert {ann: 1}[ann] == 1
        assert "inc 0 ended at 4" in str(ann)

    def test_log_progress_notification_str(self):
        notif = LogProgressNotification(2, [{}, {}, {0: 5}])
        assert "P2" in str(notif)

    def test_logging_request_str(self):
        assert "P3" in str(LoggingRequest(3))

    def test_output_record_str(self):
        record = OutputRecord(OutputId(1, 0, 2, 0), 1, "x", Entry(0, 2))
        assert "(0,2)_1" in str(record)
