"""Unit tests for the network fault model (loss, duplication, reordering,
partitions)."""

import pytest

from repro.net.faults import DELIVER, ChannelFaults, NetworkFaultModel
from repro.sim.rng import RngRegistry


def model(seed=0, **kwargs):
    return NetworkFaultModel(RngRegistry(seed), ChannelFaults(**kwargs))


class TestChannelFaults:
    def test_defaults_disabled(self):
        faults = ChannelFaults()
        assert not faults.any_enabled
        faults.validate()

    @pytest.mark.parametrize("field", ["drop", "duplicate", "reorder"])
    def test_rejects_out_of_range(self, field):
        with pytest.raises(ValueError):
            ChannelFaults(**{field: 1.5}).validate()
        with pytest.raises(ValueError):
            ChannelFaults(**{field: -0.1}).validate()

    def test_rejects_negative_spread(self):
        with pytest.raises(ValueError):
            ChannelFaults(reorder_spread=-1.0).validate()


class TestDecide:
    def test_no_faults_is_identity(self):
        # The fault-free decision is the shared DELIVER singleton and the
        # channel's RNG stream is never drawn from (determinism of legacy
        # runs depends on this).
        fm = model()
        assert fm.decide(0, 1, control=False) is DELIVER
        fresh = RngRegistry(0).stream("faults/0->1/app")
        assert fm.rngs.stream("faults/0->1/app").random() == fresh.random()

    def test_certain_drop(self):
        fm = model(drop=1.0)
        for _ in range(5):
            decision = fm.decide(0, 1, control=False)
            assert decision.drop and not decision.partition_drop

    def test_certain_duplicate(self):
        fm = model(duplicate=1.0)
        decision = fm.decide(0, 1, control=False)
        assert decision.duplicate and not decision.drop

    def test_reorder_adds_bounded_delay(self):
        fm = model(reorder=1.0, reorder_spread=3.0)
        for _ in range(20):
            decision = fm.decide(0, 1, control=False)
            assert 0.0 <= decision.extra_delay <= 3.0

    def test_control_exempt_when_configured(self):
        fm = NetworkFaultModel(RngRegistry(0), ChannelFaults(drop=1.0),
                               apply_to_control=False)
        assert fm.decide(0, 1, control=True) is DELIVER
        assert fm.decide(0, 1, control=False).drop

    def test_deterministic_per_seed(self):
        decisions_a = [model(3, drop=0.3, duplicate=0.3).decide(0, 1, False)
                       for _ in range(1)]
        fm_a = model(3, drop=0.3, duplicate=0.3, reorder=0.3)
        fm_b = model(3, drop=0.3, duplicate=0.3, reorder=0.3)
        seq_a = [fm_a.decide(0, 1, control=False) for _ in range(50)]
        seq_b = [fm_b.decide(0, 1, control=False) for _ in range(50)]
        assert seq_a == seq_b

    def test_channels_draw_independent_streams(self):
        fm = model(5, drop=0.5)
        # Draining one channel's decisions must not change another's.
        fm_ref = model(5, drop=0.5)
        for _ in range(25):
            fm.decide(0, 1, control=False)
        a = [fm.decide(2, 3, control=False).drop for _ in range(25)]
        b = [fm_ref.decide(2, 3, control=False).drop for _ in range(25)]
        assert a == b

    def test_overrides_take_precedence(self):
        fm = NetworkFaultModel(
            RngRegistry(0), ChannelFaults(),
            overrides={(0, 1): ChannelFaults(drop=1.0)},
        )
        assert fm.decide(0, 1, control=False).drop
        assert fm.decide(1, 0, control=False) is DELIVER


class TestRates:
    def test_set_rates_partial_update(self):
        fm = model(drop=0.1, duplicate=0.2)
        fm.set_rates(drop=0.5)
        assert fm.default.drop == 0.5
        assert fm.default.duplicate == 0.2

    def test_set_rates_validates(self):
        with pytest.raises(ValueError):
            model().set_rates(drop=2.0)


class TestPartitions:
    def test_partitioned_islands_and_mainland(self):
        fm = model()
        fm.start_partition(((2, 3),), now=10.0)
        assert fm.partition_active
        assert fm.partitioned(0, 2)
        assert fm.partitioned(2, 1)
        assert not fm.partitioned(2, 3)  # same island
        assert not fm.partitioned(0, 1)  # both on the implicit mainland

    def test_partition_drop_decision(self):
        fm = model()
        fm.start_partition(((1,),), now=0.0)
        decision = fm.decide(0, 1, control=True)
        assert decision.drop and decision.partition_drop

    def test_heal_accumulates_time(self):
        fm = model()
        fm.start_partition(((1,),), now=10.0)
        fm.heal(now=35.0)
        assert fm.partition_time == 25.0
        assert not fm.partition_active
        fm.heal(now=99.0)  # idempotent
        assert fm.partition_time == 25.0

    def test_new_partition_replaces_old(self):
        fm = model()
        fm.start_partition(((1,),), now=0.0)
        fm.start_partition(((2,),), now=5.0)
        assert fm.partition_time == 5.0  # first segment closed at takeover
        assert fm.partitions_seen == 2
        assert fm.partitioned(0, 2)
        assert not fm.partitioned(0, 1)
