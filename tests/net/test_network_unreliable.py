"""Network-layer behaviour with a fault model and the reliable control
path attached."""

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.faults import ChannelFaults, NetworkFaultModel
from repro.net.message import AppMessage, ControlAck, ControlEnvelope
from repro.net.network import Network
from repro.net.reliable import ReliableConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.types import MessageId


def build(n=2, faults=None, reliable=False, seed=0):
    engine = Engine()
    rngs = RngRegistry(seed)
    network = Network(
        n=n, engine=engine, rngs=rngs,
        faults=faults,
        reliable_config=ReliableConfig() if reliable else None,
    )
    inboxes = [[] for _ in range(n)]
    for pid in range(n):
        network.register(pid, inboxes[pid].append)
    return engine, network, inboxes


def app_msg(src=0, dst=1, n=2, seq=0):
    return AppMessage(
        msg_id=MessageId(src, 0, 1, seq), src=src, dst=dst,
        payload={}, tdv=DependencyVector(n), send_interval=Entry(0, 1),
    )


def fault_model(seed=0, **kwargs):
    return NetworkFaultModel(RngRegistry(seed), ChannelFaults(**kwargs))


class TestAppFaults:
    def test_certain_drop_never_arrives(self):
        engine, network, inboxes = build(faults=fault_model(drop=1.0))
        network.send_app(app_msg())
        engine.run()
        assert inboxes[1] == []
        assert network.app_dropped == 1
        assert network.app_messages_sent == 1  # counted as sent regardless

    def test_certain_duplicate_arrives_twice(self):
        engine, network, inboxes = build(faults=fault_model(duplicate=1.0))
        msg = app_msg()
        network.send_app(msg)
        engine.run()
        assert inboxes[1] == [msg, msg]
        assert network.duplicates_injected == 1

    def test_partition_drop_counted_separately(self):
        fm = fault_model()
        fm.start_partition(((1,),), now=0.0)
        engine, network, inboxes = build(faults=fm)
        network.send_app(app_msg())
        network.send_control(0, 1, "note")
        engine.run()
        assert inboxes[1] == []
        assert network.partition_drops == 2
        assert network.app_dropped == 1 and network.control_dropped == 1

    def test_no_faults_delivers_normally(self):
        engine, network, inboxes = build(faults=fault_model())
        msg = app_msg()
        network.send_app(msg)
        engine.run()
        assert inboxes[1] == [msg]
        assert network.app_dropped == 0


class TestReliableControlPath:
    def test_reliable_send_wraps_in_envelope(self):
        engine, network, inboxes = build(reliable=True)
        network.send_control(0, 1, "announcement", reliable=True)
        engine.run(until=1.5)
        (envelope,) = inboxes[1]
        assert isinstance(envelope, ControlEnvelope)
        assert envelope.payload == "announcement"

    def test_unreliable_send_stays_bare(self):
        engine, network, inboxes = build(reliable=True)
        network.send_control(0, 1, "note", reliable=False)
        engine.run(until=1.5)
        assert inboxes[1] == ["note"]

    def test_reliable_without_layer_degrades_to_plain(self):
        engine, network, inboxes = build(reliable=False)
        network.send_control(0, 1, "announcement", reliable=True)
        engine.run()
        assert inboxes[1] == ["announcement"]

    def test_acks_consumed_by_transport_and_stop_retries(self):
        engine, network, inboxes = build(reliable=True)
        network.send_control(0, 1, "announcement", reliable=True)
        engine.run(until=1.5)
        (envelope,) = inboxes[1]
        # The destination transport acks; the ack is consumed by the
        # network itself and never reaches process 0's hook.
        network.send_control(1, 0, ControlAck(envelope.seq, 1, 0))
        engine.run()
        assert inboxes[0] == []
        assert network.reliable.acked == 1
        assert inboxes[1] == [envelope]  # no retransmission happened

    def test_unacked_envelope_is_retransmitted(self):
        engine, network, inboxes = build(reliable=True)
        network.send_control(0, 1, "announcement", reliable=True)
        engine.run(until=5.0)  # past the first RTO of 4.0
        assert len(inboxes[1]) == 2
        assert network.reliable.retransmits == 1

    def test_broadcast_control_reliable_kwarg(self):
        engine, network, inboxes = build(n=3, reliable=True)
        network.broadcast_control(0, "announcement", reliable=True)
        engine.run(until=1.5)
        assert all(isinstance(p, ControlEnvelope) for p in inboxes[1])
        assert all(isinstance(p, ControlEnvelope) for p in inboxes[2])
        assert inboxes[0] == []
