"""Unit tests for the control-plane ack/retransmit layer."""

import pytest

from repro.net.message import ControlAck, FailureAnnouncement
from repro.net.reliable import ControlRetransmitter, ReliableConfig
from repro.sim.engine import Engine


def build(config=None, drop_first=0):
    """A retransmitter whose transmit path drops the first N transmissions."""
    engine = Engine()
    sent = []
    state = {"drops_left": drop_first}

    def transmit(envelope):
        if state["drops_left"] > 0:
            state["drops_left"] -= 1
            return
        sent.append((engine.now, envelope))

    rtx = ControlRetransmitter(engine, transmit,
                               config or ReliableConfig(rto=4.0, backoff=2.0,
                                                        rto_max=60.0, budget=4))
    return engine, rtx, sent


class TestConfig:
    def test_validate_rejects_bad_timing(self):
        with pytest.raises(ValueError):
            ReliableConfig(rto=0.0).validate()
        with pytest.raises(ValueError):
            ReliableConfig(backoff=0.5).validate()
        with pytest.raises(ValueError):
            ReliableConfig(rto=10.0, rto_max=5.0).validate()
        with pytest.raises(ValueError):
            ReliableConfig(budget=-1).validate()


class TestRetransmission:
    def test_ack_stops_retries(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, FailureAnnouncement(0, None))
        assert len(sent) == 1
        envelope = sent[0][1]
        assert rtx.on_ack(ControlAck(envelope.seq, 1, 0))
        engine.run()
        assert len(sent) == 1  # the pending timer died quietly
        assert rtx.acked == 1 and rtx.retransmits == 0
        assert rtx.outstanding == 0

    def test_duplicate_ack_ignored(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "payload")
        seq = sent[0][1].seq
        assert rtx.on_ack(ControlAck(seq, 1, 0))
        assert not rtx.on_ack(ControlAck(seq, 1, 0))
        assert rtx.acked == 1

    def test_lost_transmissions_are_retried_with_backoff(self):
        engine, rtx, sent = build(drop_first=2)
        rtx.send(0, 1, "payload")
        engine.run(until=4.0 + 8.0 + 0.1)
        # Original and first retry were dropped; the second retry (at
        # t = 4 + 8 = 12) got through.
        assert [t for t, _ in sent] == [12.0]
        rtx.on_ack(ControlAck(sent[0][1].seq, 1, 0))
        engine.run()
        assert len(sent) == 1
        assert rtx.retransmits == 2

    def test_backoff_caps_at_rto_max(self):
        config = ReliableConfig(rto=4.0, backoff=4.0, rto_max=20.0, budget=5)
        engine, rtx, sent = build(config)
        rtx.send(0, 1, "payload")
        engine.run()
        times = [t for t, _ in sent]
        gaps = [b - a for a, b in zip(times, times[1:])]
        # 4, then 16, then capped at 20 for the rest.
        assert gaps == [4.0, 16.0, 20.0, 20.0, 20.0]

    def test_budget_exhaustion_gives_up_and_counts(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "payload")
        engine.run()
        assert len(sent) == 1 + 4  # original + budget retries
        assert rtx.budget_exhausted == 1
        assert rtx.outstanding == 0

    def test_mean_ack_rtt(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "a")
        engine.run(until=3.0)
        rtx.on_ack(ControlAck(sent[0][1].seq, 1, 0))
        assert rtx.mean_ack_rtt() == 3.0

    def test_sequences_are_unique(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "a")
        rtx.send(0, 2, "b")
        assert sent[0][1].seq != sent[1][1].seq


class TestTimerCancellation:
    def test_ack_cancels_the_pending_retry_timer(self):
        # Regression: on_ack used to leave the retry timer live in the
        # engine heap (a no-op event up to rto_max in the future),
        # inflating Engine.pending and delaying quiescence detection.
        engine, rtx, sent = build()
        rtx.send(0, 1, "payload")
        assert engine.pending == 1  # the retry timer
        rtx.on_ack(ControlAck(sent[0][1].seq, 1, 0))
        assert engine.pending == 0

    def test_budget_exhaustion_leaves_no_live_timer(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "payload")
        engine.run()
        assert rtx.budget_exhausted == 1
        assert engine.pending == 0

    def test_many_acked_sends_leave_pending_at_zero(self):
        engine, rtx, sent = build()
        for i in range(20):
            rtx.send(0, 1, f"p{i}")
        for _, envelope in list(sent):
            rtx.on_ack(ControlAck(envelope.seq, 1, 0))
        assert engine.pending == 0
        engine.run()
        assert len(sent) == 20  # nothing retransmitted


class TestParkResume:
    def test_parked_source_does_not_transmit(self):
        # Fail-stop audit: envelopes whose *source* crashed must fall
        # silent until the source restarts.
        engine, rtx, sent = build(drop_first=1)
        rtx.send(0, 1, "announcement")
        rtx.park_source(0)
        engine.run(until=500.0)
        assert sent == []  # original dropped, no retries while parked
        assert rtx.outstanding == 1  # still undelivered, merely silenced

    def test_resume_retransmits_and_restarts_the_cycle(self):
        engine, rtx, sent = build(drop_first=1)
        rtx.send(0, 1, "announcement")
        rtx.park_source(0)
        engine.run(until=100.0)
        rtx.resume_source(0)
        assert len(sent) == 1  # immediate re-send on resume
        rtx.on_ack(ControlAck(sent[0][1].seq, 1, 0))
        assert engine.pending == 0
        assert rtx.outstanding == 0

    def test_park_is_per_source(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "from-0")
        rtx.send(2, 1, "from-2")
        rtx.park_source(0)
        engine.run(until=4.5)
        # Only the live source's entry retried.
        assert [e.src for _, e in sent] == [0, 2, 2]

    def test_ack_racing_the_crash_counts_as_lost(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "announcement")
        seq = sent[0][1].seq
        rtx.park_source(0)
        assert not rtx.on_ack(ControlAck(seq, 1, 0))
        rtx.resume_source(0)
        assert len(sent) == 2  # retransmitted; the destination deduplicates
        assert rtx.on_ack(ControlAck(seq, 1, 0))
