"""Unit tests for the control-plane ack/retransmit layer."""

import pytest

from repro.net.message import ControlAck, FailureAnnouncement
from repro.net.reliable import ControlRetransmitter, ReliableConfig
from repro.sim.engine import Engine


def build(config=None, drop_first=0):
    """A retransmitter whose transmit path drops the first N transmissions."""
    engine = Engine()
    sent = []
    state = {"drops_left": drop_first}

    def transmit(envelope):
        if state["drops_left"] > 0:
            state["drops_left"] -= 1
            return
        sent.append((engine.now, envelope))

    rtx = ControlRetransmitter(engine, transmit,
                               config or ReliableConfig(rto=4.0, backoff=2.0,
                                                        rto_max=60.0, budget=4))
    return engine, rtx, sent


class TestConfig:
    def test_validate_rejects_bad_timing(self):
        with pytest.raises(ValueError):
            ReliableConfig(rto=0.0).validate()
        with pytest.raises(ValueError):
            ReliableConfig(backoff=0.5).validate()
        with pytest.raises(ValueError):
            ReliableConfig(rto=10.0, rto_max=5.0).validate()
        with pytest.raises(ValueError):
            ReliableConfig(budget=-1).validate()


class TestRetransmission:
    def test_ack_stops_retries(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, FailureAnnouncement(0, None))
        assert len(sent) == 1
        envelope = sent[0][1]
        assert rtx.on_ack(ControlAck(envelope.seq, 1, 0))
        engine.run()
        assert len(sent) == 1  # the pending timer died quietly
        assert rtx.acked == 1 and rtx.retransmits == 0
        assert rtx.outstanding == 0

    def test_duplicate_ack_ignored(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "payload")
        seq = sent[0][1].seq
        assert rtx.on_ack(ControlAck(seq, 1, 0))
        assert not rtx.on_ack(ControlAck(seq, 1, 0))
        assert rtx.acked == 1

    def test_lost_transmissions_are_retried_with_backoff(self):
        engine, rtx, sent = build(drop_first=2)
        rtx.send(0, 1, "payload")
        engine.run(until=4.0 + 8.0 + 0.1)
        # Original and first retry were dropped; the second retry (at
        # t = 4 + 8 = 12) got through.
        assert [t for t, _ in sent] == [12.0]
        rtx.on_ack(ControlAck(sent[0][1].seq, 1, 0))
        engine.run()
        assert len(sent) == 1
        assert rtx.retransmits == 2

    def test_backoff_caps_at_rto_max(self):
        config = ReliableConfig(rto=4.0, backoff=4.0, rto_max=20.0, budget=5)
        engine, rtx, sent = build(config)
        rtx.send(0, 1, "payload")
        engine.run()
        times = [t for t, _ in sent]
        gaps = [b - a for a, b in zip(times, times[1:])]
        # 4, then 16, then capped at 20 for the rest.
        assert gaps == [4.0, 16.0, 20.0, 20.0, 20.0]

    def test_budget_exhaustion_gives_up_and_counts(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "payload")
        engine.run()
        assert len(sent) == 1 + 4  # original + budget retries
        assert rtx.budget_exhausted == 1
        assert rtx.outstanding == 0

    def test_mean_ack_rtt(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "a")
        engine.run(until=3.0)
        rtx.on_ack(ControlAck(sent[0][1].seq, 1, 0))
        assert rtx.mean_ack_rtt() == 3.0

    def test_sequences_are_unique(self):
        engine, rtx, sent = build()
        rtx.send(0, 1, "a")
        rtx.send(0, 2, "b")
        assert sent[0][1].seq != sent[1][1].seq
