"""Unit tests for latency models and channels."""

import random

import pytest

from repro.net.channel import (
    Channel,
    ExponentialLatency,
    FixedLatency,
    UniformLatency,
)


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(2.0, per_entry=0.5)
        rng = random.Random(0)
        assert model.delay(rng) == 2.0
        assert model.delay(rng, piggyback_entries=4) == 4.0

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)
        with pytest.raises(ValueError):
            FixedLatency(1.0, per_entry=-0.1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(0)
        for _ in range(100):
            assert 1.0 <= model.delay(rng) <= 3.0

    def test_uniform_piggyback_cost(self):
        model = UniformLatency(1.0, 1.0, per_entry=1.0)
        assert model.delay(random.Random(0), piggyback_entries=3) == 4.0

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 1.0)

    def test_exponential_above_base(self):
        model = ExponentialLatency(1.0, 2.0)
        rng = random.Random(0)
        for _ in range(100):
            assert model.delay(rng) >= 1.0

    def test_exponential_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ExponentialLatency(1.0, 0.0)


class TestChannel:
    def test_arrival_after_now(self):
        channel = Channel(0, 1, FixedLatency(2.0), random.Random(0))
        assert channel.arrival_time(10.0) == 12.0

    def test_non_fifo_may_reorder(self):
        channel = Channel(0, 1, UniformLatency(0.5, 5.0), random.Random(3),
                          fifo=False)
        arrivals = [channel.arrival_time(float(t)) for t in range(50)]
        assert any(b < a for a, b in zip(arrivals, arrivals[1:]))

    def test_fifo_never_reorders(self):
        channel = Channel(0, 1, UniformLatency(0.5, 5.0), random.Random(3),
                          fifo=True)
        arrivals = [channel.arrival_time(float(t)) for t in range(50)]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))

    def test_transmission_counter(self):
        channel = Channel(0, 1, FixedLatency(1.0), random.Random(0))
        channel.arrival_time(0.0)
        channel.arrival_time(1.0)
        assert channel.transmitted == 2
