"""Unit tests for the network layer."""

import pytest

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.channel import FixedLatency
from repro.net.message import AppMessage, FailureAnnouncement
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.types import MessageId


def make_net(n=3, latency=None, fifo=False):
    engine = Engine()
    net = Network(n, engine, RngRegistry(0),
                  latency=latency or FixedLatency(1.0), fifo=fifo)
    return engine, net


def app_msg(src, dst, n=3, entries=None):
    return AppMessage(
        msg_id=MessageId(src, 0, 1, 0),
        src=src, dst=dst, payload={},
        tdv=DependencyVector(n, entries or {}),
        send_interval=Entry(0, 1),
    )


class TestTransmission:
    def test_app_message_arrives_at_hook(self):
        engine, net = make_net()
        inbox = []
        net.register(1, inbox.append)
        msg = app_msg(0, 1)
        net.send_app(msg)
        engine.run()
        assert inbox == [msg]

    def test_arrival_respects_latency(self):
        engine, net = make_net(latency=FixedLatency(5.0))
        times = []
        net.register(1, lambda m: times.append(engine.now))
        net.send_app(app_msg(0, 1))
        engine.run()
        assert times == [5.0]

    def test_piggyback_entries_add_latency(self):
        engine, net = make_net(latency=FixedLatency(1.0, per_entry=1.0))
        times = []
        net.register(1, lambda m: times.append(engine.now))
        net.send_app(app_msg(0, 1, entries={0: Entry(0, 1), 2: Entry(0, 2)}))
        engine.run()
        assert times == [3.0]

    def test_missing_hook_raises(self):
        engine, net = make_net()
        net.send_app(app_msg(0, 1))
        with pytest.raises(RuntimeError):
            engine.run()

    def test_pid_bounds(self):
        _engine, net = make_net()
        with pytest.raises(IndexError):
            net.send_app(app_msg(0, 7, n=3))


class TestBroadcast:
    def test_control_broadcast_excludes_sender(self):
        engine, net = make_net()
        received = {pid: [] for pid in range(3)}
        for pid in range(3):
            net.register(pid, received[pid].append)
        ann = FailureAnnouncement(0, Entry(0, 3))
        net.broadcast_control(0, ann)
        engine.run()
        assert received[0] == []
        assert received[1] == [ann]
        assert received[2] == [ann]
        assert net.control_messages_sent == 2

    def test_include_self(self):
        engine, net = make_net()
        received = []
        for pid in range(3):
            net.register(pid, received.append)
        net.broadcast_control(0, "x", include_self=True)
        engine.run()
        assert len(received) == 3


class TestStatistics:
    def test_mean_piggyback(self):
        engine, net = make_net()
        net.register(1, lambda m: None)
        net.send_app(app_msg(0, 1, entries={0: Entry(0, 1)}))
        net.send_app(app_msg(0, 1, entries={0: Entry(0, 1), 2: Entry(0, 2),
                                            1: Entry(0, 3)}))
        engine.run()
        assert net.app_messages_sent == 2
        assert net.mean_piggyback_entries() == 2.0

    def test_mean_piggyback_empty(self):
        _engine, net = make_net()
        assert net.mean_piggyback_entries() == 0.0
