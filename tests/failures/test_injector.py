"""Unit tests for the failure injector."""

import random

from repro.failures.injector import CrashEvent, FailureSchedule


class TestFailureSchedule:
    def test_none_is_empty(self):
        assert len(FailureSchedule.none()) == 0

    def test_single(self):
        schedule = FailureSchedule.single(100.0, 2)
        events = list(schedule)
        assert events == [CrashEvent(100.0, 2)]

    def test_events_sorted_by_time(self):
        schedule = FailureSchedule([CrashEvent(5.0, 0), CrashEvent(1.0, 1)])
        assert [e.time for e in schedule] == [1.0, 5.0]

    def test_random_respects_horizon(self):
        schedule = FailureSchedule.random(random.Random(0), n=4,
                                          horizon=100.0, rate=0.5)
        assert all(0.0 <= e.time < 100.0 for e in schedule)
        assert all(0 <= e.pid < 4 for e in schedule)
        assert len(schedule) > 10  # expectation ~50

    def test_random_zero_rate(self):
        assert len(FailureSchedule.random(random.Random(0), 4, 100.0, 0.0)) == 0

    def test_random_deterministic_for_seed(self):
        a = FailureSchedule.random(random.Random(7), 4, 100.0, 0.2)
        b = FailureSchedule.random(random.Random(7), 4, 100.0, 0.2)
        assert a.events == b.events

    def test_random_start_offset(self):
        schedule = FailureSchedule.random(random.Random(0), 4, 100.0, 0.5,
                                          start=50.0)
        assert all(e.time >= 50.0 for e in schedule)
