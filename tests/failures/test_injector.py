"""Unit tests for the failure injector."""

import random

from repro.failures.injector import CrashEvent, FailureSchedule


class TestFailureSchedule:
    def test_none_is_empty(self):
        assert len(FailureSchedule.none()) == 0

    def test_single(self):
        schedule = FailureSchedule.single(100.0, 2)
        events = list(schedule)
        assert events == [CrashEvent(100.0, 2)]

    def test_events_sorted_by_time(self):
        schedule = FailureSchedule([CrashEvent(5.0, 0), CrashEvent(1.0, 1)])
        assert [e.time for e in schedule] == [1.0, 5.0]

    def test_random_respects_horizon(self):
        schedule = FailureSchedule.random(random.Random(0), n=4,
                                          horizon=100.0, rate=0.5)
        assert all(0.0 <= e.time < 100.0 for e in schedule)
        assert all(0 <= e.pid < 4 for e in schedule)
        assert len(schedule) > 10  # expectation ~50

    def test_random_zero_rate(self):
        assert len(FailureSchedule.random(random.Random(0), 4, 100.0, 0.0)) == 0

    def test_random_deterministic_for_seed(self):
        a = FailureSchedule.random(random.Random(7), 4, 100.0, 0.2)
        b = FailureSchedule.random(random.Random(7), 4, 100.0, 0.2)
        assert a.events == b.events

    def test_random_start_offset(self):
        schedule = FailureSchedule.random(random.Random(0), 4, 100.0, 0.5,
                                          start=50.0)
        assert all(e.time >= 50.0 for e in schedule)


class TestUnifiedEventStream:
    def test_mixed_events_sorted_by_time(self):
        from repro.failures.injector import HealEvent, LossEvent, PartitionEvent

        schedule = FailureSchedule([
            HealEvent(90.0),
            CrashEvent(10.0, 1),
            PartitionEvent(50.0, ((2, 3),)),
            LossEvent(30.0, drop=0.1),
        ])
        assert [e.time for e in schedule] == [10.0, 30.0, 50.0, 90.0]

    def test_crashes_view_filters_network_events(self):
        from repro.failures.injector import HealEvent, PartitionEvent

        schedule = FailureSchedule([
            CrashEvent(10.0, 1),
            PartitionEvent(50.0, ((2,),)),
            HealEvent(90.0),
            CrashEvent(70.0, 0),
        ])
        assert schedule.crashes == [CrashEvent(10.0, 1), CrashEvent(70.0, 0)]

    def test_has_network_events(self):
        from repro.failures.injector import LossEvent

        assert not FailureSchedule([CrashEvent(1.0, 0)]).has_network_events()
        assert FailureSchedule([LossEvent(1.0, drop=0.2)]).has_network_events()
        assert not FailureSchedule.none().has_network_events()

    def test_extended_merges_and_resorts(self):
        from repro.failures.injector import PartitionEvent

        base = FailureSchedule([CrashEvent(40.0, 1)])
        extended = base.extended([PartitionEvent(20.0, ((1,),))])
        assert [e.time for e in extended] == [20.0, 40.0]
        assert len(base) == 1  # original untouched
