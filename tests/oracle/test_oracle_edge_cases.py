"""Oracle edge cases: corrupted graphs, stability/recovery interleavings,
and the read-only introspection surface the checker's probes rely on."""

from repro.core.entry import Entry
from repro.oracle.graph import DependencyOracle

from test_oracle import oracle_with_chain


def cross_dependency_oracle():
    """P1's interval 2 depends on P0's interval 2 (the canonical orphan
    candidate shape)."""
    oracle = DependencyOracle(2)
    oracle.start_process(0)
    oracle.start_process(1)
    oracle.record_delivery(0, Entry(0, 2), None, None)
    oracle.record_delivery(1, Entry(0, 2), 0, Entry(0, 2))
    return oracle


class TestCorruptedGraphs:
    """check_consistency / chain_integrity_violations on graphs that a
    correct simulation can never produce — the checks must still report
    coherently rather than crash or stay silent."""

    def test_rolled_back_node_left_on_live_chain(self):
        oracle = oracle_with_chain(deliveries=2)
        # Corrupt: mark rolled back without truncating the chain (a
        # record_recovery bug would look like this).
        oracle.node((0, 0, 3)).rolled_back = True
        integrity = oracle.chain_integrity_violations()
        assert integrity and "rolled-back" in integrity[0]
        consistency = oracle.check_consistency()
        assert any("rolled-back" in v for v in consistency)

    def test_corruption_downstream_counts_as_orphan(self):
        oracle = cross_dependency_oracle()
        oracle.node((0, 0, 2)).rolled_back = True
        del oracle._chains[0][1:]  # truncate P0's chain "properly"
        assert oracle.chain_integrity_violations() == []
        # P1 still survives on an orphaned interval.
        assert oracle.is_orphan((1, 0, 2))
        assert any("orphan" in v for v in oracle.check_consistency())

    def test_dangling_predecessor_is_tolerated(self):
        oracle = oracle_with_chain(deliveries=1)
        # Corrupt: a predecessor that was never recorded.
        oracle.node((0, 0, 2)).preds.append((1, 7, 7))
        past = oracle.causal_past((0, 0, 2))
        assert (1, 7, 7) not in past  # unknown nodes are skipped, not fatal
        assert oracle.check_consistency() == []

    def test_empty_chain_process(self):
        oracle = DependencyOracle(2)
        oracle.start_process(0)  # P1 never started
        assert oracle.live_interval(1) is None
        assert oracle.live_chain(1) == ()
        assert oracle.check_consistency() == []


class TestStabilityRecoveryInterleavings:
    """potential_revokers across mark_stable / record_recovery orders."""

    def test_stabilize_then_roll_back_past_the_stable_point(self):
        oracle = cross_dependency_oracle()
        oracle.mark_stable(0, Entry(0, 2))
        assert oracle.potential_revokers((1, 0, 2)) == {1}
        # P0 nevertheless rolls back below its stabilized index (a failed
        # incarnation's announcement can sit under gossiped progress).
        oracle.record_recovery(0, Entry(0, 1), Entry(1, 2))
        # The rolled-back interval is neither stable-revoker nor live;
        # P1's interval is now an orphan instead.
        assert oracle.potential_revokers((1, 0, 2)) == {1}
        assert oracle.is_orphan((1, 0, 2))

    def test_roll_back_then_stabilize_survivor_prefix(self):
        oracle = oracle_with_chain(deliveries=3)
        oracle.record_recovery(0, Entry(0, 2), Entry(1, 3))
        oracle.mark_stable(0, Entry(1, 2))
        # Stability marks live-chain nodes up to sii 2; the new
        # incarnation's head (sii 3) stays volatile.
        assert oracle.node((0, 0, 2)).stable
        assert not oracle.node((0, 1, 3)).stable
        assert oracle.potential_revokers((0, 1, 3)) == {0}

    def test_mark_stable_does_not_resurrect_rolled_back_intervals(self):
        oracle = oracle_with_chain(deliveries=3)
        oracle.record_recovery(0, Entry(0, 2), Entry(1, 3))
        oracle.mark_stable(0, Entry(1, 4))
        # (0,0,3)/(0,0,4) were rolled off the chain before the mark;
        # stability walks the live chain only.
        assert not oracle.node((0, 0, 3)).stable
        assert oracle.node((0, 0, 3)).rolled_back
        assert (0, 0, 3) not in oracle.non_stable_intervals()

    def test_revokers_after_double_recovery(self):
        oracle = cross_dependency_oracle()
        oracle.record_recovery(0, Entry(0, 1), Entry(1, 2))
        oracle.record_recovery(1, Entry(0, 1), Entry(1, 2))
        assert oracle.check_consistency() == []
        assert oracle.potential_revokers((1, 1, 2)) == {1}
        oracle.mark_stable(1, Entry(1, 2))
        assert oracle.potential_revokers((1, 1, 2)) == set()


class TestIntrospectionAccessors:
    def test_live_chain_is_a_snapshot(self):
        oracle = oracle_with_chain(deliveries=2)
        chain = oracle.live_chain(0)
        assert chain == ((0, 0, 1), (0, 0, 2), (0, 0, 3))
        oracle.record_delivery(0, Entry(0, 4), None, None)
        assert chain == ((0, 0, 1), (0, 0, 2), (0, 0, 3))  # unchanged

    def test_non_stable_intervals_excludes_stable_and_rolled_back(self):
        oracle = oracle_with_chain(deliveries=3)
        oracle.mark_stable(0, Entry(0, 2))
        oracle.record_recovery(0, Entry(0, 3), Entry(1, 4))
        non_stable = set(oracle.non_stable_intervals())
        assert (0, 0, 3) in non_stable      # survived, volatile
        assert (0, 1, 4) in non_stable      # new incarnation head
        assert (0, 0, 2) not in non_stable  # stable
        assert (0, 0, 4) not in non_stable  # rolled back

    def test_orphan_intervals_transient_then_clean(self):
        oracle = cross_dependency_oracle()
        oracle.record_recovery(0, Entry(0, 1), Entry(1, 2))
        # Mid-"announcement": P1 still lives on an orphan.
        assert oracle.orphan_intervals() == [(1, 0, 2)]
        oracle.record_recovery(1, Entry(0, 1), Entry(1, 2))
        assert oracle.orphan_intervals() == []
